"""A version-tracked RDF store with selectable archiving policies.

Versions form a linear history: each commit records the triples added and
removed relative to its parent.  Three archiving policies trade storage
for reconstruction effort (the design space of the RDF-archiving work the
paper cites -- [22], [25]):

``FULL``
    every version stored as a complete snapshot -- O(1) reconstruction,
    maximal storage;
``DELTA``
    only deltas stored -- minimal storage, reconstruction replays the
    whole chain;
``HYBRID``
    a snapshot every *checkpoint_every* commits, deltas in between --
    bounded replay with bounded storage.

Reconstruction effort and storage are measured in triples, matching the
cost style of the rest of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.rdf.graph import RDFGraph
from repro.rdf.triple import Triple
from repro.sparql.algebra import evaluate
from repro.sparql.ast import Query
from repro.sparql.parser import parse_sparql


class ArchivePolicy(Enum):
    FULL = "full"
    DELTA = "delta"
    HYBRID = "hybrid"


@dataclass(frozen=True)
class Delta:
    """The change set of one commit."""

    added: Tuple[Triple, ...]
    removed: Tuple[Triple, ...]

    def size(self) -> int:
        return len(self.added) + len(self.removed)

    def inverted(self) -> "Delta":
        return Delta(self.removed, self.added)

    @staticmethod
    def between(old: RDFGraph, new: RDFGraph) -> "Delta":
        old_set = set(old)
        new_set = set(new)
        return Delta(
            tuple(sorted(new_set - old_set)),
            tuple(sorted(old_set - new_set)),
        )


class VersionedGraph:
    """Linear version history over RDF graphs.

    Version 0 is the initial graph; :meth:`commit` appends a version.
    """

    def __init__(
        self,
        initial: Optional[RDFGraph] = None,
        policy: ArchivePolicy = ArchivePolicy.HYBRID,
        checkpoint_every: int = 4,
    ) -> None:
        if checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        self.policy = policy
        self.checkpoint_every = checkpoint_every
        self._deltas: List[Delta] = []
        self._snapshots: Dict[int, RDFGraph] = {}
        self._head = (initial or RDFGraph()).copy()
        self._snapshots[0] = self._head.copy()
        #: Reconstruction effort of the last snapshot() call, in triples
        #: replayed (0 when a stored snapshot answered directly).
        self.last_replay_cost = 0

    # ------------------------------------------------------------------
    # History
    # ------------------------------------------------------------------

    @property
    def head_version(self) -> int:
        return len(self._deltas)

    def head(self) -> RDFGraph:
        """The latest version (shared; copy before mutating)."""
        return self._head

    def commit(
        self,
        additions: Iterable[Triple] = (),
        deletions: Iterable[Triple] = (),
    ) -> int:
        """Apply a change set; returns the new version number.

        Additions already present and deletions of absent triples are
        dropped from the recorded delta (it captures effective change).
        """
        added = tuple(
            sorted(t for t in set(additions) if t not in self._head)
        )
        removed = tuple(
            sorted(t for t in set(deletions) if t in self._head)
        )
        for triple in removed:
            self._head.remove(triple)
        for triple in added:
            self._head.add(triple)
        self._deltas.append(Delta(added, removed))
        version = self.head_version
        if self._should_snapshot(version):
            self._snapshots[version] = self._head.copy()
        return version

    def _should_snapshot(self, version: int) -> bool:
        if self.policy is ArchivePolicy.FULL:
            return True
        if self.policy is ArchivePolicy.DELTA:
            return False
        return version % self.checkpoint_every == 0

    # ------------------------------------------------------------------
    # Reconstruction & queries
    # ------------------------------------------------------------------

    def snapshot(self, version: int) -> RDFGraph:
        """Materialize any past version."""
        if not 0 <= version <= self.head_version:
            raise KeyError(
                "version %d outside [0, %d]" % (version, self.head_version)
            )
        if version == self.head_version:
            self.last_replay_cost = 0
            return self._head.copy()
        if version in self._snapshots:
            self.last_replay_cost = 0
            return self._snapshots[version].copy()
        # Replay from the nearest stored snapshot at or below *version*.
        base_version = max(
            v for v in self._snapshots if v <= version
        )
        graph = self._snapshots[base_version].copy()
        replayed = 0
        for delta in self._deltas[base_version:version]:
            for triple in delta.removed:
                graph.remove(triple)
            for triple in delta.added:
                graph.add(triple)
            replayed += delta.size()
        self.last_replay_cost = replayed
        return graph

    def delta(self, version: int) -> Delta:
        """The change set that produced *version* (1-based)."""
        if not 1 <= version <= self.head_version:
            raise KeyError("no delta for version %d" % version)
        return self._deltas[version - 1]

    def diff(self, old: int, new: int) -> Delta:
        """Aggregate change between two versions (either direction)."""
        return Delta.between(self.snapshot(old), self.snapshot(new))

    def query_version(self, query, version: int):
        """Evaluate a SPARQL query against any version."""
        if isinstance(query, str):
            query = parse_sparql(query)
        return evaluate(query, self.snapshot(version))

    def versions_where(self, query) -> List[int]:
        """All versions where an ASK query holds (cross-version access)."""
        if isinstance(query, str):
            query = parse_sparql(query)
        return [
            v
            for v in range(self.head_version + 1)
            if bool(evaluate(query, self.snapshot(v)))
        ]

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------

    def storage_triples(self) -> int:
        """Stored triples across snapshots plus delta records."""
        snapshots = sum(len(g) for g in self._snapshots.values())
        deltas = sum(d.size() for d in self._deltas)
        return snapshots + deltas

    def __repr__(self) -> str:
        return "VersionedGraph(head=%d, policy=%s)" % (
            self.head_version,
            self.policy.value,
        )
