"""Incremental updates to running engines ("uninterrupted" evolution).

Section V asks that "the next generation parallel RDF query answering
systems should be able to handle evolving data in an uninterrupted
manner".  The surveyed systems all assume load-once data; this module
retrofits incremental updates onto two of them:

* :class:`UpdatableSparqlgxEngine` -- vertical partitioning localizes a
  change to the predicate stores it touches: an update rebuilds only
  those stores and adjusts statistics, leaving every other predicate's
  RDD (and its cache) intact.
* :class:`UpdatableNaiveEngine` -- the contrast case: a single triples
  RDD means every update rewrites the whole store.

Both track ``last_update_touched`` (records rewritten by the last update)
so the benefit is measurable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.rdf.triple import Triple
from repro.systems.naive import NaiveEngine
from repro.systems.sparqlgx import SparqlgxEngine


class UpdatableSparqlgxEngine(SparqlgxEngine):
    """SPARQLGX with per-predicate incremental updates."""

    def _build(self, graph: RDFGraph) -> None:
        super()._build(graph)
        self._pairs: Dict[Term, List[Tuple[Term, Term]]] = {}
        for predicate, table in self.vp_tables.items():
            self._pairs[predicate] = table.collect()
        self._subjects: Set[Term] = set(graph.subjects())
        self._objects: Set[Term] = set(graph.objects())
        self.last_update_touched = 0

    def apply_update(
        self,
        additions: Iterable[Triple] = (),
        deletions: Iterable[Triple] = (),
    ) -> int:
        """Apply a change set in place; returns records rewritten.

        Only the vertical stores of the touched predicates are rebuilt;
        untouched predicates keep their cached RDDs.
        """
        additions = list(additions)
        deletions = list(deletions)
        touched: Set[Term] = set()

        for triple in deletions:
            pairs = self._pairs.get(triple.predicate)
            if pairs is None:
                continue
            entry = (triple.subject, triple.object)
            if entry in pairs:
                pairs.remove(entry)
                touched.add(triple.predicate)
        for triple in additions:
            pairs = self._pairs.setdefault(triple.predicate, [])
            entry = (triple.subject, triple.object)
            if entry not in pairs:
                pairs.append(entry)
                touched.add(triple.predicate)
                self._subjects.add(triple.subject)
                self._objects.add(triple.object)

        rewritten = 0
        # Sorted: the rebuild order decides RDD ids and vp_tables
        # insertion order, which would otherwise follow set order.
        for predicate in sorted(touched, key=lambda term: term.sort_key()):
            pairs = sorted(
                self._pairs[predicate],
                key=lambda so: (so[0].sort_key(), so[1].sort_key()),
            )
            self._pairs[predicate] = pairs
            if pairs:
                self.vp_tables[predicate] = self.ctx.parallelize(
                    pairs
                ).cache()
                self.vp_sizes[predicate] = len(pairs)
            else:
                self.vp_tables.pop(predicate, None)
                self.vp_sizes.pop(predicate, None)
                self._pairs.pop(predicate, None)
            rewritten += len(pairs)

        # Statistics stay query-optimizer-grade without a full recount.
        self.stats["triples"] = sum(self.vp_sizes.values())
        self.stats["distinct_subjects"] = len(self._subjects)
        self.stats["distinct_objects"] = len(self._objects)
        self.stats["distinct_predicates"] = len(self.vp_tables)
        self.last_update_touched = rewritten
        return rewritten


class UpdatableNaiveEngine(NaiveEngine):
    """Naive engine where any update rewrites the whole store."""

    def _build(self, graph: RDFGraph) -> None:
        self._triples: Set[Tuple[Term, Term, Term]] = {
            t.as_tuple() for t in graph
        }
        self._refresh()
        self.last_update_touched = 0

    def _refresh(self) -> None:
        self.triples = self.ctx.parallelize(sorted(self._triples)).cache()

    def apply_update(
        self,
        additions: Iterable[Triple] = (),
        deletions: Iterable[Triple] = (),
    ) -> int:
        for triple in deletions:
            self._triples.discard(triple.as_tuple())
        for triple in additions:
            self._triples.add(triple.as_tuple())
        self._refresh()
        self.last_update_touched = len(self._triples)
        return self.last_update_touched
