"""Evolving RDF data: the paper's second future-work direction.

Section V: "dynamicity is an important aspect of the RDF data, which are
constantly evolving ... This raises the need to keep track of the
different versions of the data, so as to be able to have access not only
to the latest version, but also to previous ones ... the next generation
parallel RDF query answering systems should be able to handle evolving
data in an uninterrupted manner."

* :mod:`repro.evolution.versioned` -- a version-tracked RDF store with
  the three archiving policies studied by the cited archiving literature
  (full materialization, delta chains, hybrid checkpoints) and
  cross-version queries/diffs.
* :mod:`repro.evolution.live` -- incremental updates to running engines:
  ``UpdatableEngine`` applies additions/deletions to the distributed
  store *without* a full reload, keeping query answering uninterrupted.
"""

from repro.evolution.versioned import (
    ArchivePolicy,
    Delta,
    VersionedGraph,
)
from repro.evolution.live import (
    UpdatableNaiveEngine,
    UpdatableSparqlgxEngine,
)

__all__ = [
    "ArchivePolicy",
    "Delta",
    "UpdatableNaiveEngine",
    "UpdatableSparqlgxEngine",
    "VersionedGraph",
]
