"""Partition-local BGP matching over raw triple tuples.

Several engines (HAQWA, SparkRDF) evaluate sub-queries *inside* one
partition against whatever triples are locally present.  This helper runs
a basic graph pattern over a list of ``(s, p, o)`` tuples in any value
space (terms or dictionary-encoded integers), using a subject index for
the common subject-bound case.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.sparql.ast import TriplePattern, Variable

#: A pattern position: a Variable or a constant in the store's value space.
LocalPosition = Union[Variable, Any]
#: A local pattern: three positions.
LocalPattern = Tuple[LocalPosition, LocalPosition, LocalPosition]


def encode_pattern(
    pattern: TriplePattern, encode_constant
) -> LocalPattern:
    """Map a TriplePattern into the store's value space.

    *encode_constant* translates a bound RDF term; it may raise KeyError
    for terms absent from the store's dictionary (no triple can match).
    """
    out = []
    for position in pattern.positions():
        if isinstance(position, Variable):
            out.append(position)
        else:
            out.append(encode_constant(position))
    return tuple(out)


def match_bgp_local(
    patterns: Sequence[LocalPattern],
    triples: Sequence[Tuple[Any, Any, Any]],
) -> List[Dict[str, Any]]:
    """All bindings of *patterns* over *triples* (nested-index join)."""
    if not patterns:
        return [{}]
    by_subject: Dict[Any, List[Tuple[Any, Any, Any]]] = {}
    for triple in triples:
        by_subject.setdefault(triple[0], []).append(triple)

    bindings: List[Dict[str, Any]] = [{}]
    for pattern in patterns:
        subject, predicate, obj = pattern
        next_bindings: List[Dict[str, Any]] = []
        for binding in bindings:
            s_val = (
                binding.get(subject.name)
                if isinstance(subject, Variable)
                else subject
            )
            candidates = (
                by_subject.get(s_val, ()) if s_val is not None else triples
            )
            for triple in candidates:
                extended = _extend(binding, pattern, triple)
                if extended is not None:
                    next_bindings.append(extended)
        bindings = next_bindings
        if not bindings:
            break
    return bindings


def _extend(
    binding: Dict[str, Any],
    pattern: LocalPattern,
    triple: Tuple[Any, Any, Any],
) -> Union[Dict[str, Any], None]:
    out = None
    for position, value in zip(pattern, triple):
        if isinstance(position, Variable):
            bound = (out or binding).get(position.name)
            if bound is None:
                if out is None:
                    out = dict(binding)
                out[position.name] = value
            elif bound != value:
                return None
        elif position != value:
            return None
    return out if out is not None else dict(binding)
