"""HAQWA [7]: hash-based and query-workload-aware distributed RDF store.

Mechanics reproduced from Section IV-A1 of the paper:

1. *Fragmentation step one* -- hash partitioning on triple **subjects**, so
   every star-shaped sub-query evaluates locally.
2. *Fragmentation step two* -- allocation driven by an analysis of the
   frequent queries: for every linking predicate a frequent query uses to
   hop from one star to another, the triples of the hop's target subject
   are **replicated** into the partition holding the source subject, so the
   whole frequent query becomes partition-local.
3. *Encoding* -- all term strings are dictionary-encoded to integers before
   distribution, shrinking data volume (and shuffle bytes).
4. *Query time* -- the pattern is decomposed into star-shaped local
   sub-queries; a seed sub-query anchors evaluation; when replication
   covers the query's linking predicates the entire pattern runs locally,
   otherwise the engine falls back to shuffle joins between local stars.

Evaluation maps onto the RDD API (mapPartitions / join / filter), like the
original.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.data.workload import QueryWorkload
from repro.rdf.encoding import Dictionary
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.spark.context import SparkContext
from repro.spark.partitioner import HashPartitioner, stable_hash
from repro.spark.rdd import RDD
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import (
    FEATURE_BGP,
    FEATURE_DISTINCT,
    FEATURE_FILTER,
    FEATURE_LIMIT,
    FEATURE_OFFSET,
    FEATURE_ORDER_BY,
    FEATURE_UNION,
)
from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    join_binding_rdds,
)
from repro.systems.localmatch import encode_pattern, match_bgp_local


def group_by_subject(
    patterns: Sequence[TriplePattern],
) -> List[List[TriplePattern]]:
    """Star-shaped sub-queries: patterns grouped by their subject."""
    groups: Dict[object, List[TriplePattern]] = {}
    order: List[object] = []
    for pattern in patterns:
        key = pattern.subject
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(pattern)
    return [groups[key] for key in order]


def linking_predicates(
    patterns: Sequence[TriplePattern],
) -> Set[Term]:
    """Constant predicates whose object is another group's subject variable."""
    subjects = {
        p.subject for p in patterns if isinstance(p.subject, Variable)
    }
    links: Set[Term] = set()
    for pattern in patterns:
        if (
            isinstance(pattern.object, Variable)
            and pattern.object in subjects
            and pattern.object != pattern.subject
            and not isinstance(pattern.predicate, Variable)
        ):
            links.add(pattern.predicate)
    return links


class HaqwaEngine(SparkRdfEngine):
    """Hash + query-workload-aware RDF store on the RDD API."""

    profile = EngineProfile(
        name="HAQWA",
        citation="[7]",
        data_model=DataModel.TRIPLE,
        abstractions=(SparkAbstraction.RDD,),
        query_processing=QueryProcessing.RDD_API,
        optimization=Optimization.NO,
        partitioning=PartitioningStrategy.HASH_QUERY_AWARE,
        sparql_features=frozenset(
            {
                FEATURE_BGP,
                FEATURE_FILTER,
                FEATURE_UNION,
                FEATURE_DISTINCT,
                FEATURE_ORDER_BY,
                FEATURE_LIMIT,
                FEATURE_OFFSET,
            }
        ),
        contribution=Contribution.STAR_QUERIES,
        description=(
            "Subject-hash fragmentation with workload-aware replica "
            "allocation and integer encoding."
        ),
    )

    def __init__(
        self,
        ctx: Optional[SparkContext] = None,
        workload: Optional[QueryWorkload] = None,
        frequent_top: int = 3,
    ) -> None:
        super().__init__(ctx)
        self.workload = workload
        self.frequent_top = frequent_top

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def _build(self, graph: RDFGraph) -> None:
        self.dictionary = Dictionary()
        num_partitions = self.ctx.default_parallelism
        self._num_partitions = num_partitions

        encoded: List[Tuple[int, int, int]] = []
        for triple in sorted(graph):
            e = self.dictionary.encode(triple)
            encoded.append(e.as_tuple())

        partitions: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(num_partitions)
        ]
        home: Dict[int, int] = {}
        subject_triples: Dict[int, List[Tuple[int, int, int]]] = {}
        for triple in encoded:
            index = self._partition_of(triple[0])
            home[triple[0]] = index
            partitions[index].append(triple)
            subject_triples.setdefault(triple[0], []).append(triple)

        # Step two: workload-aware replica allocation.
        self._replicated_predicates: Set[int] = set()
        self.replicated_triples = 0
        if self.workload is not None:
            for weighted in self.workload.most_frequent(self.frequent_top):
                patterns = weighted.query.where.triple_patterns()
                for predicate in linking_predicates(patterns):
                    if predicate in self.dictionary:
                        self._replicated_predicates.add(
                            self.dictionary.lookup_term(predicate)
                        )
            already_placed = [set(p) for p in partitions]
            for triple in encoded:
                if triple[1] not in self._replicated_predicates:
                    continue
                source_partition = self._partition_of(triple[0])
                target_subject = triple[2]
                for target_triple in subject_triples.get(target_subject, ()):
                    if target_triple in already_placed[source_partition]:
                        continue
                    partitions[source_partition].append(target_triple)
                    already_placed[source_partition].add(target_triple)
                    self.replicated_triples += 1

        self.store = self.ctx.fromPartitions(
            partitions,
            partitioner=HashPartitioner(num_partitions),
        ).cache()

    def _partition_of(self, subject_id: int) -> int:
        return stable_hash(subject_id) % self._num_partitions

    def _encode_constant(self, term: Term) -> int:
        if term not in self.dictionary:
            raise KeyError(term)
        return self.dictionary.lookup_term(term)

    # ------------------------------------------------------------------
    # BGP evaluation
    # ------------------------------------------------------------------

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        try:
            local_patterns = [
                encode_pattern(p, self._encode_constant) for p in patterns
            ]
        except KeyError:
            # A query constant never seen in the data: no results.
            return self.ctx.emptyRDD()

        groups = group_by_subject(patterns)
        if len(groups) == 1 or self._locally_coverable(patterns, groups):
            return self._evaluate_locally(patterns, local_patterns)
        return self._evaluate_with_shuffles(patterns)

    def _locally_coverable(
        self,
        patterns: List[TriplePattern],
        groups: List[List[TriplePattern]],
    ) -> bool:
        """Whether replication makes the whole pattern seed-local.

        Replication copies the triples of a link's *target* subject into
        the partition of its *source* subject, one hop deep.  The pattern
        is coverable when every non-seed group is the direct target of a
        replicated link out of the seed group.
        """
        seed_group = max(groups, key=len)
        seed_subject = seed_group[0].subject
        other_subjects = {
            g[0].subject for g in groups if g[0].subject != seed_subject
        }
        reachable = set()
        for pattern in seed_group:
            if isinstance(pattern.predicate, Variable):
                continue
            if pattern.predicate not in self.dictionary:
                continue
            predicate_id = self.dictionary.lookup_term(pattern.predicate)
            if predicate_id not in self._replicated_predicates:
                continue
            if isinstance(pattern.object, Variable):
                reachable.add(pattern.object)
        return other_subjects <= reachable

    def _evaluate_locally(
        self,
        patterns: List[TriplePattern],
        local_patterns: List[tuple],
    ) -> RDD:
        """Whole-pattern evaluation inside each partition (no shuffle).

        The seed sub-query's subject anchors deduplication: a binding is
        emitted only from the home partition of its seed subject, so
        replicas never produce duplicates.
        """
        groups = group_by_subject(patterns)
        seed_group = max(groups, key=len)
        seed_subject = seed_group[0].subject
        seed_var = (
            seed_subject.name if isinstance(seed_subject, Variable) else None
        )
        engine = self

        def run_partition(index: int, part: List[tuple]) -> List[dict]:
            out = []
            for binding in match_bgp_local(local_patterns, part):
                if seed_var is not None:
                    anchor = binding[seed_var]
                else:
                    anchor = engine._encode_constant(seed_subject)
                if engine._partition_of(anchor) != index:
                    continue
                out.append(
                    {
                        name: engine.dictionary.decode_id(value)
                        for name, value in binding.items()
                    }
                )
            return out

        return self.store.mapPartitionsWithIndex(run_partition)

    def _evaluate_with_shuffles(
        self, patterns: List[TriplePattern]
    ) -> RDD:
        """Fallback: local stars, then shuffle joins between them."""
        groups = sorted(group_by_subject(patterns), key=len, reverse=True)
        # Greedy connectivity order to avoid needless cartesian products.
        ordered: List[List[TriplePattern]] = [groups.pop(0)]
        seen_vars = {
            v.name for pattern in ordered[0] for v in pattern.variables()
        }
        while groups:
            index = next(
                (
                    i
                    for i, g in enumerate(groups)
                    if seen_vars
                    & {v.name for pattern in g for v in pattern.variables()}
                ),
                0,
            )
            chosen = groups.pop(index)
            ordered.append(chosen)
            seen_vars |= {
                v.name for pattern in chosen for v in pattern.variables()
            }
        result: Optional[RDD] = None
        bound: Set[str] = set()
        for group in ordered:
            local = [encode_pattern(p, self._encode_constant) for p in group]
            group_vars = {
                v.name for pattern in group for v in pattern.variables()
            }
            subject = group[0].subject
            subject_var = (
                subject.name if isinstance(subject, Variable) else None
            )
            engine = self

            def run_partition(
                index: int, part: List[tuple], local=local, sv=subject_var
            ) -> List[dict]:
                out = []
                for binding in match_bgp_local(local, part):
                    anchor = binding[sv] if sv is not None else None
                    if anchor is not None and engine._partition_of(
                        anchor
                    ) != index:
                        continue
                    out.append(
                        {
                            name: engine.dictionary.decode_id(value)
                            for name, value in binding.items()
                        }
                    )
                return out

            star = self.store.mapPartitionsWithIndex(run_partition)
            if result is None:
                result = star
                bound = group_vars
            else:
                shared = sorted(bound & group_vars)
                result = join_binding_rdds(result, star, shared)
                bound |= group_vars
        assert result is not None
        return result
