"""The nine surveyed RDF-on-Spark systems, reimplemented (Section IV).

Triple-model systems: HAQWA [7], SPARQLGX [13], S2RDF [24], and the hybrid
join study of Naacke et al. [21].  Graph-model systems: S2X [23], Kassaie's
GraphX subgraph matcher [16], Spar(k)ql [12], the GraphFrames approach of
Bahrami et al. [4], and SparkRDF [5].  ``NaiveEngine`` is the unpartitioned
full-scan baseline every system improves on.

Every engine implements the same interface (:class:`SparkRdfEngine`):
``load`` an :class:`~repro.rdf.graph.RDFGraph`, ``execute`` SPARQL, and a
``profile`` describing its Table I/II classification.
"""

from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    UnsupportedQueryError,
)
from repro.systems.naive import NaiveEngine
from repro.systems.haqwa import HaqwaEngine
from repro.systems.sparqlgx import SparqlgxEngine
from repro.systems.s2rdf import S2RdfEngine
from repro.systems.hybrid import HybridEngine, JoinStrategy
from repro.systems.s2x import S2XEngine
from repro.systems.graphx_sgm import GraphXSubgraphEngine
from repro.systems.sparkql import SparkqlEngine
from repro.systems.graphframes_sys import GraphFramesEngine
from repro.systems.sparkrdf import SparkRdfMesgEngine
from repro.systems.router import ShapeAwareRouter

ALL_ENGINE_CLASSES = (
    HaqwaEngine,
    SparqlgxEngine,
    S2RdfEngine,
    HybridEngine,
    S2XEngine,
    GraphXSubgraphEngine,
    SparkqlEngine,
    GraphFramesEngine,
    SparkRdfMesgEngine,
)

__all__ = [
    "ALL_ENGINE_CLASSES",
    "EngineProfile",
    "GraphFramesEngine",
    "GraphXSubgraphEngine",
    "HaqwaEngine",
    "HybridEngine",
    "JoinStrategy",
    "NaiveEngine",
    "S2RdfEngine",
    "S2XEngine",
    "ShapeAwareRouter",
    "SparkRdfEngine",
    "SparkRdfMesgEngine",
    "SparkqlEngine",
    "SparqlgxEngine",
    "UnsupportedQueryError",
]
