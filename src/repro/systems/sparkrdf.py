"""SparkRDF [5]: elastic semantic-subgraph processing with MESG indexes.

Mechanics reproduced from Section IV-B3 of the paper:

* **MESG** (Multi-layer Elastic Sub-Graph) storage with three index
  levels: (1) a *class index* for ``rdf:type`` triples (files named by the
  class) and a *relation index* for the rest (files named by the
  predicate); (2) **CR** (class-relation) and **RC** (relation-class)
  indexes dividing each predicate file by the class of its subjects /
  objects; (3) **CRC** (class-relation-class) combining every part of the
  triple.
* **RDSG** (Resilient Discreted Semantic SubGraph): the distributed
  in-memory abstraction with generate / filter / prepartition / join
  operations, built on the Spark API.
* *Query processing*: the query decomposes into an ordered sequence of
  variables; per variable, its triple patterns are matched and joined on
  the shared variable.
* *Optimizations*: each variable's class (from ``rdf:type`` patterns) is
  passed to the triple patterns containing the variable, letting the
  engine read the narrow CR/RC/CRC files instead of whole relations and
  **remove the rdf:type patterns**; on-demand **dynamic pre-partitioning**
  places records sharing a join-variable value in the same partition, so
  the distributed joins shuffle (almost) nothing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.rdf.vocab import RDF
from repro.spark.partitioner import stable_hash
from repro.spark.rdd import RDD
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import FEATURE_BGP
from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    triple_matches_pattern,
)


class SparkRdfMesgEngine(SparkRdfEngine):
    """MESG-indexed store with class pruning and dynamic pre-partitioning."""

    profile = EngineProfile(
        name="SparkRDF",
        citation="[5]",
        data_model=DataModel.GRAPH,
        abstractions=(SparkAbstraction.RDD,),
        query_processing=QueryProcessing.CUSTOM,
        optimization=Optimization.YES,
        partitioning=PartitioningStrategy.HASH_SUBJECT,
        sparql_features=frozenset({FEATURE_BGP}),
        contribution=Contribution.STORAGE_INDEXING,
        description=(
            "Three-level MESG index (class/relation, CR/RC, CRC) with "
            "rdf:type elimination and pre-partitioned RDSG joins."
        ),
    )

    #: Records read from each index level by the last query.
    last_index_reads: Dict[str, int]

    def _build(self, graph: RDFGraph) -> None:
        self.last_index_reads = {}
        #: subject -> classes (a subject may have several types)
        self.classes_of: Dict[Term, Set[Term]] = {}
        #: class -> member subjects (level 1 class index)
        self.class_index: Dict[Term, List[Term]] = {}
        #: predicate -> [(s, o)] (level 1 relation index)
        self.relation_index: Dict[Term, List[Tuple[Term, Term]]] = {}
        #: (subject class, predicate) -> [(s, o)] (level 2 CR)
        self.cr_index: Dict[Tuple[Term, Term], List[Tuple[Term, Term]]] = {}
        #: (predicate, object class) -> [(s, o)] (level 2 RC)
        self.rc_index: Dict[Tuple[Term, Term], List[Tuple[Term, Term]]] = {}
        #: (subject class, predicate, object class) -> [(s, o)] (level 3 CRC)
        self.crc_index: Dict[
            Tuple[Term, Term, Term], List[Tuple[Term, Term]]
        ] = {}

        for triple in graph.triples((None, RDF.type, None)):
            self.classes_of.setdefault(triple.subject, set()).add(triple.object)
            self.class_index.setdefault(triple.object, []).append(
                triple.subject
            )

        for triple in sorted(graph):
            if triple.predicate == RDF.type:
                continue
            pair = (triple.subject, triple.object)
            self.relation_index.setdefault(triple.predicate, []).append(pair)
            subject_classes = self.classes_of.get(triple.subject, set())
            object_classes = self.classes_of.get(triple.object, set())
            for s_class in subject_classes:
                self.cr_index.setdefault(
                    (s_class, triple.predicate), []
                ).append(pair)
                for o_class in object_classes:
                    self.crc_index.setdefault(
                        (s_class, triple.predicate, o_class), []
                    ).append(pair)
            for o_class in object_classes:
                self.rc_index.setdefault(
                    (triple.predicate, o_class), []
                ).append(pair)
        self._num_partitions = self.ctx.default_parallelism

    # ------------------------------------------------------------------
    # Class-message extraction (the rdf:type elimination optimization)
    # ------------------------------------------------------------------

    @staticmethod
    def _class_constraints(
        patterns: Sequence[TriplePattern],
    ) -> Tuple[Dict[str, Set[Term]], List[TriplePattern]]:
        """(variable -> required classes, patterns with rdf:type removed).

        A type pattern is removed only when its class is constant and the
        variable occurs in some other pattern (otherwise it must be
        evaluated from the class index itself).
        """
        constraints: Dict[str, Set[Term]] = {}
        removable: List[TriplePattern] = []
        for pattern in patterns:
            if (
                pattern.predicate == RDF.type
                and isinstance(pattern.subject, Variable)
                and not isinstance(pattern.object, Variable)
            ):
                used_elsewhere = any(
                    other is not pattern
                    and pattern.subject in other.variables()
                    for other in patterns
                )
                if used_elsewhere:
                    constraints.setdefault(pattern.subject.name, set()).add(
                        pattern.object
                    )
                    removable.append(pattern)
        kept = [p for p in patterns if p not in removable]
        return constraints, kept

    # ------------------------------------------------------------------
    # Index file selection (MESG levels)
    # ------------------------------------------------------------------

    def _select_file(
        self,
        pattern: TriplePattern,
        constraints: Dict[str, Set[Term]],
    ) -> Tuple[str, List[Tuple[Term, Term]]]:
        """The narrowest index file answering *pattern*.

        Returns (level label, list of (s, o) pairs).  Classes known for the
        subject/object variables select CRC > CR > RC > relation files.
        """
        predicate = pattern.predicate
        subject_classes = (
            sorted(
                constraints.get(pattern.subject.name, ()),
                key=lambda t: t.sort_key(),
            )
            if isinstance(pattern.subject, Variable)
            else []
        )
        object_classes = (
            sorted(
                constraints.get(pattern.object.name, ()),
                key=lambda t: t.sort_key(),
            )
            if isinstance(pattern.object, Variable)
            else []
        )
        if subject_classes and object_classes:
            best: Optional[List[Tuple[Term, Term]]] = None
            for s_class in subject_classes:
                for o_class in object_classes:
                    candidate = self.crc_index.get(
                        (s_class, predicate, o_class), []
                    )
                    if best is None or len(candidate) < len(best):
                        best = candidate
            return "CRC", best or []
        if subject_classes:
            best = None
            for s_class in subject_classes:
                candidate = self.cr_index.get((s_class, predicate), [])
                if best is None or len(candidate) < len(best):
                    best = candidate
            return "CR", best or []
        if object_classes:
            best = None
            for o_class in object_classes:
                candidate = self.rc_index.get((predicate, o_class), [])
                if best is None or len(candidate) < len(best):
                    best = candidate
            return "RC", best or []
        return "REL", self.relation_index.get(predicate, [])

    # ------------------------------------------------------------------
    # RDSG: generate + prepartition
    # ------------------------------------------------------------------

    def _generate_rdsg(
        self,
        pattern: TriplePattern,
        constraints: Dict[str, Set[Term]],
        prepartition_on: Optional[str],
    ) -> RDD:
        """Bindings of one pattern as a pre-partitioned RDD (an RDSG)."""
        bindings = self._match_pattern(pattern, constraints)
        return self._prepartition(bindings, prepartition_on)

    def _match_pattern(
        self,
        pattern: TriplePattern,
        constraints: Dict[str, Set[Term]],
    ) -> List[dict]:
        if isinstance(pattern.predicate, Variable):
            # Variable predicate: the whole MESG level 1 must be read.
            out = []
            for predicate, pairs in sorted(
                self.relation_index.items(), key=lambda kv: kv[0].sort_key()
            ):
                self._count_read("REL", len(pairs))
                for s, o in pairs:
                    binding = triple_matches_pattern((s, predicate, o), pattern)
                    if binding is not None and self._classes_ok(
                        binding, constraints
                    ):
                        out.append(binding)
            for cls, members in sorted(
                self.class_index.items(), key=lambda kv: kv[0].sort_key()
            ):
                self._count_read("CLASS", len(members))
                for member in members:
                    binding = triple_matches_pattern(
                        (member, RDF.type, cls), pattern
                    )
                    if binding is not None and self._classes_ok(
                        binding, constraints
                    ):
                        out.append(binding)
            return out
        if pattern.predicate == RDF.type:
            out = []
            if not isinstance(pattern.object, Variable):
                members = self.class_index.get(pattern.object, [])
                self._count_read("CLASS", len(members))
                for member in members:
                    binding = triple_matches_pattern(
                        (member, RDF.type, pattern.object), pattern
                    )
                    if binding is not None:
                        out.append(binding)
            else:
                for cls, members in sorted(
                    self.class_index.items(),
                    key=lambda kv: kv[0].sort_key(),
                ):
                    self._count_read("CLASS", len(members))
                    for member in members:
                        binding = triple_matches_pattern(
                            (member, RDF.type, cls), pattern
                        )
                        if binding is not None:
                            out.append(binding)
            return out
        level, pairs = self._select_file(pattern, constraints)
        self._count_read(level, len(pairs))
        out = []
        for s, o in pairs:
            binding = triple_matches_pattern(
                (s, pattern.predicate, o), pattern
            )
            if binding is not None and self._classes_ok(binding, constraints):
                out.append(binding)
        return out

    def _classes_ok(
        self, binding: dict, constraints: Dict[str, Set[Term]]
    ) -> bool:
        """Verify remaining class constraints (multi-class subjects)."""
        for name, classes in constraints.items():
            value = binding.get(name)
            if value is None:
                continue
            if not classes <= self.classes_of.get(value, set()):
                return False
        return True

    def _count_read(self, level: str, records: int) -> None:
        self.last_index_reads[level] = (
            self.last_index_reads.get(level, 0) + records
        )
        self.ctx.metrics.incr("records_scanned", records)

    def _prepartition(
        self, bindings: List[dict], variable: Optional[str]
    ) -> RDD:
        """Dynamic pre-partitioning: co-locate equal join-variable values."""
        if variable is None:
            return self.ctx.parallelize(bindings)
        partitions: List[List[dict]] = [
            [] for _ in range(self._num_partitions)
        ]
        for binding in bindings:
            value = binding.get(variable)
            index = stable_hash((value,)) % self._num_partitions
            partitions[index].append(binding)
        return self.ctx.fromPartitions(partitions)

    # ------------------------------------------------------------------
    # Query processing: ordered variable sequence
    # ------------------------------------------------------------------

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        self.last_index_reads = {}
        constraints, kept = self._class_constraints(list(patterns))
        if not kept:
            # The query was only type patterns; evaluate them directly.
            kept = list(patterns)
            constraints = {}

        # The optimal plan: variables ordered by how many patterns they
        # touch (most joined first), then patterns joined variable by
        # variable.
        var_count: Dict[str, int] = {}
        for pattern in kept:
            for variable in pattern.variables():
                var_count[variable.name] = var_count.get(variable.name, 0) + 1
        variable_order = sorted(
            var_count, key=lambda name: (-var_count[name], name)
        )

        result: Optional[RDD] = None
        bound: Set[str] = set()
        evaluated: Set[int] = set()
        for variable in variable_order:
            for index, pattern in enumerate(kept):
                if index in evaluated:
                    continue
                if variable not in {v.name for v in pattern.variables()}:
                    continue
                rdsg = self._generate_rdsg(pattern, constraints, variable)
                pattern_vars = {v.name for v in pattern.variables()}
                if result is None:
                    result = rdsg
                    bound = pattern_vars
                else:
                    shared = sorted(bound & pattern_vars)
                    result = self._rdsg_join(result, rdsg, shared)
                    bound |= pattern_vars
                evaluated.add(index)
        # Patterns with no variables at all (fully ground).
        for index, pattern in enumerate(kept):
            if index in evaluated:
                exists = True
            else:
                exists = bool(self._match_pattern(pattern, constraints))
                evaluated.add(index)
                if not exists:
                    return self.ctx.emptyRDD()
        if result is None:
            return self.ctx.parallelize([{}], 1)
        return result

    def _rdsg_join(self, left: RDD, right: RDD, shared: List[str]) -> RDD:
        """Distributed join of two RDSGs on shared variables."""
        if not shared:
            return left.cartesian(right).map(
                lambda pair: {**pair[0], **pair[1]}
            )
        key_vars = tuple(shared)

        def key_of(binding: dict):
            if len(key_vars) == 1:
                return (binding[key_vars[0]],)
            return tuple(binding[name] for name in key_vars)

        joined = left.map(lambda b: (key_of(b), b)).join(
            right.map(lambda b: (key_of(b), b))
        )
        return joined.map(lambda kv: {**kv[1][0], **kv[1][1]})
