"""SPARQLGX [13]: vertical partitioning with statistics-based join order.

Mechanics reproduced from Section IV-A1 of the paper:

* *Storage* -- the dataset is vertically partitioned: a triple ``(s p o)``
  is stored in a file named after ``p`` whose content keeps only the
  ``(s, o)`` entries.  Queries with bounded predicates therefore read only
  the relevant predicate stores (reduced memory footprint and response
  time).
* *Translation* -- triple patterns are mapped one by one onto the RDD API;
  each sub-query result is joined with the next one sharing a variable
  (``keyBy`` on the common variable); with no common variable the cross
  product is computed.
* *Optimization* -- statistics (counts of all distinct subjects,
  predicates and objects) reorder the join execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.spark.rdd import RDD
from repro.sparql.ast import TriplePattern, Variable
from repro.stats import StatsCatalog
from repro.sparql.fragments import (
    FEATURE_BGP,
    FEATURE_DISTINCT,
    FEATURE_FILTER,
    FEATURE_OPTIONAL,
    FEATURE_ORDER_BY,
    FEATURE_UNION,
)
from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    join_binding_rdds,
    pattern_variables,
    triple_matches_pattern,
)


class SparqlgxEngine(SparkRdfEngine):
    """Vertically partitioned RDF store on the RDD API."""

    profile = EngineProfile(
        name="SPARQLGX",
        citation="[13]",
        data_model=DataModel.TRIPLE,
        abstractions=(SparkAbstraction.RDD,),
        query_processing=QueryProcessing.RDD_API,
        optimization=Optimization.YES,
        partitioning=PartitioningStrategy.VERTICAL,
        sparql_features=frozenset(
            {
                FEATURE_BGP,
                FEATURE_DISTINCT,
                FEATURE_ORDER_BY,  # the paper's "SORT"
                FEATURE_UNION,
                FEATURE_OPTIONAL,
                FEATURE_FILTER,
            }
        ),
        contribution=Contribution.ALL_QUERY_TYPES,
        description=(
            "One (s, o) store per predicate; statistics-driven join "
            "reordering."
        ),
    )

    def __init__(self, ctx=None, enable_reordering: bool = True) -> None:
        super().__init__(ctx)
        #: Ablation switch: disable the statistics-based join reordering.
        self.enable_reordering = enable_reordering

    def _build(self, graph: RDFGraph) -> None:
        # One "file" (RDD) per predicate, holding (s, o) pairs only.
        self.vp_tables: Dict[Term, RDD] = {}
        for predicate in sorted(graph.predicates(), key=lambda t: t.sort_key()):
            pairs = [
                (t.subject, t.object)
                for t in graph.triples((None, predicate, None))
            ]
            pairs.sort(key=lambda so: (so[0].sort_key(), so[1].sort_key()))
            self.vp_tables[predicate] = self.ctx.parallelize(pairs).cache()

        # Statistics come from the shared catalog (repro.stats): the same
        # one pass the cost-based optimizer uses.  The numbers it yields
        # (per-predicate partition sizes, distinct subject / predicate /
        # object counts) are exactly what this engine counted privately
        # before, so the reordering heuristic is unchanged.
        self.catalog = StatsCatalog.from_graph(graph)
        self.vp_sizes: Dict[Term, int] = {
            predicate: self.catalog.predicate_count(predicate.n3())
            for predicate in self.vp_tables
        }
        self.stats = {
            "distinct_subjects": self.catalog.distinct_subjects,
            "distinct_predicates": self.catalog.distinct_predicates,
            "distinct_objects": self.catalog.distinct_objects,
            "triples": self.catalog.triples,
        }

    # ------------------------------------------------------------------

    def _estimated_cardinality(self, pattern: TriplePattern) -> float:
        """Stats-based selectivity estimate used to reorder joins."""
        if isinstance(pattern.predicate, Variable):
            base = float(self.stats["triples"])
        else:
            base = float(self.vp_sizes.get(pattern.predicate, 0))
        if not isinstance(pattern.subject, Variable):
            base /= max(self.stats["distinct_subjects"], 1)
        if not isinstance(pattern.object, Variable):
            base /= max(self.stats["distinct_objects"], 1)
        return base

    def _order_patterns(
        self, patterns: List[TriplePattern]
    ) -> List[TriplePattern]:
        """Most selective first, then greedily keep joins connected."""
        remaining = sorted(patterns, key=self._estimated_cardinality)
        ordered = [remaining.pop(0)]
        bound: Set[str] = {v.name for v in ordered[0].variables()}
        while remaining:
            index = next(
                (
                    i
                    for i, p in enumerate(remaining)
                    if bound & {v.name for v in p.variables()}
                ),
                0,
            )
            chosen = remaining.pop(index)
            ordered.append(chosen)
            bound |= {v.name for v in chosen.variables()}
        return ordered

    def _pattern_rdd(self, pattern: TriplePattern) -> RDD:
        """The bindings of one pattern, scanning only its predicate store."""
        if isinstance(pattern.predicate, Variable):
            # Unbounded predicate: every store must be read.
            result: Optional[RDD] = None
            for predicate, table in self.vp_tables.items():
                part = self._match_in_store(pattern, predicate, table)
                result = part if result is None else result.union(part)
            return result if result is not None else self.ctx.emptyRDD()
        table = self.vp_tables.get(pattern.predicate)
        if table is None:
            return self.ctx.emptyRDD()
        return self._match_in_store(pattern, pattern.predicate, table)

    def _match_in_store(
        self, pattern: TriplePattern, predicate: Term, table: RDD
    ) -> RDD:
        def match(part: List[Tuple[Term, Term]]) -> List[dict]:
            out = []
            for s, o in part:
                binding = triple_matches_pattern((s, predicate, o), pattern)
                if binding is not None:
                    out.append(binding)
            return out

        return table.mapPartitions(match)

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        if self.enable_reordering:
            ordered = self._order_patterns(list(patterns))
        else:
            ordered = list(patterns)
        result: Optional[RDD] = None
        bound: Set[str] = set()
        for pattern in ordered:
            matches = self._pattern_rdd(pattern)
            if result is None:
                result = matches
                bound = set(pattern_variables([pattern]))
            else:
                shared = sorted(bound & set(pattern_variables([pattern])))
                # keyBy on the common variable, or cross product if none.
                result = join_binding_rdds(result, matches, shared)
                bound |= set(pattern_variables([pattern]))
        assert result is not None
        return result
