"""Bahrami, Gulati & Abulaish [4]: SPARQL over the GraphFrames API.

Mechanics reproduced from Section IV-B2 of the paper:

* The input dataset splits into a **nodelist** and an **edgelist** used to
  build an unweighted labeled graph (a GraphFrame of vertex and edge
  DataFrames).
* SPARQL queries become **query graphs** that are optimized before
  matching: sub-queries are sorted in **non-descending predicate
  frequency** order (rarest predicates first), then **local search space
  pruning** discards every triple whose predicate no BGP pattern mentions,
  yielding a much smaller temporary graph.
* The optimized query runs as **subgraph matching** -- here through the
  GraphFrames motif language -- over the pruned graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.spark.column import col, lit
from repro.spark.dataframe import DataFrame
from repro.spark.graphframes import GraphFrame
from repro.spark.rdd import RDD
from repro.spark.sql.session import SparkSession
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import FEATURE_BGP
from repro.systems.base import EngineProfile, SparkRdfEngine


class GraphFramesEngine(SparkRdfEngine):
    """Motif-based subgraph matching with frequency ordering and pruning."""

    profile = EngineProfile(
        name="GraphFrames-RDF",
        citation="[4]",
        data_model=DataModel.GRAPH,
        abstractions=(SparkAbstraction.GRAPHFRAMES,),
        query_processing=QueryProcessing.SUBGRAPH_MATCHING,
        optimization=Optimization.YES,
        partitioning=PartitioningStrategy.DEFAULT,
        sparql_features=frozenset({FEATURE_BGP}),
        contribution=Contribution.GRAPH_MATCHING,
        description=(
            "Nodelist/edgelist GraphFrame; predicate-frequency ordering and "
            "local search-space pruning before motif matching."
        ),
    )

    #: Set by the last query: edges surviving local search-space pruning.
    last_pruned_edge_count: Optional[int] = None

    def _build(self, graph: RDFGraph) -> None:
        self.session = SparkSession(self.ctx)
        nodes = sorted(
            graph.subjects() | graph.objects(), key=lambda t: t.sort_key()
        )
        vertices = self.session.createDataFrame(
            [(node,) for node in nodes], ["id"]
        )
        edges = self.session.createDataFrame(
            [
                (t.subject, t.object, t.predicate)
                for t in sorted(graph)
            ],
            ["src", "dst", "label"],
        )
        self.gframe = GraphFrame(vertices.cache(), edges.cache())
        self.predicate_frequency: Dict[Term, int] = {}
        for triple in graph:
            self.predicate_frequency[triple.predicate] = (
                self.predicate_frequency.get(triple.predicate, 0) + 1
            )
        self.total_edges = len(graph)

    # ------------------------------------------------------------------

    def _order_patterns(
        self, patterns: List[TriplePattern]
    ) -> List[TriplePattern]:
        """Non-descending predicate frequency (rarest first)."""

        def frequency(pattern: TriplePattern) -> int:
            if isinstance(pattern.predicate, Variable):
                return self.total_edges
            return self.predicate_frequency.get(pattern.predicate, 0)

        return sorted(patterns, key=frequency)

    def _pruned_graph(self, patterns: List[TriplePattern]) -> GraphFrame:
        """Local search-space pruning: drop edges of unmentioned predicates."""
        constants = [
            p.predicate
            for p in patterns
            if not isinstance(p.predicate, Variable)
        ]
        if len(constants) < len(patterns):
            # A variable predicate may match anything: no pruning possible.
            self.last_pruned_edge_count = self.total_edges
            return self.gframe
        labels = sorted(set(constants), key=lambda term: term.sort_key())
        pruned = self.gframe.filterEdges(col("label").isin(labels))
        self.last_pruned_edge_count = pruned.edges.count()
        return pruned

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        ordered = self._order_patterns(list(patterns))
        target = self._pruned_graph(ordered)

        # Map SPARQL variables/constants to motif vertex names.
        names: Dict[str, str] = {}
        constant_conditions: List[Tuple[str, Term]] = []
        equality_conditions: List[Tuple[str, str]] = []

        def vertex_name(position, fresh_hint: str) -> str:
            if isinstance(position, Variable):
                if position.name not in names:
                    names[position.name] = "v%d" % len(names)
                return names[position.name]
            fresh = "c%s" % fresh_hint
            constant_conditions.append((fresh, position))
            return fresh

        motif_terms: List[str] = []
        label_vars: Dict[str, str] = {}  # predicate variable -> first edge
        label_conditions: List[Tuple[str, Term]] = []
        for index, pattern in enumerate(ordered):
            src = vertex_name(pattern.subject, "s%d" % index)
            dst = vertex_name(pattern.object, "o%d" % index)
            if src == dst:
                # Self-loop on one variable: motif needs distinct names.
                alias = "%s_loop%d" % (src, index)
                equality_conditions.append((src, alias))
                dst = alias
            edge = "e%d" % index
            motif_terms.append("(%s)-[%s]->(%s)" % (src, edge, dst))
            if isinstance(pattern.predicate, Variable):
                name = pattern.predicate.name
                if name in label_vars:
                    equality_conditions.append(
                        ("%s.label" % label_vars[name], "%s.label" % edge)
                    )
                else:
                    label_vars[name] = edge
            else:
                label_conditions.append((edge, pattern.predicate))

        result = target.find("; ".join(motif_terms))
        for edge, predicate in label_conditions:
            result = result.where(col("%s.label" % edge) == lit(predicate))
        for name, term in constant_conditions:
            result = result.where(col("%s.id" % name) == lit(term))
        for left, right in equality_conditions:
            left_col = left if "." in left else "%s.id" % left
            right_col = right if "." in right else "%s.id" % right
            result = result.where(col(left_col) == col(right_col))

        columns = list(result.columns)
        var_columns: Dict[str, str] = {}
        for var_name, motif_name in names.items():
            var_columns[var_name] = "%s.id" % motif_name
        for var_name, edge in label_vars.items():
            var_columns[var_name] = "%s.label" % edge

        def to_binding(values: tuple) -> dict:
            row = dict(zip(columns, values))
            return {
                var_name: row[column]
                for var_name, column in var_columns.items()
            }

        return result.rdd.map(to_binding)
