"""S2RDF [24]: extended vertical partitioning (ExtVP) over Spark SQL.

Mechanics reproduced from Section IV-A2 of the paper:

* *ExtVP* -- besides one vertical-partition (VP) table per predicate,
  the loader pre-computes **semi-join reductions** between VP tables for
  the three correlations SPARQL joins exhibit: subject-subject (SS),
  object-subject (OS) and subject-object (SO).  At query time a triple
  pattern reads the smallest reduction applicable to its joins instead of
  the full VP table, which is where the paper's "10,000 comparisons vs 10"
  example comes from.
* *Selectivity factor* -- each ExtVP table's size relative to its VP table
  is its SF; tables with SF above the threshold are not kept (they would
  save little and cost storage).
* *Query compilation* -- SPARQL is parsed to an algebra tree (Jena ARQ in
  the original; :mod:`repro.sparql` here) and traversed to emit a Spark
  SQL query; sub-queries are ordered by bound-variable count, then table
  size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.encoding import Dictionary
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.spark.context import SparkContext
from repro.spark.rdd import RDD
from repro.spark.sql.session import SparkSession
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import (
    FEATURE_BGP,
    FEATURE_DISTINCT,
    FEATURE_FILTER,
    FEATURE_LIMIT,
    FEATURE_OFFSET,
    FEATURE_ORDER_BY,
    FEATURE_UNION,
)
from repro.systems.base import EngineProfile, SparkRdfEngine

#: ExtVP correlation kinds: how pattern 1's table is restricted by pattern 2.
_EXTVP_KINDS = ("ss", "os", "so")


class S2RdfEngine(SparkRdfEngine):
    """ExtVP storage with SPARQL-to-Spark-SQL compilation."""

    profile = EngineProfile(
        name="S2RDF",
        citation="[24]",
        data_model=DataModel.TRIPLE,
        abstractions=(SparkAbstraction.SPARK_SQL,),
        query_processing=QueryProcessing.SPARK_SQL,
        optimization=Optimization.YES,
        partitioning=PartitioningStrategy.EXTENDED_VERTICAL,
        sparql_features=frozenset(
            {
                FEATURE_BGP,
                FEATURE_FILTER,
                FEATURE_UNION,
                FEATURE_OFFSET,
                FEATURE_LIMIT,
                FEATURE_ORDER_BY,
                FEATURE_DISTINCT,
            }
        ),
        contribution=Contribution.ALL_QUERY_TYPES,
        description=(
            "Semi-join-reduced vertical partitions (ExtVP) queried through "
            "generated Spark SQL."
        ),
    )

    def __init__(
        self,
        ctx: Optional[SparkContext] = None,
        sf_threshold: float = 0.95,
        build_extvp: bool = True,
    ) -> None:
        super().__init__(ctx)
        if not 0.0 < sf_threshold <= 1.0:
            raise ValueError("sf_threshold must be in (0, 1]")
        self.sf_threshold = sf_threshold
        self.build_extvp = build_extvp

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def _build(self, graph: RDFGraph) -> None:
        self.session = SparkSession(self.ctx)
        self.dictionary = Dictionary()
        self.table_sizes: Dict[str, int] = {}
        #: predicate id -> VP table name
        self._vp_names: Dict[int, str] = {}
        #: (kind, p1 id, p2 id) -> ExtVP table name (only kept tables)
        self._extvp_names: Dict[Tuple[str, int, int], str] = {}
        #: (kind, p1, p2) -> selectivity factor, for all computed pairs
        self.selectivity_factors: Dict[Tuple[str, int, int], float] = {}

        encoded = [self.dictionary.encode(t).as_tuple() for t in sorted(graph)]

        all_df = self.session.createDataFrame(encoded, ["s", "p", "o"])
        self.session.createOrReplaceTempView("alltriples", all_df.cache())
        self.table_sizes["alltriples"] = len(encoded)

        by_predicate: Dict[int, List[Tuple[int, int]]] = {}
        for s, p, o in encoded:
            by_predicate.setdefault(p, []).append((s, o))
        for predicate_id, pairs in sorted(by_predicate.items()):
            name = "vp_%d" % predicate_id
            df = self.session.createDataFrame(pairs, ["s", "o"])
            self.session.createOrReplaceTempView(name, df.cache())
            self._vp_names[predicate_id] = name
            self.table_sizes[name] = len(pairs)

        if self.build_extvp:
            self._build_extvp(by_predicate)

    def _build_extvp(
        self, by_predicate: Dict[int, List[Tuple[int, int]]]
    ) -> None:
        """Pre-compute the SS/OS/SO semi-join reductions (via Spark SQL)."""
        join_columns = {"ss": ("s", "s"), "os": ("o", "s"), "so": ("s", "o")}
        predicates = sorted(by_predicate)
        for p1 in predicates:
            vp1 = self._vp_names[p1]
            for p2 in predicates:
                for kind in _EXTVP_KINDS:
                    if p1 == p2 and kind == "ss":
                        continue  # SF is 1 by construction, never kept.
                    left_col, right_col = join_columns[kind]
                    vp2 = self._vp_names[p2]
                    sql = (
                        "SELECT a.s AS s, a.o AS o FROM %s AS a "
                        "LEFT SEMI JOIN %s AS b ON a.%s = b.%s"
                        % (vp1, vp2, left_col, right_col)
                    )
                    reduced = self.session.sql(sql).cache()
                    size = reduced.count()
                    base = self.table_sizes[vp1]
                    sf = size / base if base else 1.0
                    self.selectivity_factors[(kind, p1, p2)] = sf
                    if 0 < size and sf < self.sf_threshold:
                        name = "extvp_%s_%d_%d" % (kind, p1, p2)
                        self.session.createOrReplaceTempView(name, reduced)
                        self._extvp_names[(kind, p1, p2)] = name
                        self.table_sizes[name] = size

    def extvp_table_count(self) -> int:
        """How many ExtVP tables the SF threshold kept."""
        return len(self._extvp_names)

    def storage_rows(self, include_extvp: bool = True) -> int:
        """Total stored rows (VP tables, optionally plus ExtVP tables)."""
        total = sum(
            size
            for name, size in self.table_sizes.items()
            if name.startswith("vp_")
        )
        if include_extvp:
            total += sum(
                size
                for name, size in self.table_sizes.items()
                if name.startswith("extvp_")
            )
        return total

    # ------------------------------------------------------------------
    # Query compilation
    # ------------------------------------------------------------------

    def _encode(self, term: Term) -> Optional[int]:
        if term not in self.dictionary:
            return None
        return self.dictionary.lookup_term(term)

    def _choose_table(
        self,
        index: int,
        patterns: Sequence[TriplePattern],
    ) -> Optional[str]:
        """Smallest applicable table for pattern *index* (VP or ExtVP)."""
        pattern = patterns[index]
        if isinstance(pattern.predicate, Variable):
            return "alltriples"
        p1 = self._encode(pattern.predicate)
        if p1 is None or p1 not in self._vp_names:
            return None  # predicate never occurs: empty result
        best = self._vp_names[p1]
        best_size = self.table_sizes[best]
        for j, other in enumerate(patterns):
            if j == index or isinstance(other.predicate, Variable):
                continue
            p2 = self._encode(other.predicate)
            if p2 is None:
                continue
            for kind, mine, theirs in (
                ("ss", pattern.subject, other.subject),
                ("os", pattern.object, other.subject),
                ("so", pattern.subject, other.object),
            ):
                if (
                    isinstance(mine, Variable)
                    and isinstance(theirs, Variable)
                    and mine == theirs
                ):
                    name = self._extvp_names.get((kind, p1, p2))
                    if name is not None and self.table_sizes[name] < best_size:
                        best = name
                        best_size = self.table_sizes[name]
        return best

    def _order_patterns(
        self, patterns: List[TriplePattern]
    ) -> List[int]:
        """Pattern order: most bound variables first, then smallest table."""

        def sort_key(index: int):
            pattern = patterns[index]
            table = self._choose_table(index, patterns)
            size = self.table_sizes.get(table, 0) if table else 0
            return (-pattern.bound_count(), size)

        order = sorted(range(len(patterns)), key=sort_key)
        # Keep joins connected where possible.
        ordered: List[int] = [order.pop(0)]
        bound = {v.name for v in patterns[ordered[0]].variables()}
        while order:
            position = next(
                (
                    pos
                    for pos, i in enumerate(order)
                    if bound & {v.name for v in patterns[i].variables()}
                ),
                0,
            )
            chosen = order.pop(position)
            ordered.append(chosen)
            bound |= {v.name for v in patterns[chosen].variables()}
        return ordered

    def compile_sql(
        self, patterns: List[TriplePattern]
    ) -> Optional[Tuple[str, List[str]]]:
        """The generated Spark SQL text plus the projected variable names.

        Returns None when some constant in the query cannot match any data
        (guaranteed-empty result).
        """
        order = self._order_patterns(list(patterns))
        aliases = {index: "t%d" % k for k, index in enumerate(order)}
        variables: List[str] = []
        var_source: Dict[str, str] = {}
        from_parts: List[str] = []
        where_parts: List[str] = []

        for k, index in enumerate(order):
            pattern = patterns[index]
            table = self._choose_table(index, patterns)
            if table is None:
                return None
            alias = aliases[index]
            columns = (
                {"subject": "s", "predicate": "p", "object": "o"}
                if table == "alltriples"
                else {"subject": "s", "object": "o"}
            )
            join_conditions: List[str] = []
            for position, column in columns.items():
                value = getattr(pattern, position)
                qualified = "%s.%s" % (alias, column)
                if isinstance(value, Variable):
                    if value.name in var_source:
                        join_conditions.append(
                            "%s = %s" % (qualified, var_source[value.name])
                        )
                    else:
                        var_source[value.name] = qualified
                        variables.append(value.name)
                else:
                    encoded = self._encode(value)
                    if encoded is None:
                        return None
                    where_parts.append("%s = %d" % (qualified, encoded))
            if table != "alltriples" and not isinstance(
                pattern.predicate, Variable
            ):
                pass  # predicate constraint is implicit in the VP table
            if k == 0:
                from_parts.append("%s AS %s" % (table, alias))
            elif join_conditions:
                from_parts.append(
                    "JOIN %s AS %s ON %s"
                    % (table, alias, " AND ".join(join_conditions))
                )
            else:
                from_parts.append("CROSS JOIN %s AS %s" % (table, alias))
            # Equalities discovered later (same variable in this pattern
            # joining an earlier one) go to WHERE via join_conditions above;
            # duplicates within one pattern (?x p ?x) need an extra check.
            if join_conditions and k == 0:
                where_parts.extend(join_conditions)

        select_list = ", ".join(
            "%s AS %s" % (var_source[name], name) for name in variables
        )
        if not variables:
            select_list = "%s.%s AS one" % (aliases[order[0]], "s")
        sql = "SELECT %s FROM %s" % (select_list, " ".join(from_parts))
        if where_parts:
            sql += " WHERE %s" % " AND ".join(where_parts)
        return sql, variables

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        compiled = self.compile_sql(list(patterns))
        if compiled is None:
            return self.ctx.emptyRDD()
        sql, variables = compiled
        self.last_sql = sql
        result = self.session.sql(sql)
        dictionary = self.dictionary
        names = list(result.columns)

        def decode(values: tuple) -> dict:
            return {
                name: dictionary.decode_id(value)
                for name, value in zip(names, values)
                if name in variables
            }

        return result.rdd.map(decode)
