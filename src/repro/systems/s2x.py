"""S2X [23]: graph-parallel SPARQL over GraphX plus data-parallel operators.

Mechanics reproduced from Section IV-B1 of the paper:

* RDF is modeled as a **property graph**: vertex properties hold the
  subject/object URI and a structure of candidate query variables; the
  edge property holds the predicate URI.
* *Matching* -- every triple pattern of the BGP is first matched
  independently against all edges (producing per-edge match candidates);
  every vertex then records the query variables it is a candidate for.
* *Validation* -- candidates are validated iteratively: a vertex stays a
  candidate for a variable only while, for every pattern containing that
  variable, some edge match survives in which the vertex plays that role
  and the adjacent vertex is still a candidate for its own variable.
  Invalidated candidates are discarded and the change propagates to the
  neighbours in the next superstep, "until they do not change anymore".
* *Assembly* -- the surviving per-pattern matches are joined with
  data-parallel Spark operators into final results; the remaining SPARQL
  operators (OPTIONAL, FILTER, ORDER BY, LIMIT...) also run on the Spark
  API (the shared driver in :mod:`repro.systems.base`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.spark.graphx import Edge, Graph
from repro.spark.rdd import RDD
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import (
    FEATURE_BGP,
    FEATURE_FILTER,
    FEATURE_LIMIT,
    FEATURE_OFFSET,
    FEATURE_OPTIONAL,
    FEATURE_ORDER_BY,
)
from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    fold_join_order,
    join_binding_rdds,
    pattern_variables,
)


class S2XEngine(SparkRdfEngine):
    """Graph-parallel BGP matching with iterative candidate validation."""

    profile = EngineProfile(
        name="S2X",
        citation="[23]",
        data_model=DataModel.GRAPH,
        abstractions=(SparkAbstraction.GRAPHX,),
        query_processing=QueryProcessing.GRAPH_ITERATIONS,
        optimization=Optimization.NO,
        partitioning=PartitioningStrategy.DEFAULT,
        sparql_features=frozenset(
            {
                FEATURE_BGP,
                FEATURE_OPTIONAL,
                FEATURE_FILTER,
                FEATURE_ORDER_BY,
                FEATURE_LIMIT,
                FEATURE_OFFSET,
            }
        ),
        contribution=Contribution.GRAPH_MATCHING,
        description=(
            "Property graph on GraphX; per-edge match candidates validated "
            "by neighbour message exchange to fixpoint."
        ),
    )

    #: Number of validation supersteps taken by the last BGP evaluation.
    last_validation_rounds: int = 0

    def __init__(self, ctx=None, validate: bool = True) -> None:
        super().__init__(ctx)
        #: Ablation switch: skip the iterative candidate validation and
        #: assemble raw edge matches directly.
        self.validate = validate

    def _build(self, graph: RDFGraph) -> None:
        vertices = sorted(
            graph.subjects() | graph.objects(), key=lambda t: t.sort_key()
        )
        vertex_rdd = self.ctx.parallelize([(v, None) for v in vertices])
        edge_rdd = self.ctx.parallelize(
            [Edge(t.subject, t.object, t.predicate) for t in sorted(graph)]
        )
        self.graph = Graph(vertex_rdd, edge_rdd)

    # ------------------------------------------------------------------

    def _edge_matches(self, pattern: TriplePattern) -> RDD:
        """Per-edge candidate bindings for one triple pattern (graph side)."""

        def match(part) -> List[dict]:
            out = []
            for triplet in part:
                binding: Dict[str, Term] = {}
                ok = True
                for position, value in (
                    (pattern.subject, triplet.src),
                    (pattern.predicate, triplet.attr),
                    (pattern.object, triplet.dst),
                ):
                    if isinstance(position, Variable):
                        bound = binding.get(position.name)
                        if bound is None:
                            binding[position.name] = value
                        elif bound != value:
                            ok = False
                            break
                    elif position != value:
                        ok = False
                        break
                if ok:
                    out.append(binding)
            return out

        return self.graph.triplets().mapPartitions(match)

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        ordered = fold_join_order(patterns)
        matches: List[RDD] = [self._edge_matches(p).cache() for p in ordered]

        # Iterative validation: per-variable candidate sets shrink until
        # adjacent match sets agree (the paper's local/remote match
        # exchange, expressed as a broadcast semi-join fixpoint).
        var_patterns: Dict[str, List[int]] = {}
        for index, pattern in enumerate(ordered):
            for variable in pattern.variables():
                var_patterns.setdefault(variable.name, []).append(index)

        rounds = 0
        changed = self.validate
        while changed:
            rounds += 1
            changed = False
            candidates: Dict[str, Set[Term]] = {}
            for name, indices in var_patterns.items():
                sets = []
                for index in indices:
                    sets.append(
                        set(
                            matches[index]
                            .map(lambda b, n=name: b[n])
                            .distinct()
                            .collect()
                        )
                    )
                valid = set.intersection(*sets) if sets else set()
                candidates[name] = valid
            bcast = self.ctx.broadcast(candidates)
            for index in range(len(matches)):
                before = matches[index].count()
                filtered = matches[index].filter(
                    lambda b: all(
                        value in bcast.value[name]
                        for name, value in b.items()
                    )
                ).cache()
                after = filtered.count()
                if after != before:
                    changed = True
                matches[index] = filtered
            if rounds > len(ordered) + 2:
                break
        self.last_validation_rounds = rounds

        # Assembly with data-parallel joins.
        result: Optional[RDD] = None
        bound: Set[str] = set()
        for index, pattern in enumerate(ordered):
            if result is None:
                result = matches[index]
                bound = set(pattern_variables([pattern]))
            else:
                shared = sorted(bound & set(pattern_variables([pattern])))
                result = join_binding_rdds(result, matches[index], shared)
                bound |= set(pattern_variables([pattern]))
        assert result is not None
        return result
