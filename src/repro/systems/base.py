"""The common engine interface and the shared distributed query driver.

Every surveyed system provides a distributed *BGP* evaluator; the
operations beyond BGPs -- FILTER, OPTIONAL, UNION, solution modifiers --
are, as the paper repeatedly notes (e.g. for S2X: "implemented with the
use of Spark API"), executed with ordinary data-parallel Spark operators.
:class:`SparkRdfEngine` therefore drives the full SPARQL algebra over RDDs
of bindings and delegates only BGP evaluation to each engine's specific
storage/partitioning/matching machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.spark.context import SparkContext
from repro.spark.faults import TaskFailedError
from repro.spark.rdd import RDD
from repro.sparql.algebra import (
    AlgebraFilter,
    AlgebraJoin,
    AlgebraNode,
    AlgebraUnion,
    BGP,
    LeftJoin,
    apply_solution_modifiers,
    translate,
)
from repro.sparql.ast import AskQuery, Query, SelectQuery, TriplePattern, Variable
from repro.sparql.filtereval import passes_filter
from repro.sparql.fragments import (
    ALL_FEATURES,
    FEATURE_BGP,
    features_of,
)
from repro.sparql.parser import parse_sparql
from repro.sparql.results import Solution, SolutionSet

#: A binding inside an RDD: variable name -> term.
Binding = Dict[str, Term]


class UnsupportedQueryError(ValueError):
    """The engine's published SPARQL fragment does not cover the query."""


@dataclass(frozen=True)
class EngineProfile:
    """Machine-readable Table I/II classification of one system."""

    name: str
    citation: str
    data_model: DataModel
    abstractions: Tuple[SparkAbstraction, ...]
    query_processing: QueryProcessing
    optimization: Optimization
    partitioning: PartitioningStrategy
    sparql_features: FrozenSet[str]
    contribution: Contribution
    description: str = ""

    @property
    def sparql_fragment(self) -> str:
        """"BGP" or "BGP+" exactly as Table II prints it."""
        return "BGP" if self.sparql_features == {FEATURE_BGP} else "BGP+"


def pattern_variables(patterns: Sequence[TriplePattern]) -> List[str]:
    """All variable names across *patterns*, in first-seen order."""
    seen: List[str] = []
    for pattern in patterns:
        for variable in pattern.variables():
            if variable.name not in seen:
                seen.append(variable.name)
    return seen


def node_variables(node: AlgebraNode) -> Set[str]:
    """Variables an algebra node can bind (for static join-key planning)."""
    if isinstance(node, BGP):
        return set(pattern_variables(node.patterns))
    if isinstance(node, (AlgebraJoin, LeftJoin)):
        return node_variables(node.left) | node_variables(node.right)
    if isinstance(node, AlgebraUnion):
        out: Set[str] = set()
        for branch in node.branches:
            out |= node_variables(branch)
        return out
    if isinstance(node, AlgebraFilter):
        return node_variables(node.child)
    raise TypeError("unknown algebra node %r" % (node,))


def _force_rdd(rdd: RDD) -> RDD:
    """Materialize *rdd* now (cached), so its lazily charged costs land in
    the currently open trace span instead of wherever a downstream action
    happens to fire.  Downstream consumers read the cache, so nothing is
    double-charged."""
    rdd.cache()
    rdd.count()
    return rdd


def _algebra_span_args(node: AlgebraNode) -> Tuple[str, Dict[str, object]]:
    """(span kind, span attrs) describing one algebra operator."""
    if isinstance(node, BGP):
        return "bgp", {"patterns": [repr(p) for p in node.patterns]}
    if isinstance(node, (AlgebraJoin, LeftJoin)):
        shared = sorted(node_variables(node.left) & node_variables(node.right))
        kind = "leftjoin" if isinstance(node, LeftJoin) else "join"
        return kind, {"on": ",".join(shared)}
    if isinstance(node, AlgebraUnion):
        return "union", {"branches": len(node.branches)}
    if isinstance(node, AlgebraFilter):
        return "filter", {"expression": repr(node.expression)}
    return type(node).__name__.lower(), {}


def join_binding_rdds(
    left: RDD, right: RDD, shared: Sequence[str], how: str = "inner"
) -> RDD:
    """Join two RDDs of bindings on the given shared variable names.

    With no shared variables this degenerates to a cartesian product --
    exactly Spark's behaviour the paper criticizes.  When the context's
    tracer is enabled each call emits a ``bgp_step`` span -- engines call
    this once per incremental pattern join, which is exactly the per-join-
    stage granularity the S2RDF and Naacke et al. evaluations report.
    """
    tracer = left.ctx.tracer
    if not tracer.enabled:
        return _join_binding_rdds(left, right, shared, how)
    with tracer.span(
        "bgp_step",
        name="cartesian" if not shared else "hash",
        on=",".join(sorted(shared)),
        how=how,
    ):
        return _force_rdd(_join_binding_rdds(left, right, shared, how))


def _join_binding_rdds(
    left: RDD, right: RDD, shared: Sequence[str], how: str = "inner"
) -> RDD:
    if not shared:
        product = left.cartesian(right)
        return product.map(lambda pair: {**pair[0], **pair[1]})
    key = tuple(sorted(shared))

    def key_of(binding: Binding):
        return tuple(binding[name] for name in key)

    left_pairs = left.map(lambda b: (key_of(b), b))
    right_pairs = right.map(lambda b: (key_of(b), b))
    if how == "inner":
        joined = left_pairs.join(right_pairs)
        return joined.map(lambda kv: {**kv[1][0], **kv[1][1]})
    if how == "left":
        joined = left_pairs.leftOuterJoin(right_pairs)
        return joined.map(
            lambda kv: {**kv[1][0], **(kv[1][1] or {})}
        )
    raise ValueError("unknown join type %r" % how)


class SparkRdfEngine:
    """Abstract distributed SPARQL engine over the simulated cluster.

    Subclasses set :attr:`profile`, build their store in :meth:`_build`,
    and evaluate basic graph patterns in :meth:`_evaluate_bgp`.
    """

    profile: EngineProfile

    def __init__(self, ctx: Optional[SparkContext] = None) -> None:
        self.ctx = ctx or SparkContext()
        self._loaded = False
        #: Opt-in cost-based planner (see :mod:`repro.optimizer`).  When
        #: set, multi-pattern BGPs are ordered and physically planned by
        #: the shared optimizer instead of the engine's own heuristics;
        #: ``None`` keeps the engine's native path (the ablation baseline).
        self.optimizer = None

    def set_optimizer(self, optimizer) -> "SparkRdfEngine":
        """Attach (or detach, with ``None``) the shared cost-based planner."""
        self.optimizer = optimizer
        return self

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, graph: RDFGraph) -> "SparkRdfEngine":
        """Ingest a graph, building the engine's distributed representation."""
        self._build(graph)
        self._loaded = True
        return self

    def _build(self, graph: RDFGraph) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def supports(self, query: Query) -> bool:
        """Whether the engine's published fragment covers *query*."""
        return features_of(query) <= self.profile.sparql_features

    def execute(self, query: Union[str, Query]):
        """Run a SPARQL query.

        SELECT -> :class:`SolutionSet`, ASK -> bool, CONSTRUCT/DESCRIBE ->
        :class:`~repro.rdf.graph.RDFGraph` (Section II-B's output types).
        The WHERE clause always evaluates distributedly through the
        engine's own machinery.

        When the context carries a fault schedule, recovery (task retry,
        lineage recomputation, speculation) is transparent: answers are
        identical to the fault-free run.  Only a schedule that exhausts
        ``max_task_attempts`` escapes, as a
        :class:`~repro.spark.faults.TaskFailedError` tagged with this
        engine's name.
        """
        if isinstance(query, str):
            query = parse_sparql(query)
        if not self._loaded:
            raise RuntimeError("call load() before execute()")
        if not self.supports(query):
            missing = features_of(query) - self.profile.sparql_features
            raise UnsupportedQueryError(
                "%s supports %s only; query needs %s"
                % (
                    self.profile.name,
                    self.profile.sparql_fragment,
                    sorted(missing),
                )
            )
        try:
            tracer = self.ctx.tracer
            if not tracer.enabled:
                return self._execute_parsed(query)
            with tracer.span(
                "query",
                name=type(query).__name__.replace("Query", "").lower(),
                engine=self.profile.name,
            ):
                return self._execute_parsed(query)
        except TaskFailedError as exc:
            if exc.engine is None:
                exc.engine = self.profile.name
            raise

    def _execute_parsed(self, query: Query):
        """Run an already parsed, supported query (the body of execute)."""
        from repro.sparql.algebra import (
            instantiate_template,
            translate_group,
        )
        from repro.sparql.ast import ConstructQuery, DescribeQuery

        if isinstance(query, ConstructQuery):
            bindings = self._evaluate_node(translate_group(query.where))
            solutions = [Solution(b) for b in bindings.collect()]
            return instantiate_template(query.template, solutions)
        if isinstance(query, DescribeQuery):
            return self._execute_describe(query)
        node = translate(query)
        bindings = self._evaluate_node(node)
        solutions = [Solution(b) for b in bindings.collect()]
        if isinstance(query, AskQuery):
            return bool(solutions)
        return apply_solution_modifiers(query, solutions)

    def _execute_describe(self, query):
        """DESCRIBE: resolve resources, then fetch their subject triples
        through the engine's own distributed pattern evaluation."""
        from repro.rdf.graph import RDFGraph
        from repro.rdf.triple import Triple, TripleValidityError
        from repro.sparql.algebra import translate_group

        resources = list(query.terms)
        if query.where is not None:
            bindings = self._evaluate_node(translate_group(query.where))
            for binding in bindings.collect():
                for variable in query.variables:
                    value = binding.get(variable.name)
                    if value is not None:
                        resources.append(value)
        graph = RDFGraph()
        for resource in dict.fromkeys(resources):
            try:
                pattern = TriplePattern(
                    resource, Variable("__dp"), Variable("__do")
                )
            except TripleValidityError:
                continue  # literal "resources" describe nothing
            for row in self._evaluate_bgp([pattern]).collect():
                graph.add(Triple(resource, row["__dp"], row["__do"]))
        return graph

    # ------------------------------------------------------------------
    # Algebra driver (data-parallel Spark operators)
    # ------------------------------------------------------------------

    def _evaluate_node(self, node: AlgebraNode) -> RDD:
        """Evaluate one algebra node, tracing it when the tracer is on.

        Traced evaluation materializes every operator's output inside its
        span (see :func:`_force_rdd`), which turns the lazy RDD pipeline
        into per-operator cost attribution without double-charging.
        """
        tracer = self.ctx.tracer
        if not tracer.enabled:
            return self._compute_node(node)
        kind, attrs = _algebra_span_args(node)
        with tracer.span(kind, **attrs):
            return _force_rdd(self._compute_node(node))

    def _compute_node(self, node: AlgebraNode) -> RDD:
        if isinstance(node, BGP):
            if not node.patterns:
                return self.ctx.parallelize([{}], 1)
            if self.optimizer is not None and len(node.patterns) > 1:
                return self.optimizer.execute_bgp(self, node.patterns)
            return self._evaluate_bgp(node.patterns)
        if isinstance(node, AlgebraJoin):
            left = self._evaluate_node(node.left)
            right = self._evaluate_node(node.right)
            shared = sorted(
                node_variables(node.left) & node_variables(node.right)
            )
            return join_binding_rdds(left, right, shared)
        if isinstance(node, LeftJoin):
            left = self._evaluate_node(node.left)
            right = self._evaluate_node(node.right)
            shared = sorted(
                node_variables(node.left) & node_variables(node.right)
            )
            return join_binding_rdds(left, right, shared, how="left")
        if isinstance(node, AlgebraUnion):
            result = self._evaluate_node(node.branches[0])
            for branch in node.branches[1:]:
                result = result.union(self._evaluate_node(branch))
            return result
        if isinstance(node, AlgebraFilter):
            child = self._evaluate_node(node.child)
            expression = node.expression
            return child.filter(
                lambda binding: passes_filter(expression, Solution(binding))
            )
        raise TypeError("unknown algebra node %r" % (node,))

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        """Engine-specific distributed BGP evaluation -> RDD of bindings."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "%s(loaded=%s)" % (type(self).__name__, self._loaded)


# ----------------------------------------------------------------------
# Shared pattern-matching helpers for RDD-based engines
# ----------------------------------------------------------------------


def triple_matches_pattern(
    triple_tuple: Tuple[Term, Term, Term], pattern: TriplePattern
) -> Optional[Binding]:
    """Bindings for a single triple against a pattern, or None."""
    binding: Binding = {}
    for value, position in zip(triple_tuple, pattern.positions()):
        if isinstance(position, Variable):
            bound = binding.get(position.name)
            if bound is not None and bound != value:
                return None
            binding[position.name] = value
        elif position != value:
            return None
    return binding


def fold_join_order(
    patterns: Sequence[TriplePattern],
) -> List[TriplePattern]:
    """Reorder patterns so each (after the first) shares a variable with an
    earlier one when possible, avoiding needless cartesian products."""
    remaining = list(patterns)
    ordered: List[TriplePattern] = [remaining.pop(0)]
    bound: Set[str] = {v.name for v in ordered[0].variables()}
    while remaining:
        index = next(
            (
                i
                for i, p in enumerate(remaining)
                if bound & {v.name for v in p.variables()}
            ),
            0,
        )
        chosen = remaining.pop(index)
        ordered.append(chosen)
        bound |= {v.name for v in chosen.variables()}
    return ordered
