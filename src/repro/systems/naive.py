"""The naive baseline: unpartitioned full scans and shuffle joins.

Not a surveyed system -- the strawman every surveyed system improves on.
Triples live in one RDD with default (round-robin) placement; every triple
pattern scans the whole dataset; every join shuffles.  The paper's cost
arguments are all relative to this behaviour.
"""

from __future__ import annotations

from typing import List

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.graph import RDFGraph
from repro.spark.rdd import RDD
from repro.sparql.ast import TriplePattern
from repro.sparql.fragments import ALL_FEATURES
from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    fold_join_order,
    join_binding_rdds,
    pattern_variables,
    triple_matches_pattern,
)


class NaiveEngine(SparkRdfEngine):
    """Full-scan reference engine (also the correctness oracle's twin)."""

    profile = EngineProfile(
        name="Naive",
        citation="baseline",
        data_model=DataModel.TRIPLE,
        abstractions=(SparkAbstraction.RDD,),
        query_processing=QueryProcessing.RDD_API,
        optimization=Optimization.NO,
        partitioning=PartitioningStrategy.DEFAULT,
        sparql_features=frozenset(ALL_FEATURES),
        contribution=Contribution.ALL_QUERY_TYPES,
        description="Unpartitioned full-scan baseline (not in the survey).",
    )

    def _build(self, graph: RDFGraph) -> None:
        # Deliberately uncached: the baseline has no storage scheme, so
        # every triple pattern re-reads the whole source -- the behaviour
        # Section IV-A3 ascribes to plain RDD evaluation ("RDDs always
        # read the entire data set for each triple pattern").
        self.triples = self.ctx.parallelize(
            [t.as_tuple() for t in sorted(graph)]
        )

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        ordered = fold_join_order(patterns)
        result: RDD = None
        bound_vars: set = set()
        for pattern in ordered:
            matches = self.triples.mapPartitions(
                lambda part, p=pattern: [
                    b
                    for t in part
                    if (b := triple_matches_pattern(t, p)) is not None
                ]
            )
            if result is None:
                result = matches
                bound_vars = set(pattern_variables([pattern]))
            else:
                shared = sorted(
                    bound_vars & set(pattern_variables([pattern]))
                )
                result = join_binding_rdds(result, matches, shared)
                bound_vars |= set(pattern_variables([pattern]))
        return result
