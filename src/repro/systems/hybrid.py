"""The hybrid join study of Naacke, Amann & Curé [21].

Section IV-A3 of the paper analyzes how SPARQL BGP joins map onto each
Spark abstraction and proposes a hybrid plan:

* **SPARK_SQL** -- translate the BGP to SQL over a single triples table and
  let Catalyst plan it.  Its published drawback: multi-pattern queries can
  degenerate into cartesian products.
* **RDD** -- each join becomes a partitioned join, in the query's pattern
  order; the whole dataset is re-read for every triple pattern.  Never
  uses a broadcast even when the build side is tiny.
* **DATAFRAME** -- columnar storage plus a size-threshold broadcast join:
  a build side smaller than the threshold ships to every executor instead
  of shuffling.  Ignores existing partitioning and considers only sizes.
* **HYBRID** -- the paper's contribution: a greedy cost-based plan that
  mixes broadcast and partitioned joins and exploits the existing
  subject-hash partitioning to avoid useless data transfer (subject-
  subject joins are already co-located, so they never shuffle and never
  broadcast).

Data is partitioned by subject hash, as in the study.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.encoding import Dictionary
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.spark.context import SparkContext
from repro.spark.partitioner import HashPartitioner
from repro.spark.rdd import RDD
from repro.spark.sql.session import SparkSession
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import FEATURE_BGP
from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    pattern_variables,
    triple_matches_pattern,
)


class JoinStrategy(Enum):
    """The four execution strategies compared by [21]."""

    SPARK_SQL = "sql"
    RDD = "rdd"
    DATAFRAME = "dataframe"
    HYBRID = "hybrid"


class HybridEngine(SparkRdfEngine):
    """BGP evaluation under a selectable join strategy."""

    profile = EngineProfile(
        name="SPARQL-Hybrid",
        citation="[21]",
        data_model=DataModel.TRIPLE,
        abstractions=(
            SparkAbstraction.RDD,
            SparkAbstraction.DATAFRAMES,
        ),
        query_processing=QueryProcessing.HYBRID,
        optimization=Optimization.YES,
        partitioning=PartitioningStrategy.HASH_SUBJECT,
        sparql_features=frozenset({FEATURE_BGP}),
        contribution=Contribution.JOIN_STRATEGY,
        description=(
            "Greedy cost-based mix of broadcast and partitioned joins over "
            "subject-hash-partitioned triples."
        ),
    )

    def __init__(
        self,
        ctx: Optional[SparkContext] = None,
        strategy: JoinStrategy = JoinStrategy.HYBRID,
        broadcast_threshold: int = 200,
    ) -> None:
        super().__init__(ctx)
        self.strategy = strategy
        #: Build sides with at most this many records are broadcast.
        self.broadcast_threshold = broadcast_threshold

    # ------------------------------------------------------------------
    # Build: subject-hash partitioned triples + DataFrame + SQL views
    # ------------------------------------------------------------------

    def _build(self, graph: RDFGraph) -> None:
        self.dictionary = Dictionary()
        encoded = [self.dictionary.encode(t).as_tuple() for t in sorted(graph)]
        self._partitioner = HashPartitioner(self.ctx.default_parallelism)
        keyed = self.ctx.parallelize(encoded).keyBy(lambda t: t[0])
        self.triples = keyed.partitionBy(self._partitioner).values().cache()
        self.triples.count()  # materialize at load: the shuffle is load cost
        # Predicate statistics drive the greedy hybrid optimizer.
        self.predicate_counts: Dict[int, int] = {}
        for _s, p, _o in encoded:
            self.predicate_counts[p] = self.predicate_counts.get(p, 0) + 1
        self.session = SparkSession(self.ctx)
        df = self.session.createDataFrame(encoded, ["s", "p", "o"])
        self.session.createOrReplaceTempView("triples", df.cache())
        self.total_triples = len(encoded)

    def _encode(self, term: Term) -> Optional[int]:
        if term not in self.dictionary:
            return None
        return self.dictionary.lookup_term(term)

    def _estimated_size(self, pattern: TriplePattern) -> int:
        if isinstance(pattern.predicate, Variable):
            base = self.total_triples
        else:
            encoded = self._encode(pattern.predicate)
            base = self.predicate_counts.get(encoded, 0) if encoded is not None else 0
        if not isinstance(pattern.subject, Variable):
            base = max(base // 10, 1)
        if not isinstance(pattern.object, Variable):
            base = max(base // 10, 1)
        return base

    # ------------------------------------------------------------------
    # Pattern scans
    # ------------------------------------------------------------------

    def _pattern_rdd(self, pattern: TriplePattern) -> RDD:
        """Bindings of one pattern (reads the whole subject-partitioned set)."""
        encoded_pattern = self._encode_pattern(pattern)
        if encoded_pattern is None:
            return self.ctx.emptyRDD()

        def match(part: List[Tuple[int, int, int]]) -> List[dict]:
            out = []
            for triple in part:
                binding = triple_matches_pattern(triple, encoded_pattern)
                if binding is not None:
                    out.append(binding)
            return out

        return self.triples.mapPartitions(match, preserves_partitioning=True)

    def _encode_pattern(
        self, pattern: TriplePattern
    ) -> Optional[TriplePattern]:
        positions = []
        for value in pattern.positions():
            if isinstance(value, Variable):
                positions.append(value)
            else:
                encoded = self._encode(value)
                if encoded is None:
                    return None
                positions.append(encoded)
        return TriplePattern(*positions)

    def _decode_bindings(self, rdd: RDD) -> RDD:
        dictionary = self.dictionary
        return rdd.map(
            lambda binding: {
                name: dictionary.decode_id(value)
                for name, value in binding.items()
            }
        )

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        if self.strategy is JoinStrategy.SPARK_SQL:
            return self._evaluate_sql(patterns)
        if self.strategy is JoinStrategy.RDD:
            return self._evaluate_rdd(patterns)
        if self.strategy is JoinStrategy.DATAFRAME:
            return self._evaluate_generic(patterns, use_threshold=True, use_partitioning=False)
        return self._evaluate_generic(
            patterns, use_threshold=True, use_partitioning=True
        )

    def _evaluate_sql(self, patterns: List[TriplePattern]) -> RDD:
        """Self-joins over the triples table, planned by Catalyst."""
        variables: List[str] = []
        var_source: Dict[str, str] = {}
        from_parts: List[str] = []
        where_parts: List[str] = []
        for k, pattern in enumerate(patterns):
            alias = "t%d" % k
            conditions: List[str] = []
            for position, column in (
                ("subject", "s"),
                ("predicate", "p"),
                ("object", "o"),
            ):
                value = getattr(pattern, position)
                qualified = "%s.%s" % (alias, column)
                if isinstance(value, Variable):
                    if value.name in var_source:
                        conditions.append(
                            "%s = %s" % (qualified, var_source[value.name])
                        )
                    else:
                        var_source[value.name] = qualified
                        variables.append(value.name)
                else:
                    encoded = self._encode(value)
                    if encoded is None:
                        return self.ctx.emptyRDD()
                    where_parts.append("%s = %d" % (qualified, encoded))
            if k == 0:
                from_parts.append("triples AS %s" % alias)
                where_parts.extend(conditions)
            elif conditions:
                from_parts.append(
                    "JOIN triples AS %s ON %s" % (alias, " AND ".join(conditions))
                )
            else:
                from_parts.append("CROSS JOIN triples AS %s" % alias)
        select_list = ", ".join(
            "%s AS %s" % (var_source[name], name) for name in variables
        ) or "t0.s AS one"
        sql = "SELECT %s FROM %s" % (select_list, " ".join(from_parts))
        if where_parts:
            sql += " WHERE %s" % " AND ".join(where_parts)
        self.last_sql = sql
        result = self.session.sql(sql)
        names = list(result.columns)
        dictionary = self.dictionary

        def decode(values: tuple) -> dict:
            return {
                name: dictionary.decode_id(value)
                for name, value in zip(names, values)
                if name in variables
            }

        return result.rdd.map(decode)

    def _evaluate_rdd(self, patterns: List[TriplePattern]) -> RDD:
        """Partitioned joins in the input logical order, never broadcast."""
        result: Optional[RDD] = None
        bound: Set[str] = set()
        for pattern in patterns:
            matches = self._pattern_rdd(pattern)
            if result is None:
                result = matches
                bound = set(pattern_variables([pattern]))
                continue
            shared = sorted(bound & set(pattern_variables([pattern])))
            result = self._partitioned_join(result, matches, shared)
            bound |= set(pattern_variables([pattern]))
        assert result is not None
        return self._decode_bindings(result)

    def _evaluate_generic(
        self,
        patterns: List[TriplePattern],
        use_threshold: bool,
        use_partitioning: bool,
    ) -> RDD:
        """Greedy plan: smallest-first, broadcast/partitioned per join.

        With *use_partitioning*, subject-subject joins keep the bindings
        keyed by the subject so the existing subject-hash placement makes
        the join shuffle-free -- the hybrid strategy's advantage.
        """
        order = sorted(range(len(patterns)), key=lambda i: self._estimated_size(patterns[i]))
        ordered: List[int] = [order.pop(0)]
        bound = {v.name for v in patterns[ordered[0]].variables()}
        while order:
            position = next(
                (
                    pos
                    for pos, i in enumerate(order)
                    if bound & {v.name for v in patterns[i].variables()}
                ),
                0,
            )
            chosen = order.pop(position)
            ordered.append(chosen)
            bound |= {v.name for v in patterns[chosen].variables()}

        result: Optional[RDD] = None
        result_vars: Set[str] = set()
        result_size = 0
        subject_keyed_var: Optional[str] = None
        for index in ordered:
            pattern = patterns[index]
            matches = self._pattern_rdd(pattern)
            size = self._estimated_size(pattern)
            subject_var = (
                pattern.subject.name
                if isinstance(pattern.subject, Variable)
                else None
            )
            if result is None:
                result = matches
                result_vars = set(pattern_variables([pattern]))
                result_size = size
                subject_keyed_var = subject_var
                continue
            shared = sorted(result_vars & set(pattern_variables([pattern])))
            local_ok = (
                use_partitioning
                and subject_keyed_var is not None
                and shared == [subject_keyed_var]
                and subject_var == subject_keyed_var
            )
            if local_ok:
                # Both sides derive from the same subject-hash placement:
                # zip partitions locally, no shuffle, no broadcast.
                result = self._local_subject_join(result, matches, shared[0])
            elif use_threshold and size <= self.broadcast_threshold:
                result = self._broadcast_join(result, matches, shared)
            elif (
                use_threshold
                and shared
                and result_size <= self.broadcast_threshold
            ):
                # The accumulated side is the small one: broadcast it and
                # probe with the new pattern's (larger) match stream.
                result = self._broadcast_join(matches, result, shared)
                subject_keyed_var = None
            else:
                result = self._partitioned_join(result, matches, shared)
                if subject_var is not None and shared == [subject_var]:
                    subject_keyed_var = subject_var
                else:
                    subject_keyed_var = None
            result_vars |= set(pattern_variables([pattern]))
            result_size = max(result_size, size)
        assert result is not None
        return self._decode_bindings(result)

    # ------------------------------------------------------------------
    # Join operators
    # ------------------------------------------------------------------

    @staticmethod
    def _key_of(shared: List[str]):
        def key(binding: dict):
            return tuple(binding[name] for name in shared)

        return key

    def _partitioned_join(
        self, left: RDD, right: RDD, shared: List[str]
    ) -> RDD:
        if not shared:
            return left.cartesian(right).map(
                lambda pair: {**pair[0], **pair[1]}
            )
        key = self._key_of(shared)
        joined = left.map(lambda b: (key(b), b)).join(
            right.map(lambda b: (key(b), b))
        )
        return joined.map(lambda kv: {**kv[1][0], **kv[1][1]})

    def _broadcast_join(
        self, left: RDD, right: RDD, shared: List[str]
    ) -> RDD:
        if not shared:
            return left.cartesian(right).map(
                lambda pair: {**pair[0], **pair[1]}
            )
        key = self._key_of(shared)
        joined = left.map(lambda b: (key(b), b)).broadcastJoin(
            right.map(lambda b: (key(b), b))
        )
        return joined.map(lambda kv: {**kv[1][0], **kv[1][1]})

    def _local_subject_join(
        self, left: RDD, right: RDD, subject_var: str
    ) -> RDD:
        """Partition-local join of two subject-anchored binding streams.

        Both inputs are derived from the subject-partitioned store with
        partitioning preserved, so bindings for one subject live in the
        same partition index on both sides.
        """
        left_keyed = left.map(lambda b: (b[subject_var], b))
        right_keyed = right.map(lambda b: (b[subject_var], b))
        left_placed = left_keyed.partitionBy(self._partitioner)
        right_placed = right_keyed.partitionBy(self._partitioner)
        joined = left_placed.join(right_placed)
        return joined.map(lambda kv: {**kv[1][0], **kv[1][1]})
