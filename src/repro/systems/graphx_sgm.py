"""Kassaie's SPARQL-over-GraphX subgraph matcher [16].

Mechanics reproduced from Section IV-B1 of the paper:

* Vertices carry (1) a label -- the subject/object value, (2) a **Match
  Track table (MT)** of variables and constants accumulated so far, and
  (3) a flag marking vertices at the end of a path of matched BGP triples.
  Edges carry the predicate as their label.
* The algorithm **iterates through the BGP triples**; each iteration runs
  GraphX's ``aggregateMessages``: ``sendMsg`` matches the current BGP
  triple against every graph edge and, on a hit, sends (partial) match
  rows toward the destination vertex; ``mergeMsg`` aggregates rows at
  their target; ``joinVertices`` folds the new rows into each vertex's MT
  table.
* After all BGP triples are processed, the **final MT tables of the end
  vertices are joined** to produce the query answer.

The BGP is first decomposed into subject-object chains ("paths"); each
chain is evaluated by the vertex program above, and the chains' MT tables
are joined with Spark operators at the end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.spark.graphx import Edge, EdgeContext, Graph
from repro.spark.rdd import RDD
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import FEATURE_BGP
from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    join_binding_rdds,
    pattern_variables,
)


def decompose_into_paths(
    patterns: List[TriplePattern],
) -> List[List[TriplePattern]]:
    """Greedy decomposition into subject-object chains.

    Each returned list is a sequence where the object variable of one
    pattern is the subject variable of the next.  Patterns that extend no
    chain become singleton paths (joined at the end on shared variables).
    """
    remaining = list(patterns)
    paths: List[List[TriplePattern]] = []
    while remaining:
        # Prefer a start whose subject is not produced by another pattern.
        objects = {
            p.object for p in remaining if isinstance(p.object, Variable)
        }
        start_index = next(
            (
                i
                for i, p in enumerate(remaining)
                if not (isinstance(p.subject, Variable) and p.subject in objects)
            ),
            0,
        )
        current = remaining.pop(start_index)
        path = [current]
        while True:
            tail = path[-1].object
            if not isinstance(tail, Variable):
                break
            next_index = next(
                (
                    i
                    for i, p in enumerate(remaining)
                    if p.subject == tail
                ),
                None,
            )
            if next_index is None:
                break
            path.append(remaining.pop(next_index))
        paths.append(path)
    return paths


class GraphXSubgraphEngine(SparkRdfEngine):
    """Subgraph matching via AggregateMessages and Match Track tables."""

    profile = EngineProfile(
        name="SPARQL-GraphX",
        citation="[16]",
        data_model=DataModel.GRAPH,
        abstractions=(SparkAbstraction.GRAPHX,),
        query_processing=QueryProcessing.GRAPH_ITERATIONS,
        optimization=Optimization.YES,
        partitioning=PartitioningStrategy.DEFAULT,
        sparql_features=frozenset({FEATURE_BGP}),
        contribution=Contribution.GRAPH_MATCHING,
        description=(
            "Per-BGP-triple aggregateMessages iterations building Match "
            "Track tables, joined at path ends."
        ),
    )

    def _build(self, graph: RDFGraph) -> None:
        vertices = sorted(
            graph.subjects() | graph.objects(), key=lambda t: t.sort_key()
        )
        # Vertex attribute: the MT table (a list of partial match rows).
        vertex_rdd = self.ctx.parallelize([(v, []) for v in vertices])
        edge_rdd = self.ctx.parallelize(
            [Edge(t.subject, t.object, t.predicate) for t in sorted(graph)]
        )
        self.graph = Graph(vertex_rdd, edge_rdd)

    # ------------------------------------------------------------------

    def _evaluate_path(self, path: List[TriplePattern]) -> RDD:
        """One chain evaluated with per-pattern aggregateMessages rounds."""
        current = self.graph
        for step, pattern in enumerate(path):
            is_first = step == 0

            def send(ctx: EdgeContext, pattern=pattern, is_first=is_first):
                partials = (
                    [{}] if is_first else (ctx.src_attr or [])
                )
                if not partials:
                    return
                binding: Dict[str, Term] = {}
                for position, value in (
                    (pattern.subject, ctx.src),
                    (pattern.predicate, ctx.attr),
                    (pattern.object, ctx.dst),
                ):
                    if isinstance(position, Variable):
                        bound = binding.get(position.name)
                        if bound is None:
                            binding[position.name] = value
                        elif bound != value:
                            return
                    elif position != value:
                        return
                for partial in partials:
                    merged = dict(partial)
                    ok = True
                    for name, value in binding.items():
                        if name in merged and merged[name] != value:
                            ok = False
                            break
                        merged[name] = value
                    if ok:
                        ctx.send_to_dst([merged])

            messages = current.aggregateMessages(send, lambda a, b: a + b)
            # joinVertices folds the fresh rows into each vertex's MT table;
            # vertices without messages reset (their track ended).
            current = current.mapVertices(lambda vid, attr: []).joinVertices(
                messages, lambda vid, attr, rows: rows
            )
        # End vertices' MT tables hold the chain's partial results.
        return current.vertices.flatMap(lambda va: va[1] or [])

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        paths = decompose_into_paths(list(patterns))
        result: Optional[RDD] = None
        bound: Set[str] = set()
        # Join chains in a connectivity-friendly order.
        paths.sort(key=len, reverse=True)
        ordered: List[List[TriplePattern]] = [paths.pop(0)]
        seen = {
            v.name for pattern in ordered[0] for v in pattern.variables()
        }
        while paths:
            index = next(
                (
                    i
                    for i, path in enumerate(paths)
                    if seen
                    & {v.name for pattern in path for v in pattern.variables()}
                ),
                0,
            )
            chosen = paths.pop(index)
            ordered.append(chosen)
            seen |= {
                v.name for pattern in chosen for v in pattern.variables()
            }
        for path in ordered:
            partial = self._evaluate_path(path)
            path_vars = {
                v.name for pattern in path for v in pattern.variables()
            }
            if result is None:
                result = partial
                bound = path_vars
            else:
                shared = sorted(bound & path_vars)
                result = join_binding_rdds(result, partial, shared)
                bound |= path_vars
        assert result is not None
        return result
