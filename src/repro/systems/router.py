"""A shape-aware meta-engine: the survey's conclusions, operationalized.

Section III's "System Contribution" dimension observes that "some systems
focus on a particular query type, e.g., star queries, and others target at
handling multiple or all query types".  The cross-system assessment
(benchmarks/bench_systems_comparison.py) quantifies exactly that, and this
router turns it into a system: each incoming query is classified by shape
(Section II-B) and dispatched to the engine the assessment found strongest
for it, falling back along the chain when the query's SPARQL features are
outside the preferred engine's fragment.

Default routing (from the measured matrix):

=========  =================================================
star       HAQWA -- subject hashing answers stars locally
linear     S2RDF -- ExtVP semi-joins prune chain hops hardest
snowflake  Hybrid [21] -- partition-aware mixed joins
complex    SparkRDF -- class indexes tame object-object joins
single     SPARQLGX -- one vertical store scan
=========  =================================================

Engines are loaded lazily: a dataset is distributed into a store only
when some query actually routes to that engine.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Type, Union

from repro.rdf.graph import RDFGraph
from repro.routing.defaults import (
    DEFAULT_FALLBACK_CHAIN,
    DEFAULT_SHAPE_PREFERENCES,
)
from repro.spark.context import SparkContext
from repro.sparql.ast import Query
from repro.sparql.parser import parse_sparql
from repro.sparql.shapes import QueryShape, classify_shape
from repro.systems.base import SparkRdfEngine
from repro.systems.haqwa import HaqwaEngine
from repro.systems.hybrid import HybridEngine
from repro.systems.naive import NaiveEngine
from repro.systems.s2rdf import S2RdfEngine
from repro.systems.sparkrdf import SparkRdfMesgEngine
from repro.systems.sparqlgx import SparqlgxEngine

#: Engine classes by profile name, for resolving the shared name-based
#: preference table (:mod:`repro.routing.defaults`) without importing
#: the full registry.
_ENGINES_BY_NAME: Dict[str, Type[SparkRdfEngine]] = {
    cls.profile.name: cls
    for cls in (
        HaqwaEngine,
        S2RdfEngine,
        HybridEngine,
        SparkRdfMesgEngine,
        SparqlgxEngine,
        NaiveEngine,
    )
}

#: The assessment-derived preference per shape, resolved from the single
#: source of truth the adaptive :class:`repro.routing.RoutingPolicy`
#: also derives its priors from.
DEFAULT_ROUTING: Dict[QueryShape, Type[SparkRdfEngine]] = {
    shape: _ENGINES_BY_NAME[name]
    for shape, name in DEFAULT_SHAPE_PREFERENCES.items()
}

#: Feature-coverage fallbacks, widest fragment last.
DEFAULT_FALLBACKS: Sequence[Type[SparkRdfEngine]] = tuple(
    _ENGINES_BY_NAME[name] for name in DEFAULT_FALLBACK_CHAIN
)


class ShapeAwareRouter:
    """Dispatches queries to per-shape engines over one shared dataset."""

    def __init__(
        self,
        parallelism: int = 4,
        routing: Optional[Dict[QueryShape, Type[SparkRdfEngine]]] = None,
        fallbacks: Sequence[Type[SparkRdfEngine]] = DEFAULT_FALLBACKS,
        context_factory: Optional[Callable[[], SparkContext]] = None,
    ) -> None:
        self.routing = dict(DEFAULT_ROUTING)
        if routing:
            self.routing.update(routing)
        self.fallbacks = list(fallbacks)
        self._context_factory = context_factory or (
            lambda: SparkContext(parallelism)
        )
        self._graph: Optional[RDFGraph] = None
        self._engines: Dict[Type[SparkRdfEngine], SparkRdfEngine] = {}
        #: The engine class chosen by the last :meth:`execute` call.
        self.last_engine: Optional[Type[SparkRdfEngine]] = None

    def load(self, graph: RDFGraph) -> "ShapeAwareRouter":
        """Register the dataset; engines build their stores on demand."""
        self._graph = graph
        self._engines.clear()
        return self

    def _engine_for(self, engine_class: Type[SparkRdfEngine]) -> SparkRdfEngine:
        engine = self._engines.get(engine_class)
        if engine is None:
            if self._graph is None:
                raise RuntimeError("call load() before execute()")
            engine = engine_class(self._context_factory())
            engine.load(self._graph)
            self._engines[engine_class] = engine
        return engine

    def choose(self, query: Union[str, Query]) -> Type[SparkRdfEngine]:
        """The engine class this query routes to (without executing)."""
        if isinstance(query, str):
            query = parse_sparql(query)
        shape = classify_shape(query)
        candidates: List[Type[SparkRdfEngine]] = [self.routing[shape]]
        candidates.extend(
            cls for cls in self.fallbacks if cls not in candidates
        )
        for engine_class in candidates:
            probe = engine_class.__new__(engine_class)  # profile check only
            if SparkRdfEngine.supports(probe, query):
                return engine_class
        return NaiveEngine

    def execute(self, query: Union[str, Query]):
        """Classify, dispatch, execute."""
        if isinstance(query, str):
            query = parse_sparql(query)
        engine_class = self.choose(query)
        self.last_engine = engine_class
        return self._engine_for(engine_class).execute(query)

    def loaded_engines(self) -> List[str]:
        """Names of engines whose stores have been built (lazy loading)."""
        return sorted(cls.profile.name for cls in self._engines)

    def __repr__(self) -> str:
        return "ShapeAwareRouter(loaded=%r)" % self.loaded_engines()
