"""Spar(k)ql [12]: SPARQL evaluation with vertex programs on GraphX.

Mechanics reproduced from Section IV-B1 of the paper:

* *Node model* -- object properties become graph **edges**; data
  properties (literal-valued) are stored **inside the nodes** as node
  properties.  ``rdf:type``, although an object property, is stored in
  the node properties too, "due to its popularity in SPARQL queries".
* *Sub-results in nodes* -- query answering keeps per-node tables keyed by
  query variables whose values are possible sub-results; nodes combine
  incoming messages with their stored information.
* *Query plan* -- a breadth-first search over the query's object
  properties builds a tree; execution traverses the plan bottom-up,
  iterating over the edges of each node to find matches.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.vocab import RDF
from repro.spark.graphx import Edge, Graph
from repro.spark.rdd import RDD
from repro.sparql.ast import TriplePattern, Variable
from repro.sparql.fragments import FEATURE_BGP
from repro.systems.base import (
    EngineProfile,
    SparkRdfEngine,
    join_binding_rdds,
    triple_matches_pattern,
)


class SparkqlEngine(SparkRdfEngine):
    """Node-property graph with a BFS query plan over object properties."""

    profile = EngineProfile(
        name="Spar(k)ql",
        citation="[12]",
        data_model=DataModel.GRAPH,
        abstractions=(SparkAbstraction.GRAPHX,),
        query_processing=QueryProcessing.GRAPH_ITERATIONS,
        optimization=Optimization.YES,
        partitioning=PartitioningStrategy.DEFAULT,
        sparql_features=frozenset({FEATURE_BGP}),
        contribution=Contribution.GRAPH_MATCHING,
        description=(
            "Data properties and rdf:type stored in nodes; BFS plan over "
            "object properties evaluated bottom-up with sub-result tables."
        ),
    )

    def _build(self, graph: RDFGraph) -> None:
        # Split object properties (edges) from data properties (node attrs).
        node_attrs: Dict[Term, Dict] = {}

        def attrs_of(term: Term) -> Dict:
            return node_attrs.setdefault(term, {"props": {}, "types": set()})

        edge_tuples: List[Tuple[Term, Term, Term]] = []
        for triple in sorted(graph):
            attrs_of(triple.subject)
            if triple.predicate == RDF.type:
                attrs_of(triple.subject)["types"].add(triple.object)
            elif isinstance(triple.object, Literal):
                attrs_of(triple.subject)["props"].setdefault(
                    triple.predicate, []
                ).append(triple.object)
            else:
                attrs_of(triple.object)
                edge_tuples.append(
                    (triple.subject, triple.object, triple.predicate)
                )

        vertex_rdd = self.ctx.parallelize(sorted(node_attrs.items(), key=lambda kv: kv[0].sort_key()))
        edge_rdd = self.ctx.parallelize(
            [Edge(s, d, p) for s, d, p in edge_tuples]
        )
        self.graph = Graph(vertex_rdd, edge_rdd)
        self.object_properties: Set[Term] = {p for _s, _d, p in edge_tuples}
        self.data_properties: Set[Term] = {
            t.predicate
            for t in graph
            if isinstance(t.object, Literal)
        }
        # Full triple view, for variable-predicate fallbacks.
        self._all_triples = self.ctx.parallelize(
            [t.as_tuple() for t in sorted(graph)]
        ).cache()

    # ------------------------------------------------------------------
    # Pattern classification
    # ------------------------------------------------------------------

    def _classify(
        self, patterns: List[TriplePattern]
    ) -> Tuple[Dict[str, List[TriplePattern]], List[TriplePattern], List[TriplePattern]]:
        """(node-local patterns per subject var, edge patterns, fallbacks).

        Node-local: rdf:type with a constant class, and data properties.
        Edge: constant object-property predicates.  Fallback: variable
        predicates or anything not expressible in the node model.
        """
        local: Dict[str, List[TriplePattern]] = {}
        edges: List[TriplePattern] = []
        fallback: List[TriplePattern] = []
        for pattern in patterns:
            predicate = pattern.predicate
            if isinstance(predicate, Variable) or not isinstance(
                pattern.subject, Variable
            ):
                fallback.append(pattern)
            elif (
                predicate in self.object_properties
                and predicate in self.data_properties
            ):
                # Mixed predicate: lives both as edges and node properties;
                # the node model cannot answer it alone.
                fallback.append(pattern)
            elif predicate == RDF.type and not isinstance(
                pattern.object, Variable
            ):
                local.setdefault(pattern.subject.name, []).append(pattern)
            elif (
                predicate != RDF.type
                and predicate not in self.object_properties
            ):
                # A data property (or a predicate absent from the data).
                local.setdefault(pattern.subject.name, []).append(pattern)
            elif predicate == RDF.type:
                fallback.append(pattern)  # ?s rdf:type ?t
            else:
                edges.append(pattern)
        return local, edges, fallback

    # ------------------------------------------------------------------
    # Node tables (the per-node sub-result tables)
    # ------------------------------------------------------------------

    def _node_table(
        self, var: str, constraints: List[TriplePattern]
    ) -> RDD:
        """Candidate rows for one entity variable from node properties."""

        def rows(part) -> List[dict]:
            out = []
            for vertex, attrs in part:
                bindings = [{var: vertex}]
                for pattern in constraints:
                    next_bindings: List[dict] = []
                    if pattern.predicate == RDF.type:
                        if pattern.object in attrs["types"]:
                            next_bindings = bindings
                    else:
                        values = attrs["props"].get(pattern.predicate, [])
                        for binding in bindings:
                            for value in values:
                                if isinstance(pattern.object, Variable):
                                    name = pattern.object.name
                                    if (
                                        name in binding
                                        and binding[name] != value
                                    ):
                                        continue
                                    extended = dict(binding)
                                    extended[name] = value
                                    next_bindings.append(extended)
                                elif pattern.object == value:
                                    next_bindings.append(binding)
                    bindings = next_bindings
                    if not bindings:
                        break
                out.extend(bindings)
            return out

        return self.graph.vertices.mapPartitions(rows)

    def _edge_bindings(self, pattern: TriplePattern) -> RDD:
        """Bindings contributed by one object-property pattern."""

        def match(part) -> List[dict]:
            out = []
            for edge in part:
                if edge.attr != pattern.predicate:
                    continue
                binding: Dict[str, Term] = {}
                ok = True
                for position, value in (
                    (pattern.subject, edge.src),
                    (pattern.object, edge.dst),
                ):
                    if isinstance(position, Variable):
                        bound = binding.get(position.name)
                        if bound is None:
                            binding[position.name] = value
                        elif bound != value:
                            ok = False
                            break
                    elif position != value:
                        ok = False
                        break
                if ok:
                    out.append(binding)
            return out

        return self.graph.edges.mapPartitions(match)

    def _fallback_bindings(self, pattern: TriplePattern) -> RDD:
        def match(part) -> List[dict]:
            out = []
            for triple in part:
                binding = triple_matches_pattern(triple, pattern)
                if binding is not None:
                    out.append(binding)
            return out

        return self._all_triples.mapPartitions(match)

    # ------------------------------------------------------------------
    # BFS plan
    # ------------------------------------------------------------------

    @staticmethod
    def _bfs_order(
        edges: List[TriplePattern],
    ) -> List[TriplePattern]:
        """Order edge patterns by BFS over the variable connection graph."""
        if not edges:
            return []
        adjacency: Dict[str, List[int]] = {}
        for index, pattern in enumerate(edges):
            for position in (pattern.subject, pattern.object):
                if isinstance(position, Variable):
                    adjacency.setdefault(position.name, []).append(index)
        # Root: the variable touching the most edge patterns.
        root = max(adjacency, key=lambda name: (len(adjacency[name]), name))
        visited_edges: Set[int] = set()
        order: List[TriplePattern] = []
        queue = deque([root])
        seen_vars = {root}
        while queue:
            var = queue.popleft()
            for index in adjacency.get(var, []):
                if index in visited_edges:
                    continue
                visited_edges.add(index)
                order.append(edges[index])
                for position in (edges[index].subject, edges[index].object):
                    if (
                        isinstance(position, Variable)
                        and position.name not in seen_vars
                    ):
                        seen_vars.add(position.name)
                        queue.append(position.name)
        # Disconnected leftovers keep their input order.
        for index, pattern in enumerate(edges):
            if index not in visited_edges:
                order.append(pattern)
        return order

    # ------------------------------------------------------------------

    def _evaluate_bgp(self, patterns: List[TriplePattern]) -> RDD:
        local, edges, fallback = self._classify(list(patterns))
        plan = self._bfs_order(edges)

        result: Optional[RDD] = None
        bound: Set[str] = set()
        attached_tables: Set[str] = set()

        def attach_table(var: str, current: Optional[RDD], bound_vars: Set[str]):
            constraints = local.pop(var, None)
            if constraints is None:
                return current, bound_vars
            table = self._node_table(var, constraints)
            table_vars = {var} | {
                p.object.name
                for p in constraints
                if isinstance(p.object, Variable)
            }
            if current is None:
                return table, table_vars
            shared = sorted(bound_vars & table_vars)
            return (
                join_binding_rdds(current, table, shared),
                bound_vars | table_vars,
            )

        for pattern in plan:
            bindings = self._edge_bindings(pattern)
            pattern_vars = {v.name for v in pattern.variables()}
            if result is None:
                result = bindings
                bound = pattern_vars
            else:
                shared = sorted(bound & pattern_vars)
                result = join_binding_rdds(result, bindings, shared)
                bound |= pattern_vars
            for position in (pattern.subject, pattern.object):
                if isinstance(position, Variable):
                    result, bound = attach_table(position.name, result, bound)

        # Entity variables with only node-local constraints.
        for var in sorted(local):
            result, bound = attach_table(var, result, bound)

        for pattern in fallback:
            bindings = self._fallback_bindings(pattern)
            pattern_vars = {v.name for v in pattern.variables()}
            if result is None:
                result = bindings
                bound = pattern_vars
            else:
                shared = sorted(bound & pattern_vars)
                result = join_binding_rdds(result, bindings, shared)
                bound |= pattern_vars

        if result is None:
            return self.ctx.parallelize([{}], 1)
        return result
