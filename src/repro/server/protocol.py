"""Wire protocol: JSON-lines requests/responses and canonical results.

Canonical result serialization (the service-boundary determinism fix)
=====================================================================

Engines are free to produce solutions in any order -- SPARQL's bag
semantics does not prescribe one, and the simulated engines genuinely
differ (hash partitioning vs vertical partitioning vs graph traversal
emit rows in different orders).  A result *cache* that stored whatever
order the first execution happened to produce would then return answers
that differ from a fresh execution byte-for-byte, making cache hits
observable and run-to-run output unstable.

:func:`canonical_result` therefore defines one documented ordering at
the service boundary:

* **SELECT without ORDER BY** (and CONSTRUCT/DESCRIBE): rows are sorted
  lexicographically by their tuple of N3-rendered terms (unbound
  variables render as ``""`` and sort first).  N3 rendering is already
  deterministic, so the sort is total and stable.
* **SELECT with ORDER BY**: the query prescribed the order; the
  serializer preserves it exactly (sorting would violate SPARQL
  semantics).  Ties left open by ORDER BY keep the engine's order,
  which is deterministic for a given engine and graph -- exactly what
  the cache's byte-identity guarantee needs (it compares hits against
  cold executions of the *same* engine).
* **ASK**: a boolean; nothing to order.

Stable paging (the federated-harvest contract)
==============================================

Because CONSTRUCT/DESCRIBE wire forms are *totally ordered* (sorted
N-Triples lines), a ``CONSTRUCT ... LIMIT n OFFSET m`` slices that
sorted list **after** the sort: at a fixed graph version, pages taken at
successive offsets are disjoint and exhaustive, and concatenating them
reassembles the unpaged form byte-identically (regression-tested in
``tests/server/test_protocol.py``).  Paged graph payloads additionally
carry a ``page`` object -- ``{"limit", "offset", "total"}`` where
``total`` is the full pre-slice triple count -- so a harvester
(:mod:`repro.federation`) knows when it has drained the result without
issuing a trailing empty page.  Unpaged graph payloads are unchanged
(no ``page`` key).  The slice happens here at the serialization
boundary, never in the engines, so every engine -- BGP-only profiles
included -- serves identical pages.

:func:`canonical_json` renders any payload with sorted keys, compact
separators, and no trailing whitespace -- the exact bytes the result
cache stores, so a cache hit is byte-identical to the cold execution
that populated it (regression-tested in
``tests/server/test_protocol.py``).

Request / response lines
========================

One JSON object per line.  Requests::

    {"op": "query", "id": "q1", "tenant": "t0", "query": "SELECT ...",
     "deadline": 50000}
    {"op": "commit", "additions": ["<s> <p> <o> ."], "deletions": []}
    {"op": "stats"}

``op`` defaults to ``query`` when omitted.  Responses echo the request
``id`` and carry ``status`` (``ok`` / ``rejected`` / ``deadline`` /
``error`` / ``unsupported``), the canonical ``result`` for ``ok``, and
accounting fields (``units``, ``cache``, ``version``).  ``rejected``
means the request never executed: either admission control turned it
away or the static plan linter (:mod:`repro.analysis.query`) found an
error-severity diagnostic, in which case the response also carries a
``diagnostics`` list (the linter's sorted findings, each with ``code``,
``severity``, ``message``, and location fields).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro.rdf.graph import RDFGraph
from repro.sparql.ast import ConstructQuery, Query, SelectQuery
from repro.sparql.results import SolutionSet

#: Bumped when the canonical result layout changes incompatibly.
PROTOCOL_VERSION = 1


class ProtocolError(ValueError):
    """A request line is not a well-formed protocol object."""


def canonical_json(payload: Any) -> str:
    """The one true JSON rendering: sorted keys, compact, ASCII-safe."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _row_key(row: List[str]) -> tuple:
    return tuple(row)


def canonical_result(
    result: Union[SolutionSet, bool, RDFGraph],
    query: Optional[Query] = None,
) -> Dict[str, Any]:
    """JSON-ready canonical form of one query answer (see module doc)."""
    if isinstance(result, bool):
        return {"type": "boolean", "value": result}
    if isinstance(result, SolutionSet):
        rows = [
            [
                solution.get(v).n3() if solution.get(v) is not None else ""
                for v in result.variables
            ]
            for solution in result.solutions
        ]
        ordered = bool(
            query is not None
            and isinstance(query, SelectQuery)
            and query.order_by
        )
        if not ordered:
            rows.sort(key=_row_key)
        return {
            "type": "bindings",
            "vars": list(result.variables),
            "rows": rows,
            "ordered": ordered,
        }
    # CONSTRUCT / DESCRIBE -> a graph; N-Triples lines, sorted.  The
    # sort is total, which is what makes LIMIT/OFFSET paging stable
    # (see the module docstring): slice *after* sorting, and report the
    # pre-slice total so harvesters can detect the last page.
    triples = sorted(triple.n3() for triple in result.to_list())
    payload: Dict[str, Any] = {"type": "graph", "triples": triples}
    if isinstance(query, ConstructQuery) and (
        query.limit is not None or query.offset
    ):
        total = len(triples)
        page = triples[query.offset:]
        if query.limit is not None:
            page = page[: query.limit]
        payload["triples"] = page
        payload["page"] = {
            "limit": query.limit,
            "offset": query.offset,
            "total": total,
        }
    return payload


def decode_request(line: str) -> Dict[str, Any]:
    """Parse one request line; raises :class:`ProtocolError` on junk."""
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError("request is not valid JSON: %s" % exc) from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request must be a JSON object")
    payload.setdefault("op", "query")
    op = payload["op"]
    if op not in ("query", "commit", "stats"):
        raise ProtocolError("unknown op %r" % (op,))
    if op == "query" and not payload.get("query"):
        raise ProtocolError("query op requires a non-empty 'query' field")
    return payload


def encode_response(payload: Dict[str, Any]) -> str:
    """One canonical response line (no newline appended)."""
    return canonical_json(payload)
