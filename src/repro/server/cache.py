"""The service's two cache tiers: parsed plans and serialized results.

Both tiers key on *normalized* query text (:func:`normalize_query`), so
cosmetic differences -- whitespace, comments, trailing dots -- share one
entry, the way S2RDF's precomputed ExtVP tables let repeated query
shapes reuse work regardless of how the text was formatted.

* :class:`PlanCache` maps normalized text to the parsed
  :class:`~repro.sparql.ast.Query`.  Parsed queries are immutable in
  practice (the engines never mutate them), so sharing is safe; a hit
  skips tokenizing + parsing entirely.
* :class:`ResultCache` is a bounded LRU mapping
  ``(normalized text, graph version, engine name)`` to the *canonical
  serialized bytes* of the answer.  Storing bytes rather than live
  objects is what makes the byte-identity guarantee trivial: a hit
  returns exactly what the cold execution serialized.  The graph version
  in the key means a version bump can never serve stale answers even
  before :meth:`ResultCache.invalidate_below` actively drops the dead
  entries.

Determinism: both caches are plain ``OrderedDict`` structures driven
only by request order -- no clocks, no hashes beyond Python string
hashing (used only for lookup, never for iteration order).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from repro.sparql.ast import Query
from repro.sparql.parser import parse_sparql


def normalize_query(text: str) -> str:
    """Canonical form of a SPARQL query's text, for cache keying.

    Strips comments (``#`` to end of line, except inside IRI ``<...>``
    brackets and string literals) and collapses every whitespace run
    *outside* string literals and IRIs to a single space; whitespace
    inside a literal is content and survives byte-for-byte.  This is
    *textual* normalization only -- two semantically equal but
    differently written queries stay distinct keys, which is the
    conservative (never-wrong) choice.
    """
    out = []
    in_iri = False
    quote: Optional[str] = None
    pending_space = False
    i, n = 0, len(text)

    def emit(ch: str) -> None:
        nonlocal pending_space
        if pending_space:
            if out:
                out.append(" ")
            pending_space = False
        out.append(ch)

    while i < n:
        ch = text[i]
        if quote is not None:
            out.append(ch)
            if ch == "\\" and i + 1 < n:
                out.append(text[i + 1])
                i += 2
                continue
            if ch == quote:
                quote = None
            i += 1
            continue
        if in_iri:
            out.append(ch)
            if ch == ">":
                in_iri = False
            i += 1
            continue
        if ch == "<":
            in_iri = True
            emit(ch)
        elif ch in ("'", '"'):
            quote = ch
            emit(ch)
        elif ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        elif ch.isspace():
            pending_space = True
        else:
            emit(ch)
        i += 1
    return "".join(out)


class PlanCache:
    """Bounded LRU of parsed queries keyed on normalized text.

    ``get_or_parse`` is the only entry point; it reports hit/miss to the
    *metrics* collector passed by the service (kept out of the cache's
    constructor so the cache is reusable without a service).

    When the service runs with a cost-based optimizer, the statistics
    version joins the key: a plan cached under stale statistics must not
    be reused after a commit refreshes the catalog, since the (future)
    cached physical plan would embed a stale join order.  Today only the
    parsed AST is cached, but keying on ``stats_version`` now keeps the
    invariant simple and already-tested.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("plan cache capacity must be positive")
        self.capacity = capacity
        self._plans: "OrderedDict[Tuple[int, str], Query]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._plans)

    def lookup(
        self, normalized: str, stats_version: int = 0
    ) -> Optional[Query]:
        """The cached plan, or None -- never parses, never inserts.

        The service's admission path uses this split so a query that
        lint rejects leaves the cache exactly as it found it (entries
        *and* LRU order matter: a lookup refreshes recency only on a
        hit, which a rejected request cannot produce for a plan that
        was never admitted).
        """
        key = (stats_version, normalized)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
        return plan

    def put(
        self, normalized: str, plan: Query, stats_version: int = 0
    ) -> None:
        """Insert one parsed plan, evicting LRU past capacity."""
        self._plans[(stats_version, normalized)] = plan
        self._plans.move_to_end((stats_version, normalized))
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)

    def get_or_parse(
        self, normalized: str, metrics=None, stats_version: int = 0
    ) -> Tuple[Query, bool]:
        """(parsed query, was_hit) for one normalized query text."""
        plan = self.lookup(normalized, stats_version=stats_version)
        hit = plan is not None
        if not hit:
            plan = parse_sparql(normalized)
            self.put(normalized, plan, stats_version=stats_version)
        if metrics is not None:
            metrics.record_plan_cache(hit)
        return plan, hit


#: A result-cache key: (normalized query text, graph version, engine name).
ResultKey = Tuple[str, int, str]


class ResultCache:
    """Bounded LRU of canonical result bytes, version-aware.

    Entries are the exact serialized bytes a cold execution produced
    (see :mod:`repro.server.protocol`); the graph version in the key
    guarantees freshness, and :meth:`invalidate_below` reclaims entries
    stranded by a version bump.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError("result cache capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[ResultKey, str]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: ResultKey, metrics=None) -> Optional[str]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        if metrics is not None:
            metrics.record_result_cache(entry is not None)
        return entry

    def put(self, key: ResultKey, payload: str, metrics=None) -> None:
        self._entries[key] = payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            if metrics is not None:
                metrics.record_result_eviction()

    def invalidate_below(self, version: int, metrics=None) -> int:
        """Drop every entry for a graph version older than *version*.

        Returns the number of entries dropped (also reported to the
        collector as ``result_cache_invalidations``).
        """
        dead = [key for key in self._entries if key[1] < version]
        for key in dead:
            del self._entries[key]
        if metrics is not None and dead:
            metrics.record_result_invalidations(len(dead))
        return len(dead)

    def clear(self) -> None:
        self._entries.clear()
