"""The concurrent SPARQL query service (see docs/SERVER.md).

Converts the batch-shaped reproduction into a serving system: a
:class:`~repro.server.service.QueryService` owns a pool of warmed
engines behind a plan cache, a version-keyed result cache, bounded-queue
admission control with per-tenant fair share, and per-query cost-unit
deadlines.  :mod:`repro.server.loadgen` drives it closed-loop over
deterministic virtual time; :mod:`repro.server.frontend` exposes it as a
JSON-lines request loop (``repro serve``).
"""

from repro.server.admission import AdmissionRejectedError, FairShareQueue
from repro.server.cache import PlanCache, ResultCache, normalize_query
from repro.server.frontend import handle_request, serve_lines
from repro.server.loadgen import (
    LoadGenerator,
    LoadReport,
    SHAPE_NAMES,
    build_federated_workload,
    build_shacl_workload,
    build_shape_workload,
    build_workload,
    grouped_tenant_profiles,
    percentile,
    shape_tenant_profiles,
)
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    canonical_json,
    canonical_result,
    decode_request,
    encode_response,
)
from repro.server.service import (
    CACHE_HIT_UNITS,
    QueryOutcome,
    QueryRequest,
    QueryService,
)

__all__ = [
    "AdmissionRejectedError",
    "CACHE_HIT_UNITS",
    "FairShareQueue",
    "LoadGenerator",
    "LoadReport",
    "PROTOCOL_VERSION",
    "PlanCache",
    "ProtocolError",
    "QueryOutcome",
    "QueryRequest",
    "QueryService",
    "ResultCache",
    "SHAPE_NAMES",
    "build_federated_workload",
    "build_shacl_workload",
    "build_shape_workload",
    "build_workload",
    "grouped_tenant_profiles",
    "canonical_json",
    "canonical_result",
    "decode_request",
    "encode_response",
    "handle_request",
    "normalize_query",
    "percentile",
    "serve_lines",
    "shape_tenant_profiles",
]
