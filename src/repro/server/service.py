"""The multi-tenant query service: warm engine pool, caches, deadlines.

A :class:`QueryService` converts the repository from batch-script shape
to service shape.  Construction does everything expensive exactly once:
the graph is wrapped in a :class:`~repro.evolution.versioned.VersionedGraph`
(so updates are commits with version numbers), and ``pool_size`` engine
instances are built and warmed -- each one ingests the graph, builds its
dictionary encoding / vertical partitions / indexes, and then serves any
number of queries.  Per-request work is only: normalize, consult the
plan cache, consult the result cache, and (on a miss) execute with a
cost-unit deadline armed.

Request lifecycle::

    submit()                 # or the load generator's simulated workers
      normalize_query(text)
      plan cache  -- hit: reuse parsed Query, miss: parse
      static lint (repro.analysis.query) -- errors: reject *before*
            any cache insert or engine work (status "rejected",
            structured diagnostics, zero service units)
      plan cache insert (miss, admitted only)
      routing (route=True): classify shape, price candidates, pick the
            engine (repro.routing; traced as a ``route`` span)
      result cache (text, version, engine) -- hit: return stored bytes
            (the engine component is the routed winner under route=True)
      miss: engine.execute under ctx.set_deadline(budget)
            -> canonical_result -> canonical_json -> cache put
      outcome: ok | deadline | rejected | unsupported | failed

Graph evolution: :meth:`commit` applies a change set through the
versioned store, bumps the version, actively invalidates stale result
cache entries, and refreshes every pooled engine's store (warm again
before the next query).  Because the result-cache key embeds the
version, staleness is impossible even between the bump and the purge.

Determinism: the service owns its own
:class:`~repro.spark.metrics.MetricsCollector` and
:class:`~repro.spark.tracing.Tracer` (span kinds ``request`` /
``admission`` / ``lint`` / ``route`` / ``plan`` / ``result`` /
``commit``); neither
consults a clock, so a request sequence replays to byte-identical
outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.core import AnalysisReport
from repro.analysis.query import lint_query
from repro.rdf.graph import RDFGraph
from repro.evolution.versioned import VersionedGraph
from repro.optimizer import DEFAULT_BROADCAST_THRESHOLD, Optimizer
from repro.rdf.triple import Triple
from repro.routing import RoutingPolicy
from repro.runtime import build_engine, resolve_engine
from repro.server.admission import FairShareQueue
from repro.server.cache import PlanCache, ResultCache, normalize_query
from repro.server.protocol import canonical_json, canonical_result
from repro.spark.deadline import DeadlineExceededError, cost_units
from repro.spark.faults import FaultScheduler, TaskFailedError
from repro.spark.metrics import MetricsCollector, MetricsSnapshot
from repro.spark.tracing import Tracer
from repro.sparql.parser import parse_sparql
from repro.sparql.shapes import classify_shape
from repro.stats.catalog import StatsCatalog
from repro.systems.base import UnsupportedQueryError

#: Cost units charged for answering from the result cache.  Non-zero so
#: cache hits still consume (a sliver of) virtual time -- a served
#: answer is never free -- but orders of magnitude below execution.
CACHE_HIT_UNITS = 1


@dataclass(frozen=True)
class QueryRequest:
    """One query submission."""

    text: str
    tenant: str = "default"
    id: str = ""
    #: Cost-unit budget for this query; None uses the service default.
    deadline: Optional[int] = None


@dataclass
class QueryOutcome:
    """Everything the service knows about one finished request."""

    id: str
    tenant: str
    status: str  # ok | deadline | rejected | unsupported | failed | error
    #: Canonical JSON bytes of the answer (``ok`` only).
    payload: Optional[str] = None
    #: Which tier answered: "result" (result-cache hit), "plan"
    #: (plan-cache hit, executed), or "cold" (parsed and executed).
    cache: str = "cold"
    #: Virtual service time in cost units (execution or cache charge).
    service_units: int = 0
    #: Virtual time spent queued (filled by the load generator).
    wait_units: int = 0
    version: int = 0
    worker: int = 0
    error: str = ""
    #: Sorted lint diagnostics (payload dicts) when the static analyzer
    #: had findings; always populated on ``rejected`` outcomes.
    diagnostics: List[Dict[str, Any]] = field(default_factory=list)
    #: The query's classified shape (empty until the request parses).
    shape: str = ""
    #: The engine that served (or would serve) the request: the routed
    #: winner under ``route=True``, the fixed engine otherwise.  Not part
    #: of :meth:`to_response` -- the wire envelope is routing-agnostic.
    engine: str = ""

    def to_response(self) -> Dict[str, Any]:
        """The JSON-lines response object for this outcome."""
        response: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "cache": self.cache,
            "units": self.service_units,
            "version": self.version,
        }
        if self.payload is not None:
            response["result"] = self.payload
        if self.error:
            response["error"] = self.error
        if self.diagnostics:
            response["diagnostics"] = list(self.diagnostics)
        return response


class _EngineSet:
    """One pool slot under adaptive routing: every candidate, warmed.

    Exposes the same ``load`` / ``set_optimizer`` lifecycle as a single
    engine so :meth:`QueryService._commit` treats both slot kinds
    uniformly; dispatch picks the member the routing decision named.
    """

    def __init__(self, engines: Dict[str, Any]) -> None:
        self._engines = engines

    def engine_for(self, name: str):
        return self._engines[name]

    def names(self) -> List[str]:
        return sorted(self._engines)

    def load(self, graph) -> None:
        for name in sorted(self._engines):
            self._engines[name].load(graph)

    def set_optimizer(self, optimizer) -> None:
        for name in sorted(self._engines):
            self._engines[name].set_optimizer(optimizer)


class QueryService:
    """A pool of warmed engines behind caches and admission control."""

    def __init__(
        self,
        graph: RDFGraph,
        engine: str = "SPARQLGX",
        pool_size: int = 2,
        parallelism: int = 4,
        queue_limit: int = 8,
        plan_cache_size: int = 64,
        result_cache_size: int = 128,
        default_deadline: Optional[int] = None,
        enable_plan_cache: bool = True,
        enable_result_cache: bool = True,
        faults: Union[None, str, FaultScheduler] = None,
        max_task_attempts: int = 4,
        speculation: bool = False,
        optimize: bool = False,
        optimizer_mode: str = "dp",
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
        lint_admission: bool = True,
        enable_views: bool = False,
        view_threshold: Optional[float] = None,
        backend: str = "inprocess",
        workers: Optional[int] = None,
        route: bool = False,
        route_engines: Optional[Sequence[str]] = None,
        verify_closures: bool = False,
    ) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        if route_engines and not route:
            raise ValueError("route_engines requires route=True")
        if default_deadline is not None and default_deadline <= 0:
            raise ValueError(
                "default_deadline must be a positive number of cost units"
            )
        resolve_engine(engine)  # fail fast on unknown names
        self.engine_name = engine
        self.parallelism = parallelism
        self.default_deadline = default_deadline
        self.enable_plan_cache = enable_plan_cache
        self.enable_result_cache = enable_result_cache
        self.versions = VersionedGraph(graph)
        #: Service-level counters (admissions, cache outcomes, deadlines);
        #: engine work is charged to each engine's own context.
        self.metrics = MetricsCollector()
        self.tracer = Tracer(self.metrics)
        self.plan_cache = PlanCache(plan_cache_size)
        self.result_cache = ResultCache(result_cache_size)
        self.queue: FairShareQueue = FairShareQueue(queue_limit)
        self._faults = faults
        self._max_task_attempts = max_task_attempts
        self._speculation = speculation
        #: Executor backend for every pooled engine ("inprocess" or
        #: "parallel"); canonical payload bytes are identical either way.
        self.backend = backend
        self.workers = workers
        #: Opt-in worker-boundary enforcement on every pooled engine's
        #: context (see :mod:`repro.analysis.closures`).
        self.verify_closures = verify_closures
        self._optimize = optimize
        self._optimizer_mode = optimizer_mode
        self._broadcast_threshold = broadcast_threshold
        if enable_views and not optimize:
            raise ValueError(
                "enable_views requires optimize=True (views are an "
                "optimizer substitution)"
            )
        self._enable_views = enable_views
        self._view_threshold = view_threshold
        #: The last :class:`~repro.views.MaintenanceReport`, for stats().
        self.last_maintenance = None
        self.optimizer: Optional[Optimizer] = None
        if optimize:
            self.optimizer = self._build_optimizer(views=enable_views)
        self.lint_admission = lint_admission
        self._lint_catalog: Optional[StatsCatalog] = None
        if lint_admission:
            self._lint_catalog = self._build_lint_catalog()
        #: The adaptive per-shape router (docs/ROUTING.md), or None for
        #: fixed-engine dispatch.  Shares the optimizer/lint statistics
        #: catalog; its feedback state survives commits.
        self.routing: Optional[RoutingPolicy] = None
        if route:
            self.routing = RoutingPolicy.for_graph(
                self.versions.head(),
                engines=route_engines,
                mode=self._optimizer_mode,
                broadcast_threshold=self._broadcast_threshold,
                catalog=self._routing_catalog(),
            )
        self.pool = [
            self._build_worker() for _ in range(pool_size)
        ]
        self._round_robin = 0

    def _build_optimizer(self, views: bool = False) -> Optimizer:
        """One shared optimizer over statistics at the current head.

        With ``views=True`` the materialized-view catalog is built from
        scratch too; commits instead maintain the existing catalog
        incrementally and re-attach it (:meth:`_commit`).
        """
        return Optimizer.for_graph(
            self.versions.head(),
            version=self.versions.head_version,
            mode=self._optimizer_mode,
            broadcast_threshold=self._broadcast_threshold,
            views=views,
            view_threshold=self._view_threshold,
        )

    def _build_lint_catalog(self) -> StatsCatalog:
        """Statistics for the admission linter at the current head.

        Shares the optimizer's catalog when one exists (same graph pass,
        same version); otherwise computes a catalog of its own, so lint
        admission works on unoptimized services too.
        """
        if self.optimizer is not None:
            return self.optimizer.catalog
        return StatsCatalog.from_graph(
            self.versions.head(), version=self.versions.head_version
        )

    def _routing_catalog(self) -> StatsCatalog:
        """Statistics anchoring the routing cost estimates.

        Shares the optimizer's catalog (or the lint catalog) when one
        exists -- same graph pass, same version -- so routing never pays
        for a second statistics build.
        """
        if self.optimizer is not None:
            return self.optimizer.catalog
        if self._lint_catalog is not None:
            return self._lint_catalog
        return StatsCatalog.from_graph(
            self.versions.head(), version=self.versions.head_version
        )

    def _build_one_engine(self, name: str):
        engine = build_engine(
            name,
            self.versions.head(),
            parallelism=self.parallelism,
            faults=self._fault_schedule(),
            max_task_attempts=self._max_task_attempts,
            speculation=self._speculation,
            backend=self.backend,
            workers=self.workers,
            verify_closures=self.verify_closures,
        )
        if self.optimizer is not None:
            engine.set_optimizer(self.optimizer)
        return engine

    def _build_worker(self):
        if self.routing is not None:
            names = list(self.routing.engines)
            names.extend(
                name
                for name in self.routing.fallbacks
                if name not in names
            )
            return _EngineSet(
                {name: self._build_one_engine(name) for name in names}
            )
        return self._build_one_engine(self.engine_name)

    def _fault_schedule(self) -> Union[None, FaultScheduler]:
        """A fresh, equivalent scheduler per worker (as BenchRun does)."""
        if self._faults is None:
            return None
        if isinstance(self._faults, str):
            return FaultScheduler.from_spec(self._faults)
        return self._faults.fork()

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """The graph version served (result-cache key component)."""
        return self.versions.head_version

    @property
    def pool_size(self) -> int:
        return len(self.pool)

    @property
    def route_enabled(self) -> bool:
        """Whether adaptive per-shape routing is dispatching requests."""
        return self.routing is not None

    @property
    def stats_version(self) -> int:
        """The graph version the optimizer statistics were computed at.

        0 when the service runs unoptimized -- the plan-cache key is then
        constant, which degenerates to the pre-optimizer behavior.
        """
        if self.optimizer is None:
            return 0
        return self.optimizer.stats_version

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def submit(self, request: QueryRequest) -> QueryOutcome:
        """Execute one request synchronously on the next pooled engine.

        This is the sequential front door (the ``serve`` loop); the load
        generator instead calls :meth:`execute_on` with explicit worker
        assignment to model pool concurrency.  Admission always passes
        here -- a sequential caller cannot overrun the queue.
        """
        self.metrics.record_admission(True)
        worker = self._round_robin % len(self.pool)
        self._round_robin += 1
        return self.execute_on(request, worker)

    def execute_on(self, request: QueryRequest, worker: int) -> QueryOutcome:
        """Run *request* on pool slot *worker*, consulting both caches."""
        if self.tracer.enabled:
            with self.tracer.span(
                "request", name=request.id or "-", tenant=request.tenant
            ) as span:
                outcome = self._execute(request, worker)
                if span is not None:
                    span.attrs["cache"] = outcome.cache
                    span.attrs["status"] = outcome.status
                return outcome
        return self._execute(request, worker)

    def _execute(self, request: QueryRequest, worker: int) -> QueryOutcome:
        outcome = QueryOutcome(
            id=request.id,
            tenant=request.tenant,
            status="ok",
            version=self.version,
            worker=worker,
        )
        normalized = normalize_query(request.text)
        budget = (
            request.deadline
            if request.deadline is not None
            else self.default_deadline
        )

        # Plan tier, lookup only: a lint rejection below must leave both
        # caches exactly as it found them, so the miss-path insert is
        # deferred until the request is admitted.
        plan = None
        plan_hit = False
        if self.enable_plan_cache:
            plan = self.plan_cache.lookup(
                normalized, stats_version=self.stats_version
            )
            plan_hit = plan is not None
        if plan is None:
            try:
                plan = parse_sparql(normalized)
            except ValueError as exc:
                outcome.status = "error"
                outcome.error = "parse error: %s" % exc
                self.metrics.record_completion(0, 0)
                return outcome

        # Static admission: reject provably-bad queries before they
        # consume service units or populate any cache tier.  Runs on
        # plan-cache hits too -- QL005 depends on this request's budget.
        if self.lint_admission:
            report = self._lint(plan, request, budget)
            errors = sorted(
                report.errors, key=lambda d: d.sort_key()
            )
            if errors:
                outcome.status = "rejected"
                outcome.error = "lint: %s %s" % (
                    errors[0].code,
                    errors[0].message,
                )
                outcome.diagnostics = [
                    d.to_payload() for d in report.sorted_diagnostics()
                ]
                self.metrics.record_lint_rejection()
                self.metrics.record_completion(0, 0)
                return outcome

        # Admitted: account the plan tier and keep the parse for reuse.
        if self.enable_plan_cache:
            if not plan_hit:
                self.plan_cache.put(
                    normalized, plan, stats_version=self.stats_version
                )
            self.metrics.record_plan_cache(plan_hit)

        # Routing tier: classify the shape and, under route=True, pick
        # the engine *before* the result tier -- the cache key embeds
        # the routed engine, so answers served by different engines
        # never alias (their canonical bytes are identical anyway,
        # which tests/server/test_routing_service.py pins).
        outcome.shape = classify_shape(plan).value
        decision = None
        engine_label = self.engine_name
        if self.routing is not None:
            decision = self._route(plan, request)
            engine_label = decision.winner
        outcome.engine = engine_label

        # Result tier.
        key = (normalized, self.version, engine_label)
        if self.enable_result_cache:
            cached = self.result_cache.get(key, self.metrics)
            if cached is not None:
                outcome.payload = cached
                outcome.cache = "result"
                outcome.service_units = CACHE_HIT_UNITS
                self.metrics.record_completion(0, CACHE_HIT_UNITS)
                return outcome

        # Cold (or plan-warm) execution under a deadline.
        slot = self.pool[worker]
        engine = (
            slot.engine_for(engine_label)
            if decision is not None
            else slot
        )
        ctx = engine.ctx
        before = ctx.metrics.snapshot()
        ctx.set_deadline(budget, query=request.id or normalized[:40])
        try:
            result = engine.execute(plan)
        except DeadlineExceededError as exc:
            outcome.status = "deadline"
            outcome.error = str(exc)
            outcome.service_units = exc.spent
            self.metrics.record_deadline_abort()
            self.metrics.record_completion(0, exc.spent)
            if decision is not None:
                # The abort's spent units are a lower bound on the true
                # cost -- still a valid (and cheap) lesson that this
                # engine overruns budgets on this shape.
                self.routing.record(decision, exc.spent)
            return outcome
        except UnsupportedQueryError as exc:
            outcome.status = "unsupported"
            outcome.error = str(exc)
            self.metrics.record_completion(0, 0)
            return outcome
        except TaskFailedError as exc:
            outcome.status = "failed"
            outcome.error = str(exc)
            self.metrics.record_completion(0, 0)
            return outcome
        finally:
            ctx.set_deadline(None)
        delta = ctx.metrics.snapshot() - before
        spent = cost_units(delta)
        if delta["view_scans"]:
            # This execution read at least one materialized ExtVP view.
            self.metrics.incr("view_hits", delta["view_scans"])
        outcome.payload = canonical_json(canonical_result(result, plan))
        outcome.cache = "plan" if plan_hit else "cold"
        outcome.service_units = max(spent, 1)
        if decision is not None:
            self.routing.record(decision, outcome.service_units)
        if self.enable_result_cache:
            self.result_cache.put(key, outcome.payload, self.metrics)
        self.metrics.record_completion(0, outcome.service_units)
        return outcome

    def _route(self, plan, request: QueryRequest):
        """One routing decision, traced as a ``route`` span."""

        def run():
            decision = self.routing.decide(plan)
            self.metrics.incr("routing_decisions")
            if decision.fallback:
                self.metrics.incr("routing_fallbacks")
            return decision

        if self.tracer.enabled:
            with self.tracer.span(
                "route", name=request.id or "-"
            ) as span:
                decision = run()
                if span is not None:
                    span.attrs.update(decision.describe())
                return decision
        return run()

    def _lint(self, plan, request: QueryRequest, budget) -> AnalysisReport:
        """Run the static linter over one parsed plan, traced."""

        def run() -> AnalysisReport:
            return lint_query(
                plan,
                subject=request.id or "query",
                catalog=self._lint_catalog,
                deadline=budget,
                broadcast_threshold=self._broadcast_threshold,
                mode=self._optimizer_mode,
            )

        if self.tracer.enabled:
            with self.tracer.span(
                "lint", name=request.id or "-"
            ) as span:
                report = run()
                if span is not None:
                    span.attrs["errors"] = report.count("error")
                    span.attrs["warnings"] = report.count("warning")
                    span.attrs["rejected"] = bool(report.errors)
                return report
        return run()

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------

    def commit(
        self,
        additions: List[Triple] = (),
        deletions: List[Triple] = (),
    ) -> int:
        """Apply a change set: new graph version, caches invalidated,
        every pooled engine rebuilt on the new head (warm again)."""
        if self.tracer.enabled:
            with self.tracer.span("commit") as span:
                version, dropped = self._commit(additions, deletions)
                if span is not None:
                    span.attrs["version"] = version
                    span.attrs["invalidated"] = dropped
                return version
        return self._commit(additions, deletions)[0]

    def _commit(self, additions, deletions) -> Tuple[int, int]:
        version = self.versions.commit(additions, deletions)
        dropped = self.result_cache.invalidate_below(version, self.metrics)
        head = self.versions.head()
        if self.optimizer is not None:
            view_catalog = self.optimizer.view_catalog
            # Refresh statistics at the new head; the bumped stats version
            # retires every plan-cache entry keyed under the old catalog.
            self.optimizer = self._build_optimizer()
            if view_catalog is not None:
                # Views stay warm across the commit: delta-apply the
                # change set to the affected views (cost proportional to
                # the delta) and re-attach, instead of rebuilding.  The
                # catalog's version now matches the served head, so
                # version-keyed consumers can assert consistency.
                report = view_catalog.apply_delta(
                    self.versions.delta(version), head, version
                )
                self.optimizer.set_view_catalog(view_catalog)
                self.last_maintenance = report
                self.metrics.incr(
                    "views_maintained", report.views_affected
                )
        if self.lint_admission:
            # Lint statistics must track the served head, or admission
            # would reject queries over predicates this commit added.
            self._lint_catalog = self._build_lint_catalog()
        if self.routing is not None:
            # Routing estimates re-anchor on the new head's statistics;
            # calibration (the feedback history) deliberately survives.
            self.routing.refresh(self._routing_catalog())
        for engine in self.pool:
            engine.load(head)
            if self.optimizer is not None:
                engine.set_optimizer(self.optimizer)
        return version, dropped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the service counters."""
        snapshot = self.metrics.snapshot()
        payload = {
            "engine": self.engine_name,
            "pool_size": self.pool_size,
            "version": self.version,
            "optimizer": self._optimizer_mode if self.optimizer else None,
            "stats_version": self.stats_version,
            "lint_admission": self.lint_admission,
            "plan_cache_entries": len(self.plan_cache),
            "result_cache_entries": len(self.result_cache),
            "counters": {name: value for name, value in snapshot if value},
        }
        view_catalog = self.view_catalog
        if view_catalog is not None:
            payload["views"] = view_catalog.summary()
        if self.routing is not None:
            payload["routing"] = self.routing.snapshot()
        return payload

    @property
    def view_catalog(self):
        """The served materialized-view catalog, or None without views."""
        if self.optimizer is None:
            return None
        return self.optimizer.view_catalog

    def snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def __repr__(self) -> str:
        return "QueryService(engine=%s, pool=%d, version=%d)" % (
            self.engine_name,
            self.pool_size,
            self.version,
        )
