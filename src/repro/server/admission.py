"""Admission control and per-tenant fair-share scheduling.

The service protects itself with a *bounded* wait queue: a request that
arrives while every pooled engine is busy and the queue is full is
rejected immediately (:class:`AdmissionRejectedError`), which keeps tail
latency bounded instead of letting the queue grow without limit -- the
workload-aware-scheduling dimension the Ali et al. RDF-store survey
treats as first class.

Dequeueing is fair-share across tenants, not FIFO: each tenant has its
own FIFO lane, and the scheduler always serves the tenant that has had
the *least virtual service time* so far (deficit round robin with cost
units as the currency, ties broken by tenant name for determinism).  A
tenant flooding the queue therefore cannot starve a light tenant: the
light tenant's next request jumps ahead of the flood.

Everything here is pure data structure -- no clocks, no randomness --
so a given arrival sequence always produces the same admission decisions
and the same dequeue order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")


class AdmissionRejectedError(RuntimeError):
    """The bounded queue was full when the request arrived.

    Typed like the fault layer's errors so callers can tell back-pressure
    apart from execution failures; carries the queue state that caused
    the rejection.
    """

    def __init__(self, tenant: str, queue_depth: int, queue_limit: int) -> None:
        self.tenant = tenant
        self.queue_depth = queue_depth
        self.queue_limit = queue_limit
        super().__init__()

    def __str__(self) -> str:
        return (
            "admission rejected for tenant %r: queue full (%d/%d waiting)"
            % (self.tenant, self.queue_depth, self.queue_limit)
        )


class FairShareQueue(Generic[T]):
    """Per-tenant FIFO lanes served least-virtual-service-first.

    :meth:`offer` enqueues (or raises :class:`AdmissionRejectedError`
    when *queue_limit* waiters already exist); :meth:`take` pops the
    next request; :meth:`charge` reports the cost units a tenant's
    dispatched request ended up consuming, which is what future
    scheduling decisions are based on.
    """

    def __init__(self, queue_limit: int = 8) -> None:
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        self.queue_limit = queue_limit
        self._lanes: Dict[str, Deque[T]] = {}
        self._service_units: Dict[str, int] = {}
        self._waiting = 0

    def __len__(self) -> int:
        return self._waiting

    def offer(self, tenant: str, item: T) -> None:
        """Enqueue *item* for *tenant*, or raise when the queue is full."""
        if self._waiting >= self.queue_limit:
            raise AdmissionRejectedError(
                tenant, self._waiting, self.queue_limit
            )
        self._lanes.setdefault(tenant, deque()).append(item)
        self._service_units.setdefault(tenant, 0)
        self._waiting += 1

    def take(self) -> Optional[Tuple[str, T]]:
        """(tenant, item) for the next request to serve, or None.

        Chooses the non-empty lane whose tenant has accumulated the
        least service so far; ties break on tenant name so the order is
        reproducible.
        """
        candidates = sorted(
            (
                (self._service_units.get(tenant, 0), tenant)
                for tenant, lane in self._lanes.items()
                if lane
            ),
        )
        if not candidates:
            return None
        _, tenant = candidates[0]
        item = self._lanes[tenant].popleft()
        self._waiting -= 1
        return tenant, item

    def charge(self, tenant: str, units: int) -> None:
        """Bill *units* of virtual service time to *tenant*."""
        self._service_units[tenant] = (
            self._service_units.get(tenant, 0) + units
        )

    def service_units(self, tenant: str) -> int:
        return self._service_units.get(tenant, 0)

    def waiting_by_tenant(self) -> Dict[str, int]:
        return {
            tenant: len(lane)
            for tenant, lane in sorted(self._lanes.items())
            if lane
        }

    def drain(self) -> List[Tuple[str, T]]:
        """Pop everything in fair-share order (used at shutdown)."""
        out: List[Tuple[str, T]] = []
        while True:
            nxt = self.take()
            if nxt is None:
                return out
            out.append(nxt)
