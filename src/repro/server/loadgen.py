"""Closed-loop load generation over deterministic virtual time.

The generator models the classic closed-loop client population: each of
``clients`` simulated clients submits a query, waits for its completion,
thinks for a seeded think time, and submits the next -- ``requests_per_client``
times.  Clients are spread round-robin over ``tenants`` tenants, so the
fair-share scheduler has real contention to arbitrate.

Time is *virtual*: the unit is the cost unit of
:mod:`repro.spark.deadline` (one task, one scanned record, one shuffled
record, one join comparison each cost one unit).  A request's service
time is the cost its actual execution charges (cache hits cost
:data:`~repro.server.service.CACHE_HIT_UNITS`); its latency is queue
wait plus service time.  Because arrivals, scheduling, execution, and
accounting are all pure functions of the seed and the graph, the whole
report -- throughput, p50/p95/p99, hit rates, rejections -- is
byte-reproducible across runs (asserted in
``tests/server/test_loadgen.py``).

The simulation is discrete-event: a heap of (time, seq) events where
``seq`` is allocation order, so simultaneous events resolve
deterministically.  Two event kinds:

* **arrival** -- a client submits.  A free pool worker dispatches it
  immediately; otherwise admission control either queues it or rejects
  it (:class:`~repro.server.admission.AdmissionRejectedError`), in which
  case the client backs off (a think time) and moves on to its next
  request.
* **completion** -- a worker frees.  The finished client schedules its
  next arrival after a think time, and the fair-share queue picks the
  next waiting request for the freed worker.
"""

from __future__ import annotations

import heapq
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.server.admission import AdmissionRejectedError
from repro.server.service import QueryOutcome, QueryRequest, QueryService

#: Report format version (bumped on incompatible layout changes).
#: 2: per-tenant entries grew the full outcome breakdown (submitted,
#: ok, queue_rejected, lint_rejected, deadline_aborts, errors); the old
#: ambiguous per-tenant "rejected" is now "queue_rejected".
REPORT_FORMAT_VERSION = 2


#: The per-tenant counter template: every tenant entry carries the full
#: outcome breakdown, so per-tenant admission-queue rejections are
#: directly readable off the report (not inferable from totals).
TENANT_COUNTERS = (
    "submitted",
    "completed",
    "ok",
    "service_units",
    "queue_rejected",
    "lint_rejected",
    "deadline_aborts",
    "errors",
)


def percentile(values: Sequence[int], p: float) -> int:
    """Nearest-rank percentile of integer samples (0 for no samples)."""
    if not values:
        return 0
    ordered = sorted(values)
    if p <= 0:
        return ordered[0]
    rank = max(1, -(-int(p * len(ordered)) // 100))  # ceil(p*n/100), >= 1
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LoadReport:
    """The artifact one load-generation run produces."""

    config: Dict[str, Any]
    submitted: int = 0
    completed: int = 0
    ok: int = 0
    rejected: int = 0
    lint_rejected: int = 0
    deadline_aborts: int = 0
    errors: int = 0
    duration_units: int = 0
    latencies: List[int] = field(default_factory=list)
    waits: List[int] = field(default_factory=list)
    max_queue_depth: int = 0
    per_tenant: Dict[str, Dict[str, int]] = field(default_factory=dict)
    cache: Dict[str, Any] = field(default_factory=dict)
    #: Per-shape aggregation (completed/ok/service_units) keyed by the
    #: *classified* shape of each completed request, not its name.
    per_shape: Dict[str, Dict[str, int]] = field(default_factory=dict)
    shape_latencies: Dict[str, List[int]] = field(default_factory=dict)
    #: Completions per serving engine: the routed winner under
    #: ``route=True``, the fixed engine otherwise.
    routed_to: Dict[str, int] = field(default_factory=dict)
    #: The service's routing-policy snapshot after the run (None when
    #: routing is off).
    routing_policy: Optional[Dict[str, Any]] = None

    def throughput_per_kilounit(self) -> float:
        if self.duration_units == 0:
            return 0.0
        return round(1000.0 * self.completed / self.duration_units, 6)

    def to_payload(self) -> Dict[str, Any]:
        latencies = self.latencies
        waits = self.waits
        mean_latency = (
            round(sum(latencies) / len(latencies), 6) if latencies else 0.0
        )
        mean_wait = round(sum(waits) / len(waits), 6) if waits else 0.0
        return {
            "version": REPORT_FORMAT_VERSION,
            "config": dict(self.config),
            "totals": {
                "submitted": self.submitted,
                "completed": self.completed,
                "ok": self.ok,
                "rejected": self.rejected,
                "lint_rejected": self.lint_rejected,
                "deadline_aborts": self.deadline_aborts,
                "errors": self.errors,
            },
            "virtual_duration_units": self.duration_units,
            "throughput_per_kilounit": self.throughput_per_kilounit(),
            "latency_units": {
                "p50": percentile(latencies, 50),
                "p95": percentile(latencies, 95),
                "p99": percentile(latencies, 99),
                "mean": mean_latency,
                "max": max(latencies) if latencies else 0,
            },
            "queue": {
                "max_depth": self.max_queue_depth,
                "mean_wait_units": mean_wait,
            },
            "cache": dict(self.cache),
            "tenants": {k: dict(v) for k, v in sorted(self.per_tenant.items())},
            "shapes": {
                shape: dict(
                    counters,
                    latency_units={
                        "p50": percentile(
                            self.shape_latencies.get(shape, []), 50
                        ),
                        "p95": percentile(
                            self.shape_latencies.get(shape, []), 95
                        ),
                        "mean": (
                            round(
                                sum(self.shape_latencies[shape])
                                / len(self.shape_latencies[shape]),
                                6,
                            )
                            if self.shape_latencies.get(shape)
                            else 0.0
                        ),
                    },
                )
                for shape, counters in sorted(self.per_shape.items())
            },
            "routing": {
                "enabled": bool(self.config.get("route")),
                "routed_to": dict(sorted(self.routed_to.items())),
                "policy": self.routing_policy,
            },
        }

    def to_json(self) -> str:
        """Pretty, byte-stable JSON (the ``BENCH_server.json`` body)."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"


def build_workload(
    graph, size: int = 6, seed: int = 42
) -> List[Tuple[str, str]]:
    """A deterministic (name, query text) workload drawn from *graph*.

    Mixes single-pattern scans, subject stars, and two-hop paths built
    from the graph's own predicates, so every query has answers.  The
    workload is textual (the service boundary speaks SPARQL text), and
    the draw is seeded, so the same (graph, size, seed) always produces
    the same workload -- a precondition for byte-reproducible reports.
    """
    rng = random.Random(seed)
    predicates = sorted(
        {t.predicate for t in graph}, key=lambda term: term.sort_key()
    )
    if not predicates:
        raise ValueError("graph has no triples to build a workload from")
    # Subject stars: subjects carrying at least two distinct predicates.
    star_subjects = []
    for subject in sorted(graph.subjects(), key=lambda t: t.sort_key()):
        preds = sorted(
            {t.predicate for t in graph.triples((subject, None, None))},
            key=lambda t: t.sort_key(),
        )
        if len(preds) >= 2:
            star_subjects.append(preds)
    # Two-hop paths: predicate pairs (p, q) where some object of p is a
    # subject of q.
    subjects = set(graph.subjects())
    path_pairs = []
    for p in predicates:
        bridging = [
            t.object for t in graph.triples((None, p, None))
            if t.object in subjects
        ]
        if not bridging:
            continue
        follow = sorted(
            {
                t.predicate
                for node in bridging
                for t in graph.triples((node, None, None))
            },
            key=lambda t: t.sort_key(),
        )
        for q in follow:
            path_pairs.append((p, q))
    workload: List[Tuple[str, str]] = []
    for index in range(size):
        kind = index % 3
        if kind == 0 or (kind == 1 and not star_subjects) or (
            kind == 2 and not path_pairs
        ):
            predicate = rng.choice(predicates)
            workload.append(
                (
                    "single%d" % index,
                    "SELECT ?s ?o WHERE { ?s %s ?o }" % predicate.n3(),
                )
            )
        elif kind == 1:
            preds = rng.choice(star_subjects)[:2]
            workload.append(
                (
                    "star%d" % index,
                    "SELECT ?s ?o0 ?o1 WHERE { ?s %s ?o0 . ?s %s ?o1 }"
                    % (preds[0].n3(), preds[1].n3()),
                )
            )
        else:
            p, q = rng.choice(path_pairs)
            workload.append(
                (
                    "path%d" % index,
                    "SELECT ?a ?b ?c WHERE { ?a %s ?b . ?b %s ?c }"
                    % (p.n3(), q.n3()),
                )
            )
    return workload


#: The shape vocabulary of :func:`build_shape_workload`, in emission
#: order (matches the non-degenerate :class:`repro.sparql.shapes.QueryShape`
#: values).
SHAPE_NAMES = ("single", "star", "linear", "snowflake", "complex")


def build_shape_workload(
    graph, per_shape: int = 1, seed: int = 42
) -> List[Tuple[str, str]]:
    """A deterministic shape-stratified (name, query) workload.

    One query family per :data:`SHAPE_NAMES` entry, built from the
    graph's own predicates so every query has answers: a single-pattern
    scan, a two-pattern subject star, a two-hop chain, a star-bridge-star
    snowflake, and an object-object join (complex).  Shapes the graph
    cannot instantiate (e.g. no bridging predicate pairs) are skipped,
    so the result may be shorter than ``5 * per_shape`` on degenerate
    graphs; the per-request report keys on the *classified* shape, never
    on these names.
    """
    rng = random.Random(seed)
    predicates = sorted(
        {t.predicate for t in graph}, key=lambda term: term.sort_key()
    )
    if not predicates:
        raise ValueError("graph has no triples to build a workload from")
    subjects = set(graph.subjects())

    def preds_of(node):
        return sorted(
            {t.predicate for t in graph.triples((node, None, None))},
            key=lambda t: t.sort_key(),
        )

    # Subject stars: subjects carrying at least two distinct predicates.
    star_options = []
    seen_star = set()
    for subject in sorted(graph.subjects(), key=lambda t: t.sort_key()):
        preds = preds_of(subject)
        if len(preds) >= 2 and tuple(preds[:2]) not in seen_star:
            seen_star.add(tuple(preds[:2]))
            star_options.append(preds[:2])
    # Two-hop chains: predicate pairs (p, q) where an object of p is a
    # subject of q; snowflakes extend a chain link with a star at each
    # end (?a {p1,p2} / bridge p2 -> ?b {q1,q2}).
    path_pairs = []
    snowflake_options = []
    seen_path = set()
    seen_snow = set()
    for p in predicates:
        bridging = [
            t.object for t in graph.triples((None, p, None))
            if t.object in subjects
        ]
        if not bridging:
            continue
        for node in sorted(bridging, key=lambda t: t.sort_key()):
            follow = preds_of(node)
            for q in follow:
                if (p, q) not in seen_path:
                    seen_path.add((p, q))
                    path_pairs.append((p, q))
            if len(follow) < 2:
                continue
            # A star on the bridge target; now find a star source.
            for source in sorted(
                {
                    t.subject
                    for t in graph.triples((None, p, node))
                },
                key=lambda t: t.sort_key(),
            ):
                source_preds = [
                    sp for sp in preds_of(source) if sp != p
                ]
                if not source_preds:
                    continue
                key = (source_preds[0], p, follow[0], follow[1])
                if key not in seen_snow:
                    seen_snow.add(key)
                    snowflake_options.append(key)
                break
    # Object-object joins: distinct predicate pairs sharing an object.
    complex_options = []
    objects_by_pred = {
        p: {t.object for t in graph.triples((None, p, None))}
        for p in predicates
    }
    for i, p in enumerate(predicates):
        for q in predicates[i + 1:]:
            if objects_by_pred[p] & objects_by_pred[q]:
                complex_options.append((p, q))

    templates = {
        "single": (
            predicates,
            lambda opt: "SELECT ?s ?o WHERE { ?s %s ?o }" % opt.n3(),
        ),
        "star": (
            star_options,
            lambda opt: "SELECT ?s ?o0 ?o1 WHERE { ?s %s ?o0 . ?s %s ?o1 }"
            % (opt[0].n3(), opt[1].n3()),
        ),
        "linear": (
            path_pairs,
            lambda opt: "SELECT ?a ?b ?c WHERE { ?a %s ?b . ?b %s ?c }"
            % (opt[0].n3(), opt[1].n3()),
        ),
        "snowflake": (
            snowflake_options,
            lambda opt: "SELECT ?a ?o0 ?b ?c0 ?c1 WHERE { "
            "?a %s ?o0 . ?a %s ?b . ?b %s ?c0 . ?b %s ?c1 }"
            % (opt[0].n3(), opt[1].n3(), opt[2].n3(), opt[3].n3()),
        ),
        "complex": (
            complex_options,
            lambda opt: "SELECT ?a ?b ?o WHERE { ?a %s ?o . ?b %s ?o }"
            % (opt[0].n3(), opt[1].n3()),
        ),
    }
    workload: List[Tuple[str, str]] = []
    for shape in SHAPE_NAMES:
        options, render = templates[shape]
        if not options:
            continue
        for index in range(per_shape):
            option = options[rng.randrange(len(options))]
            workload.append(("%s%d" % (shape, index), render(option)))
    return workload


def shape_tenant_profiles(
    workload: Sequence[Tuple[str, str]],
    tenants: int,
    emphasis: int = 3,
) -> Dict[str, List[str]]:
    """Shape-mixed tenant profiles over a stratified workload.

    Tenant *i* draws every workload query but sees its preferred shape
    (round-robin over the shapes present) ``emphasis`` times as often --
    a deterministic skew that gives the routing feedback loop every
    shape while keeping tenants distinguishable in the report.
    """
    if tenants <= 0:
        raise ValueError("tenants must be positive")
    shapes: List[str] = []
    by_shape: Dict[str, List[str]] = {}
    for name, _text in workload:
        shape = name.rstrip("0123456789")
        if shape not in by_shape:
            shapes.append(shape)
            by_shape[shape] = []
        by_shape[shape].append(name)
    profiles: Dict[str, List[str]] = {}
    for tenant in range(tenants):
        preferred = shapes[tenant % len(shapes)]
        profile = by_shape[preferred] * emphasis
        for shape in shapes:
            if shape != preferred:
                profile.extend(by_shape[shape])
        profiles["tenant%d" % tenant] = profile
    return profiles


def build_shacl_workload(
    graph,
    seed: int = 42,
    max_classes: int = 3,
    max_properties: int = 2,
    probes: int = 4,
) -> List[Tuple[str, str]]:
    """A validation-shaped (name, query) workload drawn from *graph*.

    Exactly the queries a :class:`~repro.shacl.validator.ShaclValidator`
    would fan out for :func:`~repro.shacl.shapes.default_shapes_for`
    shapes -- target SELECTs and per-property value SELECTs -- plus a
    seeded draw of ``ASK`` class-membership probes over the graph's own
    ``rdf:type`` triples.  Names are the compiled-query ids (so the
    report's workload list reads as a validation trace) and ``probe<i>``.
    """
    from repro.rdf.vocab import RDF
    from repro.shacl.compile import compile_shape_set
    from repro.shacl.shapes import default_shapes_for

    shapes = default_shapes_for(
        graph, max_classes=max_classes, max_properties=max_properties
    )
    workload: List[Tuple[str, str]] = [
        (compiled.id, compiled.text)
        for compiled in compile_shape_set(shapes)
    ]
    typed = sorted(
        (
            (t.subject.n3(), t.object.n3())
            for t in graph.triples((None, RDF.type, None))
        ),
    )
    rng = random.Random(seed)
    for index in range(min(probes, len(typed))):
        subject, class_ = typed[rng.randrange(len(typed))]
        workload.append(
            (
                "probe%d" % index,
                "ASK { %s %s %s }" % (subject, RDF.type.n3(), class_),
            )
        )
    return workload


def build_federated_workload(
    graph,
    seed: int = 42,
    predicates: int = 3,
    pages: int = 3,
    page_size: int = 8,
) -> List[Tuple[str, str]]:
    """A harvester-shaped workload: paged CONSTRUCT queries.

    One CONSTRUCT family per top predicate (by triple count), each
    split into ``pages`` consecutive ``LIMIT page_size OFFSET n`` pages
    -- exactly the requests a :class:`~repro.federation.Subgraph` issues,
    exercising the protocol's stable-paging path under load.  Pages of
    one family share a normalized *where* clause but differ in their
    slice, so plan caching across them is the interesting signal.
    """
    if predicates <= 0 or pages <= 0 or page_size <= 0:
        raise ValueError("predicates, pages, and page_size must be positive")
    counts: Dict[Any, int] = {}
    for triple in graph:
        counts[triple.predicate] = counts.get(triple.predicate, 0) + 1
    if not counts:
        raise ValueError("graph has no triples to build a workload from")
    ranked = sorted(counts, key=lambda p: (-counts[p], p.n3()))
    rng = random.Random(seed)
    chosen = ranked[:predicates]
    if len(ranked) > predicates:
        # Seeded jitter: swap one slot with a random lower-ranked
        # predicate so differently-seeded runs stress different families.
        slot = rng.randrange(len(chosen))
        chosen[slot] = ranked[predicates + rng.randrange(
            len(ranked) - predicates
        )]
    workload: List[Tuple[str, str]] = []
    for index, predicate in enumerate(chosen):
        for page in range(pages):
            workload.append(
                (
                    "harvest%dp%d" % (index, page),
                    "CONSTRUCT { ?s %s ?o } WHERE { ?s %s ?o } "
                    "LIMIT %d OFFSET %d"
                    % (
                        predicate.n3(),
                        predicate.n3(),
                        page_size,
                        page * page_size,
                    ),
                )
            )
    return workload


def grouped_tenant_profiles(
    workload: Sequence[Tuple[str, str]],
    tenants: int,
    emphasis: int = 3,
) -> Dict[str, List[str]]:
    """Tenant profiles over a grouped workload (shacl / federated).

    Queries group by family -- the shape name for compiled validation
    queries (``shacl/<shape>/...``), the harvest family for paged
    CONSTRUCTs (``harvest<i>p<j>``), the literal prefix otherwise --
    and tenant *i* sees its preferred family ``emphasis`` times as
    often, mirroring :func:`shape_tenant_profiles` for the validation
    and harvesting workloads.
    """
    if tenants <= 0:
        raise ValueError("tenants must be positive")

    def group_of(name: str) -> str:
        if name.startswith("shacl/"):
            return name.split("/")[1]
        if name.startswith("harvest") and "p" in name:
            return name.split("p")[0]
        return name.rstrip("0123456789")

    groups: List[str] = []
    by_group: Dict[str, List[str]] = {}
    for name, _text in workload:
        group = group_of(name)
        if group not in by_group:
            groups.append(group)
            by_group[group] = []
        by_group[group].append(name)
    profiles: Dict[str, List[str]] = {}
    for tenant in range(tenants):
        preferred = groups[tenant % len(groups)]
        profile = by_group[preferred] * emphasis
        for group in groups:
            if group != preferred:
                profile.extend(by_group[group])
        profiles["tenant%d" % tenant] = profile
    return profiles


@dataclass(frozen=True)
class _Arrival:
    """One in-flight submission (queue entry payload)."""

    request: QueryRequest
    client: int
    arrival_time: int


class LoadGenerator:
    """Drive a :class:`~repro.server.service.QueryService` closed-loop."""

    def __init__(
        self,
        service: QueryService,
        workload: Sequence[Tuple[str, str]],
        clients: int = 8,
        tenants: int = 2,
        requests_per_client: int = 8,
        think_units: int = 50,
        seed: int = 42,
        deadline: Optional[int] = None,
        tenant_profiles: Optional[Dict[str, Sequence[str]]] = None,
    ) -> None:
        if not workload:
            raise ValueError("workload must contain at least one query")
        if clients <= 0 or requests_per_client <= 0:
            raise ValueError("clients and requests_per_client must be positive")
        if tenants <= 0:
            raise ValueError("tenants must be positive")
        if deadline is not None and deadline <= 0:
            raise ValueError(
                "deadline must be a positive number of cost units"
            )
        self.service = service
        self.workload = list(workload)
        self.clients = clients
        self.tenants = tenants
        self.requests_per_client = requests_per_client
        self.think_units = think_units
        self.seed = seed
        self.deadline = deadline
        #: Per-tenant draw lists (workload names, duplicates = weight);
        #: tenants not listed draw uniformly from the whole workload.
        self.tenant_profiles: Dict[str, List[str]] = {}
        if tenant_profiles:
            names = {name for name, _ in self.workload}
            for tenant in sorted(tenant_profiles):
                profile = list(tenant_profiles[tenant])
                unknown = sorted(set(profile) - names)
                if unknown:
                    raise ValueError(
                        "tenant profile %r names unknown queries: %s"
                        % (tenant, ", ".join(unknown))
                    )
                if not profile:
                    raise ValueError(
                        "tenant profile %r must not be empty" % tenant
                    )
                self.tenant_profiles[tenant] = profile
        self._by_name = {name: text for name, text in self.workload}

    def _tenant_of(self, client: int) -> str:
        return "tenant%d" % (client % self.tenants)

    def run(self) -> LoadReport:
        report = LoadReport(config=self._config())
        rngs = [
            random.Random(self.seed * 1000003 + client)
            for client in range(self.clients)
        ]
        remaining = [self.requests_per_client] * self.clients
        sent = [0] * self.clients
        free_workers = list(range(self.service.pool_size))
        queue = self.service.queue
        events: List[Tuple[int, int, str, Any]] = []
        seq = 0

        def push(time: int, kind: str, data: Any) -> None:
            nonlocal seq
            heapq.heappush(events, (time, seq, kind, data))
            seq += 1

        def think(client: int) -> int:
            if self.think_units <= 0:
                return 0
            return rngs[client].randrange(self.think_units + 1)

        def next_request(client: int) -> Optional[QueryRequest]:
            if remaining[client] <= 0:
                return None
            remaining[client] -= 1
            sent[client] += 1
            profile = self.tenant_profiles.get(self._tenant_of(client))
            if profile is not None:
                name = profile[rngs[client].randrange(len(profile))]
                text = self._by_name[name]
            else:
                name, text = self.workload[
                    rngs[client].randrange(len(self.workload))
                ]
            return QueryRequest(
                text=text,
                tenant=self._tenant_of(client),
                id="c%d-r%d-%s" % (client, sent[client], name),
                deadline=self.deadline,
            )

        def tenant_entry(tenant: str) -> Dict[str, int]:
            return report.per_tenant.setdefault(
                tenant, {key: 0 for key in TENANT_COUNTERS}
            )

        def record(outcome: QueryOutcome, arrival: _Arrival, now: int) -> None:
            # *now* is the completion timestamp, so it already spans both
            # the queue wait and the service time.
            latency = now - arrival.arrival_time
            report.completed += 1
            report.latencies.append(latency)
            report.waits.append(outcome.wait_units)
            tenant = tenant_entry(outcome.tenant)
            tenant["completed"] += 1
            tenant["service_units"] += outcome.service_units
            shape = outcome.shape or "unknown"
            per_shape = report.per_shape.setdefault(
                shape, {"completed": 0, "ok": 0, "service_units": 0}
            )
            per_shape["completed"] += 1
            per_shape["service_units"] += outcome.service_units
            report.shape_latencies.setdefault(shape, []).append(latency)
            engine = outcome.engine or self.service.engine_name
            report.routed_to[engine] = report.routed_to.get(engine, 0) + 1
            if outcome.status == "ok":
                per_shape["ok"] += 1
                report.ok += 1
                tenant["ok"] += 1
            elif outcome.status == "rejected":
                # Static lint rejection: counted apart from queue
                # rejections (report.rejected), which never execute.
                report.lint_rejected += 1
                tenant["lint_rejected"] += 1
            elif outcome.status == "deadline":
                report.deadline_aborts += 1
                tenant["deadline_aborts"] += 1
            else:
                report.errors += 1
                tenant["errors"] += 1

        def dispatch(arrival: _Arrival, worker: int, now: int) -> None:
            outcome = self.service.execute_on(arrival.request, worker)
            outcome.wait_units = now - arrival.arrival_time
            queue.charge(arrival.request.tenant, outcome.service_units)
            self.service.metrics.incr(
                "queue_wait_units", outcome.wait_units
            )
            push(
                now + outcome.service_units,
                "completion",
                (arrival, worker, outcome),
            )

        # Seed the population: every client's first arrival is one think
        # time into the run (staggered deterministically per client).
        for client in range(self.clients):
            request = next_request(client)
            if request is not None:
                push(think(client), "arrival", (client, request))

        now = 0
        while events:
            now, _, kind, data = heapq.heappop(events)
            if kind == "arrival":
                client, request = data
                report.submitted += 1
                tenant_entry(request.tenant)["submitted"] += 1
                arrival = _Arrival(request, client, now)
                if free_workers:
                    worker = free_workers.pop(0)
                    self.service.metrics.record_admission(True)
                    dispatch(arrival, worker, now)
                else:
                    try:
                        queue.offer(request.tenant, arrival)
                        self.service.metrics.record_admission(True)
                        report.max_queue_depth = max(
                            report.max_queue_depth, len(queue)
                        )
                    except AdmissionRejectedError:
                        self.service.metrics.record_admission(False)
                        report.rejected += 1
                        tenant_entry(request.tenant)["queue_rejected"] += 1
                        # The client backs off and moves to its next
                        # request (the rejected one is lost, as reported).
                        nxt = next_request(client)
                        if nxt is not None:
                            push(
                                now + 1 + think(client),
                                "arrival",
                                (client, nxt),
                            )
            else:  # completion
                arrival, worker, outcome = data
                record(outcome, arrival, now)
                nxt = next_request(arrival.client)
                if nxt is not None:
                    push(
                        now + 1 + think(arrival.client),
                        "arrival",
                        (arrival.client, nxt),
                    )
                waiting = queue.take()
                if waiting is None:
                    free_workers.append(worker)
                    free_workers.sort()
                else:
                    _tenant, queued = waiting
                    dispatch(queued, worker, now)

        report.duration_units = now
        if getattr(self.service, "route_enabled", False):
            report.routing_policy = self.service.routing.snapshot()
        snapshot = self.service.snapshot()
        hits = snapshot.result_cache_hits
        misses = snapshot.result_cache_misses
        report.cache = {
            "plan_hits": snapshot.plan_cache_hits,
            "plan_misses": snapshot.plan_cache_misses,
            "result_hits": hits,
            "result_misses": misses,
            "result_hit_rate": round(snapshot.result_cache_hit_rate(), 6),
            "result_invalidations": snapshot.result_cache_invalidations,
        }
        return report

    def _config(self) -> Dict[str, Any]:
        return {
            "engine": self.service.engine_name,
            "route": bool(getattr(self.service, "route_enabled", False)),
            "route_engines": (
                list(self.service.routing.engines)
                if getattr(self.service, "route_enabled", False)
                else None
            ),
            "profiles": {
                tenant: list(profile)
                for tenant, profile in sorted(self.tenant_profiles.items())
            },
            "pool_size": self.service.pool_size,
            "queue_limit": self.service.queue.queue_limit,
            "plan_cache": self.service.enable_plan_cache,
            "result_cache": self.service.enable_result_cache,
            "lint": self.service.lint_admission,
            "clients": self.clients,
            "tenants": self.tenants,
            "requests_per_client": self.requests_per_client,
            "think_units": self.think_units,
            "seed": self.seed,
            "deadline": self.deadline,
            "workload": [name for name, _ in self.workload],
        }
