"""The JSON-lines request loop behind ``repro serve``.

Reads one request object per line from an input stream, applies it to a
:class:`~repro.server.service.QueryService`, and writes one canonical
response line per request to an output stream.  Malformed lines produce
``status: "error"`` responses rather than killing the loop -- a serving
process must outlive bad clients.

Kept free of argparse and file handling so tests can drive it with
``io.StringIO`` pairs.
"""

from __future__ import annotations

from typing import IO, Any, Dict, Iterable, List

from repro.rdf.ntriples import parse_ntriples
from repro.server.protocol import (
    ProtocolError,
    decode_request,
    encode_response,
)
from repro.server.service import QueryRequest, QueryService


def _parse_change_set(lines: Iterable[str]) -> List:
    """N-Triples lines -> Triple list (the commit op's change format)."""
    return list(parse_ntriples("\n".join(lines)))


def handle_request(service: QueryService, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Apply one decoded request object; returns the response object."""
    op = payload.get("op", "query")
    if op == "query":
        deadline = payload.get("deadline")
        if deadline is not None and (
            not isinstance(deadline, int) or deadline <= 0
        ):
            return {
                "id": payload.get("id", ""),
                "status": "error",
                "error": "deadline must be a positive integer of cost units",
            }
        outcome = service.submit(
            QueryRequest(
                text=payload["query"],
                tenant=str(payload.get("tenant", "default")),
                id=str(payload.get("id", "")),
                deadline=deadline,
            )
        )
        return outcome.to_response()
    if op == "commit":
        try:
            additions = _parse_change_set(payload.get("additions", ()))
            deletions = _parse_change_set(payload.get("deletions", ()))
        except ValueError as exc:
            return {
                "id": payload.get("id", ""),
                "status": "error",
                "error": "bad change set: %s" % exc,
            }
        # The counter is cumulative; diff it across the commit so the
        # response reports only the entries *this* commit dropped.
        before = service.snapshot().result_cache_invalidations
        version = service.commit(additions, deletions)
        after = service.snapshot().result_cache_invalidations
        return {
            "id": payload.get("id", ""),
            "status": "ok",
            "version": version,
            "invalidated": after - before,
        }
    # op == "stats" (decode_request rejects anything else)
    response = {"id": payload.get("id", ""), "status": "ok"}
    response.update(service.stats())
    return response


def serve_lines(
    service: QueryService, in_stream: IO[str], out_stream: IO[str]
) -> int:
    """The request loop: one response line per input line.

    Returns the number of requests processed (including errored ones).
    Blank lines are skipped; EOF ends the loop.
    """
    processed = 0
    for line in in_stream:
        if not line.strip():
            continue
        processed += 1
        try:
            payload = decode_request(line)
        except ProtocolError as exc:
            response: Dict[str, Any] = {
                "id": "",
                "status": "error",
                "error": str(exc),
            }
        else:
            response = handle_request(service, payload)
        out_stream.write(encode_response(response) + "\n")
        if hasattr(out_stream, "flush"):
            out_stream.flush()
    return processed
