"""An SP²Bench-like bibliographic benchmark generator.

SP²Bench (the SPARQL Performance Benchmark) models DBLP: articles appear
in journals, are written by authors, and cite each other; inproceedings
belong to conference proceedings.  Several of the surveyed systems (S2X,
S2RDF) were evaluated on it; this generator reproduces its join structure
-- deep citation chains (linear queries), wide author stars, and the
famous "articles with the same author set" complex joins.
"""

from __future__ import annotations

import random
from typing import List

from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.rdf.vocab import RDF

#: The SP2Bench-like vocabulary namespace.
SP2B = Namespace("http://repro.example.org/sp2b#")


class Sp2bGenerator:
    """Deterministic DBLP-like data generator."""

    def __init__(
        self,
        num_articles: int = 40,
        num_authors: int = 25,
        num_journals: int = 6,
        citations_per_article: int = 3,
        authors_per_article: int = 2,
        seed: int = 11,
    ) -> None:
        self.num_articles = num_articles
        self.num_authors = num_authors
        self.num_journals = num_journals
        self.citations_per_article = citations_per_article
        self.authors_per_article = authors_per_article
        self.seed = seed

    def generate(self) -> RDFGraph:
        rng = random.Random(self.seed)
        graph = RDFGraph()

        authors = []
        for a in range(self.num_authors):
            person = SP2B["Author%d" % a]
            graph.add(Triple(person, RDF.type, SP2B.Person))
            graph.add(Triple(person, SP2B.name, Literal("Author %d" % a)))
            authors.append(person)

        journals = []
        for j in range(self.num_journals):
            journal = SP2B["Journal%d" % j]
            graph.add(Triple(journal, RDF.type, SP2B.Journal))
            graph.add(
                Triple(journal, SP2B.title, Literal("Journal %d" % j))
            )
            journals.append(journal)

        articles = []
        for i in range(self.num_articles):
            article = SP2B["Article%d" % i]
            graph.add(Triple(article, RDF.type, SP2B.Article))
            graph.add(
                Triple(article, SP2B.title, Literal("Article %d" % i))
            )
            graph.add(
                Triple(article, SP2B.year, Literal(1990 + rng.randrange(30)))
            )
            graph.add(Triple(article, SP2B.journal, rng.choice(journals)))
            graph.add(
                Triple(article, SP2B.pages, Literal(1 + rng.randrange(40)))
            )
            for author in rng.sample(
                authors, k=min(self.authors_per_article, len(authors))
            ):
                graph.add(Triple(article, SP2B.creator, author))
            # Citations point strictly backwards: an acyclic citation DAG
            # with chains, like real bibliographies.
            if articles:
                for cited in rng.sample(
                    articles,
                    k=min(self.citations_per_article, len(articles)),
                ):
                    graph.add(Triple(article, SP2B.cites, cited))
            articles.append(article)
        return graph

    # ------------------------------------------------------------------
    # Canonical queries (mirroring SP2Bench's Q families)
    # ------------------------------------------------------------------

    @staticmethod
    def query_article_star() -> str:
        """Q2-like: all properties of every article (star)."""
        return """
        PREFIX sp2b: <http://repro.example.org/sp2b#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?a ?t ?y ?j WHERE {
          ?a rdf:type sp2b:Article .
          ?a sp2b:title ?t .
          ?a sp2b:year ?y .
          ?a sp2b:journal ?j .
        }
        """

    @staticmethod
    def query_citation_chain() -> str:
        """Q4-like: two-hop citation chains (linear)."""
        return """
        PREFIX sp2b: <http://repro.example.org/sp2b#>
        SELECT ?a ?b ?c WHERE {
          ?a sp2b:cites ?b .
          ?b sp2b:cites ?c .
        }
        """

    @staticmethod
    def query_coauthors() -> str:
        """Q5-like: pairs of authors of the same article (object-object)."""
        return """
        PREFIX sp2b: <http://repro.example.org/sp2b#>
        SELECT ?x ?y ?a WHERE {
          ?a sp2b:creator ?x .
          ?a sp2b:creator ?y .
          FILTER(?x != ?y)
        }
        """

    @staticmethod
    def query_recent_articles() -> str:
        """Q3-like: FILTER on a data property with ORDER BY."""
        return """
        PREFIX sp2b: <http://repro.example.org/sp2b#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?a ?y WHERE {
          ?a rdf:type sp2b:Article .
          ?a sp2b:year ?y .
          FILTER(?y >= 2010)
        } ORDER BY DESC(?y)
        """

    @staticmethod
    def query_journal_snowflake() -> str:
        """Q6-like: article star joined to its journal's properties."""
        return """
        PREFIX sp2b: <http://repro.example.org/sp2b#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?a ?t ?j ?jt WHERE {
          ?a rdf:type sp2b:Article .
          ?a sp2b:title ?t .
          ?a sp2b:journal ?j .
          ?j rdf:type sp2b:Journal .
          ?j sp2b:title ?jt .
        }
        """

    @classmethod
    def all_queries(cls) -> dict:
        return {
            "article_star": cls.query_article_star(),
            "citation_chain": cls.query_citation_chain(),
            "coauthors": cls.query_coauthors(),
            "recent_articles": cls.query_recent_articles(),
            "journal_snowflake": cls.query_journal_snowflake(),
        }
