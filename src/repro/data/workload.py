"""Shape-parameterized random query workloads over arbitrary graphs.

The harness uses these to stress each engine with many distinct queries of
a controlled shape; HAQWA's workload-aware allocation consumes the
frequency-weighted form.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Literal, Term, URI
from repro.rdf.vocab import RDF
from repro.sparql.ast import SelectQuery, GroupGraphPattern, TriplePattern, Variable
from repro.sparql.shapes import QueryShape, classify_patterns


@dataclass
class WeightedQuery:
    """A query with a relative submission frequency."""

    name: str
    query: SelectQuery
    frequency: float = 1.0


@dataclass
class QueryWorkload:
    """A named collection of weighted queries."""

    queries: List[WeightedQuery] = field(default_factory=list)

    def add(self, name: str, query: SelectQuery, frequency: float = 1.0) -> None:
        self.queries.append(WeightedQuery(name, query, frequency))

    def total_frequency(self) -> float:
        return sum(w.frequency for w in self.queries)

    def most_frequent(self, top: int = 3) -> List[WeightedQuery]:
        return sorted(
            self.queries, key=lambda w: w.frequency, reverse=True
        )[:top]

    def __iter__(self):
        return iter(self.queries)

    def __len__(self) -> int:
        return len(self.queries)


def _select_of(patterns: Sequence[TriplePattern]) -> SelectQuery:
    where = GroupGraphPattern(list(patterns))
    return SelectQuery(variables=None, where=where)


def _subject_with_degree(
    graph: RDFGraph, rng: random.Random, min_degree: int
) -> Optional[Term]:
    subjects = [
        s
        for s in graph.subjects()
        if len({t.predicate for t in graph.triples((s, None, None))})
        >= min_degree
    ]
    if not subjects:
        return None
    return rng.choice(sorted(subjects, key=lambda t: t.sort_key()))


def _star_patterns(
    graph: RDFGraph, rng: random.Random, size: int
) -> Optional[List[TriplePattern]]:
    subject = _subject_with_degree(graph, rng, size)
    if subject is None:
        return None
    predicates = sorted(
        {t.predicate for t in graph.triples((subject, None, None))},
        key=lambda t: t.sort_key(),
    )
    chosen = rng.sample(predicates, k=min(size, len(predicates)))
    subject_var = Variable("s")
    patterns = []
    for index, predicate in enumerate(chosen):
        patterns.append(
            TriplePattern(subject_var, predicate, Variable("o%d" % index))
        )
    return patterns


def _linear_patterns(
    graph: RDFGraph, rng: random.Random, length: int
) -> Optional[List[TriplePattern]]:
    subjects = sorted(graph.subjects(), key=lambda t: t.sort_key())
    rng.shuffle(subjects)
    for start in subjects[:50]:
        walk = _random_walk(graph, rng, start, length)
        if walk is not None:
            patterns = []
            for index, predicate in enumerate(walk):
                patterns.append(
                    TriplePattern(
                        Variable("v%d" % index),
                        predicate,
                        Variable("v%d" % (index + 1)),
                    )
                )
            return patterns
    return None


def _random_walk(
    graph: RDFGraph, rng: random.Random, start: Term, length: int
) -> Optional[List[Term]]:
    """A list of predicates forming an s->o walk of *length* hops."""
    node = start
    predicates: List[Term] = []
    for _hop in range(length):
        candidates = [
            t
            for t in graph.triples((node, None, None))
            if isinstance(t.object, URI)
            and t.predicate != RDF.type
            and graph.triples((t.object, None, None))
        ]
        usable = [
            t
            for t in candidates
            if any(
                not isinstance(n.object, Literal) or True
                for n in graph.triples((t.object, None, None))
            )
        ]
        if not usable:
            return None
        step = rng.choice(sorted(usable))
        predicates.append(step.predicate)
        node = step.object
    return predicates


def _snowflake_patterns(
    graph: RDFGraph, rng: random.Random
) -> Optional[List[TriplePattern]]:
    """Two stars linked by one subject-object edge."""
    star = _star_patterns(graph, rng, 2)
    if star is None:
        return None
    # Find a linking predicate whose objects are themselves subjects.
    link_candidates = sorted(
        {
            t.predicate
            for t in graph
            if isinstance(t.object, URI)
            and t.predicate != RDF.type
            and len(graph._spo.get(t.object, {})) >= 2
        },
        key=lambda t: t.sort_key(),
    )
    if not link_candidates:
        return None
    link = rng.choice(link_candidates)
    target = Variable("t")
    patterns = list(star)
    patterns.append(TriplePattern(Variable("s"), link, target))
    # Second star around a randomly sampled link target.
    candidates = sorted(
        {
            t.object
            for t in graph.triples((None, link, None))
            if isinstance(t.object, URI)
            and len(graph._spo.get(t.object, {})) >= 2
        },
        key=lambda term: term.sort_key(),
    )
    if not candidates:
        return None
    sample = rng.choice(candidates)
    target_predicates = sorted(
        {t.predicate for t in graph.triples((sample, None, None))},
        key=lambda t: t.sort_key(),
    )[:2]
    if len(target_predicates) < 2:
        return None
    for index, predicate in enumerate(target_predicates):
        patterns.append(
            TriplePattern(target, predicate, Variable("to%d" % index))
        )
    return patterns


def _complex_patterns(
    graph: RDFGraph, rng: random.Random
) -> Optional[List[TriplePattern]]:
    """Two patterns meeting object-object plus an anchor pattern."""
    by_object: Dict[Term, List[Term]] = {}
    for triple in graph:
        if isinstance(triple.object, URI) and triple.predicate != RDF.type:
            by_object.setdefault(triple.object, []).append(triple.predicate)
    shared = [
        (obj, sorted(set(preds), key=lambda t: t.sort_key()))
        for obj, preds in sorted(by_object.items(), key=lambda kv: kv[0].sort_key())
        if len(set(preds)) >= 2
    ]
    if not shared:
        return None
    _obj, predicates = rng.choice(shared)
    p1, p2 = predicates[0], predicates[1]
    return [
        TriplePattern(Variable("a"), p1, Variable("x")),
        TriplePattern(Variable("b"), p2, Variable("x")),
        TriplePattern(Variable("a"), RDF.type, Variable("ta")),
    ]


def generate_query(
    graph: RDFGraph,
    shape: QueryShape,
    seed: int = 0,
    size: int = 3,
    max_attempts: int = 25,
) -> SelectQuery:
    """A random, *answerable* query of the requested shape.

    Candidate pattern sets are drawn until one has at least one solution
    over *graph* (checked with the reference evaluator), so workloads
    never contain vacuous queries.  Raises ValueError when the graph has
    no structure supporting the shape.
    """
    from repro.sparql.algebra import evaluate_bgp

    rng = random.Random(seed)
    last_error = "graph has no structure to support a %s query" % shape.value
    for _attempt in range(max_attempts):
        patterns = _draw_patterns(graph, shape, rng, size)
        if patterns is None:
            continue
        produced = classify_patterns(patterns)
        if shape is not QueryShape.SINGLE and produced is not shape:
            last_error = "generated a %s query instead of %s" % (
                produced.value,
                shape.value,
            )
            continue
        if not evaluate_bgp(graph, patterns):
            last_error = "generated %s query had no answers" % shape.value
            continue
        return _select_of(patterns)
    raise ValueError(last_error)


def _draw_patterns(
    graph: RDFGraph,
    shape: QueryShape,
    rng: random.Random,
    size: int,
) -> Optional[List[TriplePattern]]:
    if shape is QueryShape.STAR:
        return _star_patterns(graph, rng, size)
    if shape is QueryShape.LINEAR:
        return _linear_patterns(graph, rng, max(size - 1, 2))
    if shape is QueryShape.SNOWFLAKE:
        return _snowflake_patterns(graph, rng)
    if shape is QueryShape.COMPLEX:
        return _complex_patterns(graph, rng)
    if shape is QueryShape.SINGLE:
        triple = rng.choice(sorted(graph))
        return [TriplePattern(Variable("s"), triple.predicate, Variable("o"))]
    raise ValueError("cannot generate shape %r" % shape)


def generate_workload(
    graph: RDFGraph,
    shape_counts: Dict[QueryShape, int],
    seed: int = 0,
    skew: float = 2.0,
) -> QueryWorkload:
    """A workload with Zipf-skewed frequencies per generated query."""
    workload = QueryWorkload()
    rank = 1
    for shape, count in shape_counts.items():
        for index in range(count):
            query = generate_query(graph, shape, seed=seed + rank)
            workload.add(
                "%s_%d" % (shape.value, index),
                query,
                frequency=1.0 / (rank ** (skew / 2.0)),
            )
            rank += 1
    return workload
