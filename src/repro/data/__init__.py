"""Synthetic RDF data and SPARQL workload generators.

Stand-ins for the benchmark datasets the surveyed systems were evaluated
on: a LUBM-like university graph, a WatDiv-like e-commerce graph, and
shape-parameterized query workload generators (star / linear / snowflake /
complex) over arbitrary graphs.
"""

from repro.data.lubm import LubmGenerator, LUBM
from repro.data.watdiv import WatdivGenerator, WATDIV
from repro.data.sp2bench import Sp2bGenerator, SP2B
from repro.data.workload import (
    QueryWorkload,
    WeightedQuery,
    generate_query,
    generate_workload,
)

__all__ = [
    "LUBM",
    "LubmGenerator",
    "QueryWorkload",
    "SP2B",
    "Sp2bGenerator",
    "WATDIV",
    "WatdivGenerator",
    "WeightedQuery",
    "generate_query",
    "generate_workload",
]
