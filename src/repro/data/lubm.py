"""A LUBM-like university benchmark generator.

Mirrors the structure of the Lehigh University Benchmark (the dataset most
of the surveyed systems evaluate on): universities contain departments;
departments employ professors and enrol students; professors teach courses
and author publications; students take courses and have advisors.  The
generator is deterministic for a fixed seed and scales linearly with
``num_universities``.

A small RDFS TBox (subclass and domain/range axioms) is included so the
reasoner and the class-index systems (SparkRDF) have schema to work with.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Literal, URI
from repro.rdf.triple import Triple
from repro.rdf.vocab import RDF, RDFS

#: The LUBM-like vocabulary namespace.
LUBM = Namespace("http://repro.example.org/lubm#")


class LubmGenerator:
    """Deterministic LUBM-like data generator.

    Parameters scale the graph: each university gets ``departments_per_university``
    departments, each department ``professors_per_department`` professors and
    ``students_per_department`` students, and so on.
    """

    def __init__(
        self,
        num_universities: int = 2,
        departments_per_university: int = 3,
        professors_per_department: int = 4,
        students_per_department: int = 12,
        courses_per_department: int = 5,
        publications_per_professor: int = 2,
        seed: int = 42,
    ) -> None:
        self.num_universities = num_universities
        self.departments_per_university = departments_per_university
        self.professors_per_department = professors_per_department
        self.students_per_department = students_per_department
        self.courses_per_department = courses_per_department
        self.publications_per_professor = publications_per_professor
        self.seed = seed

    # ------------------------------------------------------------------

    def tbox(self) -> List[Triple]:
        """Schema triples: class hierarchy plus domain/range axioms."""
        triples = []
        subclass_pairs = [
            (LUBM.FullProfessor, LUBM.Professor),
            (LUBM.AssociateProfessor, LUBM.Professor),
            (LUBM.AssistantProfessor, LUBM.Professor),
            (LUBM.Professor, LUBM.Faculty),
            (LUBM.Faculty, LUBM.Person),
            (LUBM.GraduateStudent, LUBM.Student),
            (LUBM.UndergraduateStudent, LUBM.Student),
            (LUBM.Student, LUBM.Person),
            (LUBM.Department, LUBM.Organization),
            (LUBM.University, LUBM.Organization),
        ]
        for sub, sup in subclass_pairs:
            triples.append(Triple(sub, RDFS.subClassOf, sup))
        domain_range = [
            (LUBM.worksFor, LUBM.Faculty, LUBM.Department),
            (LUBM.memberOf, LUBM.Person, LUBM.Department),
            (LUBM.advisor, LUBM.Student, LUBM.Professor),
            (LUBM.takesCourse, LUBM.Student, LUBM.Course),
            (LUBM.teacherOf, LUBM.Faculty, LUBM.Course),
            (LUBM.publicationAuthor, LUBM.Publication, LUBM.Faculty),
            (LUBM.subOrganizationOf, LUBM.Organization, LUBM.Organization),
        ]
        for prop, domain, range_ in domain_range:
            triples.append(Triple(prop, RDFS.domain, domain))
            triples.append(Triple(prop, RDFS.range, range_))
        return triples

    def generate(self, include_tbox: bool = False) -> RDFGraph:
        """Build the instance graph (optionally with the TBox)."""
        rng = random.Random(self.seed)
        graph = RDFGraph()
        if include_tbox:
            graph.add_all(self.tbox())

        professor_kinds = (
            LUBM.FullProfessor,
            LUBM.AssociateProfessor,
            LUBM.AssistantProfessor,
        )

        for u in range(self.num_universities):
            university = LUBM["University%d" % u]
            graph.add(Triple(university, RDF.type, LUBM.University))
            graph.add(
                Triple(university, LUBM.name, Literal("University %d" % u))
            )
            for d in range(self.departments_per_university):
                department = LUBM["Department%d_%d" % (u, d)]
                graph.add(Triple(department, RDF.type, LUBM.Department))
                graph.add(
                    Triple(department, LUBM.subOrganizationOf, university)
                )
                graph.add(
                    Triple(
                        department,
                        LUBM.name,
                        Literal("Department %d of University %d" % (d, u)),
                    )
                )

                courses = []
                for c in range(self.courses_per_department):
                    course = LUBM["Course%d_%d_%d" % (u, d, c)]
                    graph.add(Triple(course, RDF.type, LUBM.Course))
                    graph.add(
                        Triple(course, LUBM.name, Literal("Course %d" % c))
                    )
                    courses.append(course)

                professors = []
                for p in range(self.professors_per_department):
                    professor = LUBM["Professor%d_%d_%d" % (u, d, p)]
                    kind = professor_kinds[p % len(professor_kinds)]
                    graph.add(Triple(professor, RDF.type, kind))
                    graph.add(Triple(professor, LUBM.worksFor, department))
                    graph.add(
                        Triple(
                            professor,
                            LUBM.name,
                            Literal("Professor %d.%d.%d" % (u, d, p)),
                        )
                    )
                    graph.add(
                        Triple(
                            professor,
                            LUBM.emailAddress,
                            Literal("prof%d_%d_%d@uni%d.edu" % (u, d, p, u)),
                        )
                    )
                    taught = rng.sample(
                        courses, k=min(2, len(courses))
                    )
                    for course in taught:
                        graph.add(Triple(professor, LUBM.teacherOf, course))
                    for pub in range(self.publications_per_professor):
                        publication = LUBM[
                            "Publication%d_%d_%d_%d" % (u, d, p, pub)
                        ]
                        graph.add(
                            Triple(publication, RDF.type, LUBM.Publication)
                        )
                        graph.add(
                            Triple(
                                publication, LUBM.publicationAuthor, professor
                            )
                        )
                    professors.append(professor)

                for s in range(self.students_per_department):
                    student = LUBM["Student%d_%d_%d" % (u, d, s)]
                    graduate = rng.random() < 0.3
                    kind = (
                        LUBM.GraduateStudent
                        if graduate
                        else LUBM.UndergraduateStudent
                    )
                    graph.add(Triple(student, RDF.type, kind))
                    graph.add(Triple(student, LUBM.memberOf, department))
                    graph.add(
                        Triple(
                            student,
                            LUBM.name,
                            Literal("Student %d.%d.%d" % (u, d, s)),
                        )
                    )
                    graph.add(
                        Triple(
                            student,
                            LUBM.age,
                            Literal(18 + rng.randrange(12)),
                        )
                    )
                    if graduate and professors:
                        graph.add(
                            Triple(
                                student, LUBM.advisor, rng.choice(professors)
                            )
                        )
                    for course in rng.sample(
                        courses, k=min(3, len(courses))
                    ):
                        graph.add(Triple(student, LUBM.takesCourse, course))
        return graph

    # ------------------------------------------------------------------
    # Canonical query texts (one per shape family)
    # ------------------------------------------------------------------

    @staticmethod
    def query_star() -> str:
        """Star: all patterns join on the subject ?s (graduate students)."""
        return """
        PREFIX lubm: <http://repro.example.org/lubm#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?s ?d ?a WHERE {
          ?s rdf:type lubm:GraduateStudent .
          ?s lubm:memberOf ?d .
          ?s lubm:age ?a .
        }
        """

    @staticmethod
    def query_linear() -> str:
        """Linear: student -> advisor -> department -> university chain."""
        return """
        PREFIX lubm: <http://repro.example.org/lubm#>
        SELECT ?s ?p ?dep ?uni WHERE {
          ?s lubm:advisor ?p .
          ?p lubm:worksFor ?dep .
          ?dep lubm:subOrganizationOf ?uni .
        }
        """

    @staticmethod
    def query_snowflake() -> str:
        """Snowflake: a student star and a professor star linked by advisor."""
        return """
        PREFIX lubm: <http://repro.example.org/lubm#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?s ?d ?p ?c WHERE {
          ?s rdf:type lubm:GraduateStudent .
          ?s lubm:memberOf ?d .
          ?s lubm:advisor ?p .
          ?p lubm:worksFor ?d2 .
          ?p lubm:teacherOf ?c .
        }
        """

    @staticmethod
    def query_complex() -> str:
        """Complex: object-object join (same course taken and taught)."""
        return """
        PREFIX lubm: <http://repro.example.org/lubm#>
        SELECT ?s ?p ?c WHERE {
          ?s lubm:takesCourse ?c .
          ?p lubm:teacherOf ?c .
          ?s lubm:advisor ?p .
        }
        """

    @staticmethod
    def query_filter() -> str:
        """BGP+ example with FILTER and ORDER BY."""
        return """
        PREFIX lubm: <http://repro.example.org/lubm#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?s ?a WHERE {
          ?s rdf:type lubm:UndergraduateStudent .
          ?s lubm:age ?a .
          FILTER(?a >= 25)
        } ORDER BY DESC(?a) LIMIT 20
        """

    @staticmethod
    def query_optional() -> str:
        """BGP+ example with OPTIONAL (students without advisors kept)."""
        return """
        PREFIX lubm: <http://repro.example.org/lubm#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?s ?p WHERE {
          ?s lubm:memberOf ?d .
          OPTIONAL { ?s lubm:advisor ?p }
        }
        """

    @classmethod
    def all_queries(cls) -> dict:
        """Name -> SPARQL text for the full canonical workload."""
        return {
            "star": cls.query_star(),
            "linear": cls.query_linear(),
            "snowflake": cls.query_snowflake(),
            "complex": cls.query_complex(),
            "filter": cls.query_filter(),
            "optional": cls.query_optional(),
        }
