"""A WatDiv-like e-commerce benchmark generator.

WatDiv (Waterloo SPARQL Diversity Test Suite) stresses engines with
structurally diverse queries over an e-commerce graph of users, products,
retailers and reviews.  This generator reproduces that schema shape: a
power-law-ish product popularity, user friendship edges (linear chains),
reviews connecting users to products, and retailer offers.
"""

from __future__ import annotations

import random
from typing import List

from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import Literal
from repro.rdf.triple import Triple
from repro.rdf.vocab import RDF

#: The WatDiv-like vocabulary namespace.
WATDIV = Namespace("http://repro.example.org/watdiv#")


class WatdivGenerator:
    """Deterministic WatDiv-like data generator."""

    def __init__(
        self,
        num_users: int = 60,
        num_products: int = 30,
        num_retailers: int = 6,
        reviews_per_user: int = 2,
        friends_per_user: int = 2,
        seed: int = 7,
    ) -> None:
        self.num_users = num_users
        self.num_products = num_products
        self.num_retailers = num_retailers
        self.reviews_per_user = reviews_per_user
        self.friends_per_user = friends_per_user
        self.seed = seed

    def generate(self) -> RDFGraph:
        rng = random.Random(self.seed)
        graph = RDFGraph()

        categories = [WATDIV["Category%d" % c] for c in range(5)]

        products = []
        for p in range(self.num_products):
            product = WATDIV["Product%d" % p]
            graph.add(Triple(product, RDF.type, WATDIV.Product))
            graph.add(
                Triple(product, WATDIV.caption, Literal("Product %d" % p))
            )
            graph.add(
                Triple(product, WATDIV.hasCategory, rng.choice(categories))
            )
            graph.add(
                Triple(product, WATDIV.price, Literal(5 + rng.randrange(95)))
            )
            products.append(product)

        retailers = []
        for r in range(self.num_retailers):
            retailer = WATDIV["Retailer%d" % r]
            graph.add(Triple(retailer, RDF.type, WATDIV.Retailer))
            graph.add(
                Triple(retailer, WATDIV.legalName, Literal("Retailer %d" % r))
            )
            # Each retailer offers a random subset of products.
            for product in rng.sample(products, k=max(1, len(products) // 3)):
                graph.add(Triple(retailer, WATDIV.offers, product))
            retailers.append(retailer)

        users = []
        for u in range(self.num_users):
            user = WATDIV["User%d" % u]
            graph.add(Triple(user, RDF.type, WATDIV.User))
            graph.add(Triple(user, WATDIV.name, Literal("User %d" % u)))
            graph.add(
                Triple(user, WATDIV.age, Literal(16 + rng.randrange(60)))
            )
            users.append(user)

        review_count = 0
        for u, user in enumerate(users):
            # Friendship edges, skewed toward nearby users (chains emerge).
            for _f in range(self.friends_per_user):
                friend = users[(u + 1 + rng.randrange(5)) % len(users)]
                if friend != user:
                    graph.add(Triple(user, WATDIV.friendOf, friend))
            # Reviews: power-law-ish product choice (popular head).
            for _r in range(self.reviews_per_user):
                index = min(
                    int(rng.paretovariate(1.2)) - 1, len(products) - 1
                )
                product = products[index]
                review = WATDIV["Review%d" % review_count]
                review_count += 1
                graph.add(Triple(review, RDF.type, WATDIV.Review))
                graph.add(Triple(review, WATDIV.reviewer, user))
                graph.add(Triple(review, WATDIV.reviewFor, product))
                graph.add(
                    Triple(review, WATDIV.rating, Literal(1 + rng.randrange(5)))
                )
                graph.add(Triple(user, WATDIV.purchased, product))
        return graph

    # ------------------------------------------------------------------
    # Canonical query templates (WatDiv's S/L/F/C families)
    # ------------------------------------------------------------------

    @staticmethod
    def query_star() -> str:
        """S-family: product star."""
        return """
        PREFIX wd: <http://repro.example.org/watdiv#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?p ?cat ?price WHERE {
          ?p rdf:type wd:Product .
          ?p wd:hasCategory ?cat .
          ?p wd:price ?price .
        }
        """

    @staticmethod
    def query_linear() -> str:
        """L-family: friend-of-friend purchase chain."""
        return """
        PREFIX wd: <http://repro.example.org/watdiv#>
        SELECT ?u ?f ?prod WHERE {
          ?u wd:friendOf ?f .
          ?f wd:purchased ?prod .
          ?prod wd:hasCategory ?cat .
        }
        """

    @staticmethod
    def query_snowflake() -> str:
        """F-family: review star joined to a product star."""
        return """
        PREFIX wd: <http://repro.example.org/watdiv#>
        PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
        SELECT ?r ?u ?prod ?price WHERE {
          ?r rdf:type wd:Review .
          ?r wd:reviewer ?u .
          ?r wd:reviewFor ?prod .
          ?prod wd:price ?price .
          ?prod wd:hasCategory ?cat .
        }
        """

    @staticmethod
    def query_complex() -> str:
        """C-family: users who purchased a product a retailer offers."""
        return """
        PREFIX wd: <http://repro.example.org/watdiv#>
        SELECT ?u ?ret ?prod WHERE {
          ?u wd:purchased ?prod .
          ?ret wd:offers ?prod .
          ?u wd:friendOf ?f .
        }
        """

    @staticmethod
    def query_bounded_predicate() -> str:
        """A single bounded-predicate pattern (vertical partitioning's case)."""
        return """
        PREFIX wd: <http://repro.example.org/watdiv#>
        SELECT ?u ?f WHERE { ?u wd:friendOf ?f }
        """

    @staticmethod
    def query_unbounded_predicate() -> str:
        """A variable-predicate pattern (vertical partitioning's bad case)."""
        return """
        PREFIX wd: <http://repro.example.org/watdiv#>
        SELECT ?p ?o WHERE { wd:User0 ?p ?o }
        """

    @classmethod
    def all_queries(cls) -> dict:
        return {
            "star": cls.query_star(),
            "linear": cls.query_linear(),
            "snowflake": cls.query_snowflake(),
            "complex": cls.query_complex(),
            "bounded_predicate": cls.query_bounded_predicate(),
            "unbounded_predicate": cls.query_unbounded_predicate(),
        }
