"""Advanced partitioning: the paper's main future-work direction.

Section V: "we argue that data partitioning is an essential part of
efficient query processing and that further research is required in the
area" -- citing semantic partitioning [27] and noting that "graph
partitioning does not focus on load balancing rather than on minimizing
the edge-cut between partitions.  GraphX has not been exploited yet
towards this direction."

This package implements both directions the paper points to:

* :mod:`repro.partitioning.semantic` -- class-driven placement: subjects
  of the same rdf:type land together, balanced by triple volume.
* :mod:`repro.partitioning.edgecut` -- streaming edge-cut minimization
  (linear deterministic greedy) for the graph-model engines.
* :mod:`repro.partitioning.store` -- a partitioned triple store that
  measures what the policies buy: locality of star queries, edge-cut,
  balance.
"""

from repro.partitioning.edgecut import (
    EdgeCutPartitioner,
    edge_cut_fraction,
    ldg_partition,
)
from repro.partitioning.semantic import SemanticPartitioner
from repro.partitioning.store import PartitionedTripleStore

__all__ = [
    "EdgeCutPartitioner",
    "PartitionedTripleStore",
    "SemanticPartitioner",
    "edge_cut_fraction",
    "ldg_partition",
]
