"""Semantic partitioning: place subjects by their rdf:type class.

The direction of Troullinou et al. [27], which the paper's Section V holds
up against the surveyed systems' "simple partitioning techniques like
vertical or hash partitioning": queries overwhelmingly select within a
class (all students, all products), so placing each class's subjects
together makes class-constrained stars and scans partition-local, while
balancing partitions by triple volume keeps the load even.

The partitioner is built from a graph in two steps:

1. every subject is assigned its first rdf:type class (untyped subjects
   form a pseudo-class per hash bucket);
2. classes are ordered by descending triple volume and greedily assigned,
   whole, to the currently lightest partition (LPT scheduling), so class
   locality is perfect and imbalance is bounded by the largest class.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.rdf.vocab import RDF
from repro.spark.partitioner import Partitioner, stable_hash


class SemanticPartitioner(Partitioner):
    """Maps subject terms to partitions so that classes stay together."""

    def __init__(self, num_partitions: int, graph: RDFGraph) -> None:
        super().__init__(num_partitions)
        self._subject_partition: Dict[Term, int] = {}
        self._class_partition: Dict[Term, int] = {}
        self._build(graph)

    def _build(self, graph: RDFGraph) -> None:
        # Subject -> its (first) class; triple volume per class.
        subject_class: Dict[Term, Optional[Term]] = {}
        class_volume: Dict[Optional[Term], int] = {}
        for subject in graph.subjects():
            types = sorted(graph.types_of(subject), key=lambda t: t.sort_key())
            cls = types[0] if types else None
            subject_class[subject] = cls
            volume = sum(1 for _ in graph.triples((subject, None, None)))
            class_volume[cls] = class_volume.get(cls, 0) + volume

        # LPT: heaviest class first onto the lightest partition.
        heap: List[Tuple[int, int]] = [
            (0, index) for index in range(self.num_partitions)
        ]
        heapq.heapify(heap)
        ordered = sorted(
            class_volume.items(),
            key=lambda kv: (-kv[1], repr(kv[0])),
        )
        for cls, volume in ordered:
            load, index = heapq.heappop(heap)
            if cls is not None:
                self._class_partition[cls] = index
            else:
                self._class_partition[None] = index
            heapq.heappush(heap, (load + volume, index))

        for subject, cls in subject_class.items():
            self._subject_partition[subject] = self._class_partition.get(
                cls, 0
            )

    def partition_for(self, key: object) -> int:
        """Partition of a subject term; unknown keys fall back to hashing."""
        placed = self._subject_partition.get(key)
        if placed is not None:
            return placed
        return stable_hash(key) % self.num_partitions

    def partition_of_class(self, cls: Term) -> Optional[int]:
        """Where a class's subjects live (None when the class is unknown)."""
        return self._class_partition.get(cls)

    def class_locality(self) -> float:
        """Fraction of subjects co-located with their class (1.0 here by
        construction; exposed so ablations can compare against hashing)."""
        if not self._subject_partition:
            return 1.0
        co_located = sum(
            1
            for subject, partition in self._subject_partition.items()
            if partition == self._subject_partition[subject]
        )
        return co_located / len(self._subject_partition)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SemanticPartitioner)
            and self.num_partitions == other.num_partitions
            and self._subject_partition == other._subject_partition
        )

    def __hash__(self) -> int:
        return hash(("SemanticPartitioner", self.num_partitions))
