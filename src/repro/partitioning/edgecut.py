"""Streaming edge-cut minimization for RDF graphs.

Section V: "Graph partitioning does not focus on load balancing rather
than on minimizing the edge-cut between partitions.  GraphX has not been
exploited yet towards this direction and could be an option to build such
algorithms."

Implemented here as Linear Deterministic Greedy (LDG) streaming vertex
partitioning: vertices arrive in (deterministic BFS) order and each goes
to the partition holding most of its already-placed neighbours, damped by
a capacity penalty so partitions stay balanced.  The resulting
:class:`EdgeCutPartitioner` plugs into anything that takes a
:class:`~repro.spark.partitioner.Partitioner` keyed by vertex.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term, URI
from repro.rdf.vocab import RDF
from repro.spark.partitioner import Partitioner, stable_hash


def _adjacency(
    edges: Iterable[Tuple[Term, Term]]
) -> Dict[Term, Set[Term]]:
    adjacency: Dict[Term, Set[Term]] = {}
    for src, dst in edges:
        if src == dst:
            adjacency.setdefault(src, set())
            continue
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set()).add(src)
    return adjacency


def ldg_partition(
    edges: Sequence[Tuple[Term, Term]],
    num_partitions: int,
    balance_slack: float = 1.1,
) -> Dict[Term, int]:
    """Linear deterministic greedy placement of vertices.

    Returns {vertex: partition}.  *balance_slack* caps each partition at
    ``slack * |V| / k`` vertices.
    """
    if num_partitions <= 0:
        raise ValueError("num_partitions must be positive")
    adjacency = _adjacency(edges)
    total = len(adjacency)
    if total == 0:
        return {}
    capacity = max(int(balance_slack * total / num_partitions), 1)

    placement: Dict[Term, int] = {}
    loads = [0] * num_partitions

    # Deterministic BFS order from sorted roots keeps neighbours adjacent
    # in the stream, which is where LDG earns its cut quality.
    visited: Set[Term] = set()
    order: List[Term] = []
    for root in sorted(adjacency, key=lambda t: t.sort_key()):
        if root in visited:
            continue
        queue = deque([root])
        visited.add(root)
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            for neighbour in sorted(
                adjacency[vertex], key=lambda t: t.sort_key()
            ):
                if neighbour not in visited:
                    visited.add(neighbour)
                    queue.append(neighbour)

    for vertex in order:
        best_index = 0
        best_score = float("-inf")
        for index in range(num_partitions):
            if loads[index] >= capacity:
                continue
            neighbours_here = sum(
                1
                for neighbour in adjacency[vertex]
                if placement.get(neighbour) == index
            )
            # LDG score: neighbour affinity damped by remaining capacity.
            score = neighbours_here * (1.0 - loads[index] / capacity)
            if score > best_score or (
                score == best_score and loads[index] < loads[best_index]
            ):
                best_score = score
                best_index = index
        placement[vertex] = best_index
        loads[best_index] += 1
    return placement


def edge_cut_fraction(
    edges: Sequence[Tuple[Term, Term]],
    placement: Dict[Term, int],
    num_partitions: int,
) -> float:
    """Fraction of edges whose endpoints land on different partitions."""
    if not edges:
        return 0.0
    cut = 0
    for src, dst in edges:
        src_partition = placement.get(
            src, stable_hash(src) % num_partitions
        )
        dst_partition = placement.get(
            dst, stable_hash(dst) % num_partitions
        )
        if src_partition != dst_partition:
            cut += 1
    return cut / len(edges)


class EdgeCutPartitioner(Partitioner):
    """A vertex partitioner minimizing edge-cut via streaming LDG.

    Built from an RDF graph's object-property edges (rdf:type and
    literal-valued triples do not create graph topology).
    """

    def __init__(
        self,
        num_partitions: int,
        graph: RDFGraph,
        balance_slack: float = 1.1,
    ) -> None:
        super().__init__(num_partitions)
        self.edges: List[Tuple[Term, Term]] = [
            (t.subject, t.object)
            for t in sorted(graph)
            if isinstance(t.object, URI) and t.predicate != RDF.type
        ]
        self._placement = ldg_partition(
            self.edges, num_partitions, balance_slack
        )

    def partition_for(self, key: object) -> int:
        placed = self._placement.get(key)
        if placed is not None:
            return placed
        return stable_hash(key) % self.num_partitions

    def cut_fraction(self) -> float:
        return edge_cut_fraction(
            self.edges, self._placement, self.num_partitions
        )

    def balance(self) -> float:
        """max partition size / ideal size (1.0 is perfect)."""
        if not self._placement:
            return 1.0
        counts = [0] * self.num_partitions
        for partition in self._placement.values():
            counts[partition] += 1
        ideal = len(self._placement) / self.num_partitions
        return max(counts) / ideal if ideal else 1.0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EdgeCutPartitioner)
            and self.num_partitions == other.num_partitions
            and self._placement == other._placement
        )

    def __hash__(self) -> int:
        return hash(("EdgeCutPartitioner", self.num_partitions))
