"""A partitioned triple store for comparing placement policies.

Holds the dataset under an arbitrary subject-keyed
:class:`~repro.spark.partitioner.Partitioner` and exposes the measurements
the paper's future-work argument turns on: how local are star queries,
how many subject-object joins stay on one partition (the edge-cut), and
how even is the load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term, URI
from repro.rdf.vocab import RDF
from repro.spark.context import SparkContext
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import RDD
from repro.sparql.ast import TriplePattern, Variable
from repro.systems.localmatch import match_bgp_local


class PartitionedTripleStore:
    """Triples placed by ``partitioner.partition_for(subject)``."""

    def __init__(
        self,
        ctx: SparkContext,
        graph: RDFGraph,
        partitioner: Partitioner,
    ) -> None:
        self.ctx = ctx
        self.partitioner = partitioner
        partitions: List[List[Tuple[Term, Term, Term]]] = [
            [] for _ in range(partitioner.num_partitions)
        ]
        for triple in sorted(graph):
            partitions[partitioner.partition_for(triple.subject)].append(
                triple.as_tuple()
            )
        self._partitions = partitions
        self.rdd: RDD = ctx.fromPartitions(partitions)

    # ------------------------------------------------------------------
    # Placement quality measurements
    # ------------------------------------------------------------------

    def balance(self) -> float:
        """max partition triples / ideal (1.0 is perfectly even)."""
        total = sum(len(p) for p in self._partitions)
        if total == 0:
            return 1.0
        ideal = total / len(self._partitions)
        return max(len(p) for p in self._partitions) / ideal

    def edge_cut_fraction(self) -> float:
        """Fraction of s->o links whose endpoints live apart.

        Each URI-object triple is a graph edge; it is cut when the object
        (as a subject) is stored on another partition.  This is the cost a
        linear query pays per hop.
        """
        total = cut = 0
        for index, partition in enumerate(self._partitions):
            for _s, predicate, obj in partition:
                if predicate == RDF.type or not isinstance(obj, URI):
                    continue
                total += 1
                if self.partitioner.partition_for(obj) != index:
                    cut += 1
        return cut / total if total else 0.0

    def class_scan_partitions(self, cls: Term) -> int:
        """How many partitions a scan of one class's instances touches."""
        touched = set()
        for index, partition in enumerate(self._partitions):
            for _s, predicate, obj in partition:
                if predicate == RDF.type and obj == cls:
                    touched.add(index)
                    break
        return len(touched)

    # ------------------------------------------------------------------
    # Local star evaluation (what subject placement buys)
    # ------------------------------------------------------------------

    def evaluate_star_locally(
        self, patterns: List[TriplePattern]
    ) -> RDD:
        """Evaluate a star BGP partition-locally (no shuffles).

        All patterns must share one subject variable; correctness relies
        only on subjects being placed whole, which any subject-keyed
        partitioner guarantees.
        """
        subjects = {p.subject for p in patterns}
        if len(subjects) != 1:
            raise ValueError("evaluate_star_locally needs a star BGP")
        local_patterns = [tuple(p.positions()) for p in patterns]

        def run(part: List[Tuple[Term, Term, Term]]) -> List[dict]:
            return match_bgp_local(local_patterns, part)

        return self.rdd.mapPartitions(run)

    def linear_hop_locality(self, predicate: Term) -> float:
        """Fraction of *predicate* hops resolvable without leaving the
        source partition -- the quantity edge-cut minimization improves."""
        total = local = 0
        for index, partition in enumerate(self._partitions):
            for _s, pred, obj in partition:
                if pred != predicate or not isinstance(obj, URI):
                    continue
                total += 1
                if self.partitioner.partition_for(obj) == index:
                    local += 1
        return local / total if total else 1.0
