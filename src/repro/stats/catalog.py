"""The statistics catalog: one pass over a graph, shared by every planner.

The paper's optimization claims all rest on statistics the systems gather
privately: SPARQLGX counts distinct subjects/predicates/objects to reorder
joins (Section IV-A1), S2RDF precomputes ExtVP selectivity factors for
predicate pairs (Section IV-A2), and the characteristic-set idea (Neumann &
Moerkotte) estimates star-shaped sub-queries from the predicate combinations
subjects actually exhibit.  A :class:`StatsCatalog` computes all three
families in one pass over a loaded :class:`~repro.rdf.graph.RDFGraph`:

* **totals** -- triple count and distinct subject/predicate/object counts;
* **per-predicate stats** -- triple count plus distinct subject and object
  counts for each predicate (the vertical-partition "file sizes");
* **characteristic sets** -- subjects grouped by the exact set of predicates
  they carry, with per-predicate occurrence totals, for star estimation;
* **pair selectivities** -- ExtVP-style SS/SO/OS factors: the fraction of a
  predicate's triples that survive a semi-join with another predicate on
  the given columns (only factors below 1.0 are stored, like S2RDF's
  ``sf_threshold`` keeps only the reductions worth materializing).

Determinism: keys are N3 strings, every collection is sorted before
serialization, floats are rounded to six places, and :meth:`to_json` uses
sorted-key JSON -- two builds over the same graph are byte-identical.

Versioning: the catalog carries the
:class:`~repro.evolution.versioned.VersionedGraph` version it was computed
at, so the query service can refresh it on every commit and key its plan
cache on the statistics generation actually used for planning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rdf.graph import RDFGraph

#: Pair-selectivity join kinds, following S2RDF's ExtVP table families:
#: ``ss`` compares subject(p1) with subject(p2), ``so`` subject(p1) with
#: object(p2), ``os`` object(p1) with subject(p2).
PAIR_KINDS = ("ss", "so", "os")

#: Pair selectivities are O(predicates^2); beyond this many predicates the
#: catalog skips them (the estimator then falls back to independence).
MAX_PAIR_PREDICATES = 64

#: Bumped when the serialized catalog layout changes incompatibly.
CATALOG_FORMAT_VERSION = 1


@dataclass(frozen=True)
class PredicateStats:
    """Counts for one predicate's vertical partition."""

    count: int
    distinct_subjects: int
    distinct_objects: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "count": self.count,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "PredicateStats":
        return cls(
            count=data["count"],
            distinct_subjects=data["distinct_subjects"],
            distinct_objects=data["distinct_objects"],
        )


@dataclass(frozen=True)
class CharacteristicSet:
    """One group of subjects sharing the exact same predicate set.

    *subjects* is how many subjects exhibit exactly these predicates;
    *occurrences* maps each predicate (N3) to the total number of triples
    those subjects carry for it, so ``occurrences[p] / subjects`` is the
    mean multiplicity used in star estimation.
    """

    predicates: Tuple[str, ...]
    subjects: int
    occurrences: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "predicates": list(self.predicates),
            "subjects": self.subjects,
            "occurrences": dict(sorted(self.occurrences.items())),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CharacteristicSet":
        return cls(
            predicates=tuple(data["predicates"]),
            subjects=int(data["subjects"]),
            occurrences={k: int(v) for k, v in data["occurrences"].items()},
        )


class StatsCatalog:
    """Graph statistics for cardinality estimation, built in one pass."""

    def __init__(
        self,
        version: int = 0,
        triples: int = 0,
        distinct_subjects: int = 0,
        distinct_predicates: int = 0,
        distinct_objects: int = 0,
        predicates: Optional[Dict[str, PredicateStats]] = None,
        characteristic_sets: Optional[List[CharacteristicSet]] = None,
        pair_selectivity: Optional[Dict[Tuple[str, str, str], float]] = None,
    ) -> None:
        self.version = version
        self.triples = triples
        self.distinct_subjects = distinct_subjects
        self.distinct_predicates = distinct_predicates
        self.distinct_objects = distinct_objects
        self.predicates: Dict[str, PredicateStats] = dict(predicates or {})
        self.characteristic_sets: List[CharacteristicSet] = list(
            characteristic_sets or []
        )
        #: (kind, p1 n3, p2 n3) -> fraction of p1's triples surviving the
        #: semi-join with p2 on the columns *kind* names; 1.0 when absent.
        self.pair_selectivity: Dict[Tuple[str, str, str], float] = dict(
            pair_selectivity or {}
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: RDFGraph, version: int = 0) -> "StatsCatalog":
        """Compute every statistic in a single pass over *graph*."""
        pred_count: Dict[str, int] = {}
        # Per predicate: subject -> multiplicity and object -> multiplicity
        # (multiplicities make the triple-level selectivity factors exact).
        pred_subjects: Dict[str, Dict[object, int]] = {}
        pred_objects: Dict[str, Dict[object, int]] = {}
        # Per subject: predicate n3 -> triple count (characteristic sets).
        subject_preds: Dict[object, Dict[str, int]] = {}

        for triple in graph:
            p = triple.predicate.n3()
            pred_count[p] = pred_count.get(p, 0) + 1
            subs = pred_subjects.setdefault(p, {})
            subs[triple.subject] = subs.get(triple.subject, 0) + 1
            objs = pred_objects.setdefault(p, {})
            objs[triple.object] = objs.get(triple.object, 0) + 1
            per_subject = subject_preds.setdefault(triple.subject, {})
            per_subject[p] = per_subject.get(p, 0) + 1

        predicates = {
            p: PredicateStats(
                count=pred_count[p],
                distinct_subjects=len(pred_subjects[p]),
                distinct_objects=len(pred_objects[p]),
            )
            for p in pred_count
        }

        # Characteristic sets: subjects grouped by their exact predicate set.
        grouped: Dict[Tuple[str, ...], Dict[str, object]] = {}
        for per_subject in subject_preds.values():
            key = tuple(sorted(per_subject))
            entry = grouped.setdefault(key, {"subjects": 0, "occ": {}})
            entry["subjects"] += 1
            occ: Dict[str, int] = entry["occ"]  # type: ignore[assignment]
            for p, count in per_subject.items():
                occ[p] = occ.get(p, 0) + count
        characteristic_sets = [
            CharacteristicSet(
                predicates=key,
                subjects=entry["subjects"],  # type: ignore[arg-type]
                occurrences=dict(entry["occ"]),  # type: ignore[arg-type]
            )
            for key, entry in sorted(grouped.items())
        ]

        pair_selectivity = cls._pair_selectivities(
            pred_count, pred_subjects, pred_objects
        )

        return cls(
            version=version,
            triples=len(graph),
            distinct_subjects=len(graph.subjects()),
            distinct_predicates=len(graph.predicates()),
            distinct_objects=len(graph.objects()),
            predicates=predicates,
            characteristic_sets=characteristic_sets,
            pair_selectivity=pair_selectivity,
        )

    @staticmethod
    def _pair_selectivities(
        pred_count: Dict[str, int],
        pred_subjects: Dict[str, Dict[object, int]],
        pred_objects: Dict[str, Dict[object, int]],
    ) -> Dict[Tuple[str, str, str], float]:
        """ExtVP factors: fraction of p1's triples joining p2 per kind."""
        if len(pred_count) > MAX_PAIR_PREDICATES:
            return {}
        out: Dict[Tuple[str, str, str], float] = {}
        names = sorted(pred_count)
        for p1 in names:
            for p2 in names:
                if p1 == p2:
                    continue
                for kind in PAIR_KINDS:
                    left = pred_subjects if kind in ("ss", "so") else pred_objects
                    right = pred_subjects if kind in ("ss", "os") else pred_objects
                    other = right[p2]
                    surviving = sum(
                        mult
                        for term, mult in left[p1].items()
                        if term in other
                    )
                    factor = surviving / pred_count[p1]
                    if factor < 1.0:
                        out[(kind, p1, p2)] = round(factor, 6)
        return out

    # ------------------------------------------------------------------
    # Estimation accessors
    # ------------------------------------------------------------------

    def predicate_count(self, predicate_n3: str) -> int:
        """Triples carrying this predicate (0 when absent)."""
        stats = self.predicates.get(predicate_n3)
        return stats.count if stats is not None else 0

    def predicate_stats(self, predicate_n3: str) -> Optional[PredicateStats]:
        return self.predicates.get(predicate_n3)

    def selectivity(self, kind: str, p1_n3: str, p2_n3: str) -> float:
        """Fraction of p1's triples surviving the *kind* semi-join with p2."""
        if kind not in PAIR_KINDS:
            raise ValueError("unknown pair kind %r" % kind)
        return self.pair_selectivity.get((kind, p1_n3, p2_n3), 1.0)

    def star_cardinality(self, predicate_n3s: List[str]) -> Optional[float]:
        """Characteristic-set estimate for a subject star over bound
        predicates: rows produced by joining the stars' vertical partitions
        on the shared subject.  ``None`` when no statistics apply (an
        unknown predicate or an empty catalog)."""
        wanted = sorted(set(predicate_n3s))
        if not wanted or not self.characteristic_sets:
            return None
        if any(p not in self.predicates for p in wanted):
            return None
        total = 0.0
        for cs in self.characteristic_sets:
            if not set(wanted) <= set(cs.predicates):
                continue
            rows = float(cs.subjects)
            for p in predicate_n3s:  # repeated predicates multiply again
                rows *= cs.occurrences[p] / cs.subjects
            total += rows
        return total

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready dict; every collection sorted for byte determinism."""
        return {
            "format": CATALOG_FORMAT_VERSION,
            "version": self.version,
            "totals": {
                "triples": self.triples,
                "distinct_subjects": self.distinct_subjects,
                "distinct_predicates": self.distinct_predicates,
                "distinct_objects": self.distinct_objects,
            },
            "predicates": {
                p: stats.to_dict()
                for p, stats in sorted(self.predicates.items())
            },
            "characteristic_sets": [
                cs.to_dict()
                for cs in sorted(
                    self.characteristic_sets, key=lambda c: c.predicates
                )
            ],
            "pair_selectivity": {
                "%s %s %s" % key: factor
                for key, factor in sorted(self.pair_selectivity.items())
            },
        }

    def to_json(self) -> str:
        return (
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "StatsCatalog":
        if payload.get("format") != CATALOG_FORMAT_VERSION:
            raise ValueError(
                "unsupported catalog format %r (expected %d)"
                % (payload.get("format"), CATALOG_FORMAT_VERSION)
            )
        totals = payload["totals"]
        pair_selectivity: Dict[Tuple[str, str, str], float] = {}
        for key, factor in payload["pair_selectivity"].items():
            kind, p1, p2 = key.split(" ")
            pair_selectivity[(kind, p1, p2)] = float(factor)
        return cls(
            version=int(payload["version"]),
            triples=int(totals["triples"]),
            distinct_subjects=int(totals["distinct_subjects"]),
            distinct_predicates=int(totals["distinct_predicates"]),
            distinct_objects=int(totals["distinct_objects"]),
            predicates={
                p: PredicateStats.from_dict(stats)
                for p, stats in payload["predicates"].items()
            },
            characteristic_sets=[
                CharacteristicSet.from_dict(cs)
                for cs in payload["characteristic_sets"]
            ],
            pair_selectivity=pair_selectivity,
        )

    @classmethod
    def from_json(cls, text: str) -> "StatsCatalog":
        return cls.from_payload(json.loads(text))

    def summary(self) -> Dict[str, int]:
        """The headline numbers (the ``stats`` CLI table)."""
        return {
            "version": self.version,
            "triples": self.triples,
            "distinct_subjects": self.distinct_subjects,
            "distinct_predicates": self.distinct_predicates,
            "distinct_objects": self.distinct_objects,
            "characteristic_sets": len(self.characteristic_sets),
            "selectivity_pairs": len(self.pair_selectivity),
        }

    def __repr__(self) -> str:
        return "StatsCatalog(version=%d, triples=%d, predicates=%d)" % (
            self.version,
            self.triples,
            len(self.predicates),
        )
