"""Shared graph statistics for cost-based query optimization.

One :class:`~repro.stats.catalog.StatsCatalog` per loaded graph replaces
the private counters the surveyed systems each keep for themselves
(SPARQLGX's distinct subject/predicate/object counts, S2RDF's ExtVP
selectivity factors): every engine, the optimizer, and the query service
read the same numbers, computed in one pass and serialized as
deterministic sorted-key JSON.
"""

from repro.stats.catalog import (
    CharacteristicSet,
    PredicateStats,
    StatsCatalog,
)

__all__ = ["CharacteristicSet", "PredicateStats", "StatsCatalog"]
