"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Print the regenerated Figure 1 taxonomy and Tables I/II.
``survey``
    Print the per-system survey report (Section IV, generated from the
    engine profiles).
``query DATA QUERY [--engine NAME]``
    Run a SPARQL query file (or literal) against an RDF file (N-Triples
    ``.nt`` or Turtle ``.ttl``) on a chosen engine; prints the solutions
    and the measured cost.
``assess DATA``
    Run the cross-system assessment matrix on an RDF file.
``generate {lubm,watdiv} PATH``
    Write a synthetic dataset to an N-Triples file.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.bench import BenchRun, format_table
from repro.core import (
    default_registry,
    render_table_i,
    render_table_ii,
    render_taxonomy,
)
from repro.core.survey import render_survey
from repro.data.lubm import LubmGenerator
from repro.data.watdiv import WatdivGenerator
from repro.rdf.graph import RDFGraph
from repro.rdf.ntriples import load_ntriples_file, save_ntriples_file
from repro.rdf.turtle import parse_turtle
from repro.spark.context import SparkContext
from repro.sparql.results import SolutionSet
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine


def load_graph(path: str) -> RDFGraph:
    """Load an RDF file by extension (.nt or .ttl)."""
    if path.endswith((".ttl", ".turtle")):
        with open(path, "r", encoding="utf-8") as handle:
            return parse_turtle(handle.read())
    return load_ntriples_file(path)


def _engine_class(name: str):
    if name.lower() == "naive":
        return NaiveEngine
    registry = default_registry()
    try:
        return registry.by_name(name)
    except KeyError:
        choices = ["Naive"] + [c.profile.name for c in registry]
        raise SystemExit(
            "unknown engine %r; choose one of: %s" % (name, ", ".join(choices))
        )


def cmd_tables(_args) -> int:
    print(render_taxonomy())
    print()
    print(render_table_i())
    print()
    print(render_table_ii())
    return 0


def cmd_survey(_args) -> int:
    print(render_survey())
    return 0


def cmd_claims(_args) -> int:
    from repro.core.claims import build_default_assessment

    assessment = build_default_assessment()
    report = assessment.report()
    print(report)
    return 0 if "DOES NOT HOLD" not in report else 1


def cmd_query(args) -> int:
    graph = load_graph(args.data)
    if os.path.exists(args.query):
        with open(args.query, "r", encoding="utf-8") as handle:
            query_text = handle.read()
    else:
        query_text = args.query
    sc = SparkContext(default_parallelism=args.parallelism)
    engine = _engine_class(args.engine)(sc)
    engine.load(graph)
    before = sc.metrics.snapshot()
    result = engine.execute(query_text)
    cost = sc.metrics.snapshot() - before
    if isinstance(result, SolutionSet):
        headers = ["?" + v for v in result.variables]
        print(format_table(headers, result.to_table()))
        print("%d solution(s)" % len(result))
    elif isinstance(result, bool):
        print("yes" if result else "no")
    else:  # CONSTRUCT / DESCRIBE -> a graph
        for triple in result.to_list():
            print(triple.n3())
        print("%d triple(s)" % len(result))
    print(
        "cost: scanned=%d shuffled=%d remote=%d comparisons=%d"
        % (
            cost.records_scanned,
            cost.shuffle_records,
            cost.shuffle_remote_records,
            cost.join_comparisons,
        )
    )
    return 0


def cmd_assess(args) -> int:
    graph = load_graph(args.data)
    queries = {
        "star": LubmGenerator.query_star(),
        "linear": LubmGenerator.query_linear(),
        "snowflake": LubmGenerator.query_snowflake(),
        "complex": LubmGenerator.query_complex(),
    }
    bench = BenchRun(graph, parallelism=args.parallelism)
    results = bench.run((NaiveEngine,) + ALL_ENGINE_CLASSES, queries)
    rows = [
        [
            r.engine,
            r.query,
            r.rows,
            "ok" if r.correct else ("-" if r.correct is None else "WRONG"),
            r.cost_summary()["records_scanned"],
            r.cost_summary()["shuffle_records"],
        ]
        for r in results
    ]
    print(
        format_table(
            ["engine", "query", "rows", "answers", "scanned", "shuffled"],
            rows,
        )
    )
    return 1 if bench.incorrect() else 0


def cmd_generate(args) -> int:
    if args.kind == "lubm":
        graph = LubmGenerator(
            num_universities=args.scale, seed=args.seed
        ).generate()
    else:
        graph = WatdivGenerator(
            num_users=30 * args.scale,
            num_products=15 * args.scale,
            seed=args.seed,
        ).generate()
    written = save_ntriples_file(args.path, graph)
    print("wrote %d triples to %s" % (written, args.path))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RDF query answering on a Spark-like substrate "
        "(ICDE 2018 review & assessment, reproduced).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Figure 1 and Tables I/II")
    sub.add_parser("survey", help="print the per-system survey report")
    sub.add_parser(
        "claims", help="check every performance claim of the paper"
    )

    query = sub.add_parser("query", help="run a SPARQL query on a data file")
    query.add_argument("data", help="RDF file (.nt or .ttl)")
    query.add_argument("query", help="SPARQL file or literal query text")
    query.add_argument(
        "--engine", default="SPARQLGX", help="engine name (default SPARQLGX)"
    )
    query.add_argument("--parallelism", type=int, default=4)

    assess = sub.add_parser(
        "assess", help="run the cross-system assessment on a data file"
    )
    assess.add_argument("data", help="RDF file (.nt or .ttl)")
    assess.add_argument("--parallelism", type=int, default=4)

    generate = sub.add_parser(
        "generate", help="write a synthetic dataset to N-Triples"
    )
    generate.add_argument("kind", choices=["lubm", "watdiv"])
    generate.add_argument("path")
    generate.add_argument("--scale", type=int, default=1)
    generate.add_argument("--seed", type=int, default=42)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": cmd_tables,
        "survey": cmd_survey,
        "claims": cmd_claims,
        "query": cmd_query,
        "assess": cmd_assess,
        "generate": cmd_generate,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
