"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``
    Print the regenerated Figure 1 taxonomy and Tables I/II.
``survey``
    Print the per-system survey report (Section IV, generated from the
    engine profiles).
``query DATA QUERY [--engine NAME] [--trace FILE]``
    Run a SPARQL query file (or literal) against an RDF file (N-Triples
    ``.nt`` or Turtle ``.ttl``) on a chosen engine; prints the solutions
    and the measured cost.  ``--trace FILE`` writes the execution trace
    (per-span metric deltas) as JSON.
``explain DATA QUERY [--engine NAME ...]``
    Print a per-operator cost tree for the query on each engine (three
    engines with distinct cost profiles by default).
``assess DATA [--trace FILE]``
    Run the cross-system assessment matrix on an RDF file.
``generate {lubm,watdiv} PATH``
    Write a synthetic dataset to an N-Triples file.
``serve DATA [--engine NAME] [--pool N] [--input FILE]``
    Run the query service as a JSON-lines request loop (stdin by
    default): plan/result caching, graph-version commits, per-query
    cost-unit deadlines.  See docs/SERVER.md for the protocol.
``loadtest DATA [--clients N] [--seed N] [--report FILE] [--smoke]``
    Drive the service with the closed-loop load generator and print the
    byte-reproducible throughput/latency/cache report.
``stats DATA [--json FILE]``
    Compute the statistics catalog (per-predicate counts, characteristic
    sets, pair selectivities) for an RDF file; print a summary and
    optionally write the deterministic catalog JSON.
``lint QUERY... [--data FILE | --stats FILE] [--deadline UNITS] [--json]``
    Statically analyze SPARQL queries without executing them
    (:mod:`repro.analysis.query`): cartesian products, never-bound
    projections, unsatisfiable filters, and -- when statistics are
    supplied via ``--data`` or ``--stats`` -- unknown predicates,
    cost-over-deadline, and broadcast-threshold misuse.
    ``lint --closures PATH...`` instead treats the positional arguments
    as Python sources and runs the closure analyzer (same as
    ``analyze``).
``analyze PATH... [--json]``
    Statically analyze Python sources for worker-boundary closure
    violations (:mod:`repro.analysis.closures`, rules CL000..CL007):
    driver-object capture, shared-state mutation inside worker code,
    accumulator reads in transformations, broadcast mutation, unpickled
    exception types, loop-variable capture, global writes, and calls
    into guilty helpers.  Exit 0 clean / 4 warnings / 5 errors.
``views DATA {build,list,stats} [--view-threshold F] [--json FILE]``
    Materialize the ExtVP view catalog for an RDF file (S2RDF semi-join
    reduction tables, selected by selectivity threshold): print its
    headline numbers (``build``/``stats``), the per-view table
    (``list``), and optionally write the deterministic catalog JSON.
    See docs/VIEWS.md.
``route DATA QUERY [--engine NAME ...] [--json]``
    Show where the adaptive routing policy (:mod:`repro.routing`) would
    dispatch a query without executing it: its shape, the priced bid of
    every fragment-eligible candidate engine, and the exclusions.  See
    docs/ROUTING.md.
``validate DATA SHAPES [--remote] [--json] [--report FILE]``
    Validate an RDF file against a SHACL-lite shapes file (JSON): the
    shape set compiles to SPARQL target/constraint queries, each
    submitted to the query service as its own billed request, folded
    into a byte-deterministic conformance report.  ``--remote`` runs
    remote-first: harvest the shape-relevant subgraph through the wire
    protocol, validate the local copy.  Exit 0 when the data conforms,
    1 when it does not.  See docs/SHACL.md.
``harvest DATA QUERY [--page-size N] [--output FILE] [--json]``
    Page a CONSTRUCT query out of an in-process wire endpoint (LIMIT/
    OFFSET over the protocol's totally-ordered graph wire form) into a
    local version-tagged subgraph; print the triples or the harvest
    record.  See docs/FEDERATION.md.

``serve`` and ``loadtest`` accept ``--route`` (plus ``--route-engines``)
to replace the fixed ``--engine`` with the adaptive per-shape ensemble:
each admitted query is dispatched to the engine the calibrated policy
prices cheapest, and observed cost units feed the calibration back.
``explain`` accepts the same pair to prepend the ``routing:`` decision
block, and ``--shapes FILE`` to prepend the ``shacl:`` compiled-query
inventory.  ``loadtest --shape-mix`` swaps the uniform workload for the
shape-stratified one (plus per-tenant shape emphasis);
``loadtest --workload {uniform,shape,shacl,federated}`` also offers the
validation fan-out and paged-harvest workload families.

``query``, ``explain``, ``serve`` and ``loadtest`` accept ``--optimize``
(plus ``--optimizer-mode`` and ``--broadcast-threshold``) to run BGPs
through the shared cost-based optimizer instead of each engine's native
join order, and ``--views`` (plus ``--view-threshold``) on top to
substitute materialized ExtVP views into the plans.  ``serve`` and
``loadtest`` run the same static linter at admission (disable with
``--no-lint``).

``query``, ``assess``, ``serve`` and ``loadtest`` accept ``--backend
{inprocess,parallel}`` and ``--workers N`` to pick the executor backend
(docs/PARALLEL.md): ``parallel`` runs partition tasks on a forked worker
pool while keeping every result byte-identical to the in-process
oracle.  The same commands (plus ``explain``) accept
``--verify-closures`` to analyze every closure in a job's lineage at
submission time (rules CL000..CL007, docs/ANALYSIS.md); a violating
closure aborts the run with exit code 4.

Exit codes (the full table lives in README.md): 0 success / clean lint
/ conformant ``validate``; 1 failed ``assess``/``claims`` checks or a
non-conformant ``validate``; 2 unusable inputs (bad ``--faults`` spec,
unknown engine, unreadable data/query/stats/shapes file); 3 when a
fault schedule exhausts ``--max-task-attempts``; 4 lint/``analyze``
found warnings only, or ``--verify-closures`` rejected a submitted
closure; 5 lint/``analyze`` found errors.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.analysis.closures import ClosureAnalysisError
from repro.bench import BenchRun, format_table
from repro.core import (
    render_table_i,
    render_table_ii,
    render_taxonomy,
)
from repro.core.survey import render_survey
from repro.data.lubm import LubmGenerator
from repro.data.watdiv import WatdivGenerator
from repro.rdf.ntriples import save_ntriples_file
from repro.runtime import (
    RuntimeConfigError,
    UnknownEngineError,
    build_context,
    load_graph,
    resolve_engine,
)
from repro.shacl.shapes import ShaclError
from repro.spark.faults import FaultSpecError, TaskFailedError
from repro.spark.parallel import BackendConfigError
from repro.sparql.results import SolutionSet
from repro.systems import ALL_ENGINE_CLASSES, NaiveEngine


def _engine_class(name: str):
    """Engine class for the legacy subcommands (SystemExit on junk)."""
    try:
        return resolve_engine(name)
    except UnknownEngineError as exc:
        raise SystemExit(str(exc))


def cmd_tables(_args) -> int:
    print(render_taxonomy())
    print()
    print(render_table_i())
    print()
    print(render_table_ii())
    return 0


def cmd_survey(_args) -> int:
    print(render_survey())
    return 0


def cmd_claims(_args) -> int:
    from repro.core.claims import build_default_assessment

    assessment = build_default_assessment()
    report = assessment.report()
    print(report)
    return 0 if "DOES NOT HOLD" not in report else 1


def _read_query_arg(query_arg: str) -> str:
    if os.path.exists(query_arg):
        with open(query_arg, "r", encoding="utf-8") as handle:
            return handle.read()
    return query_arg


def cmd_query(args) -> int:
    graph = load_graph(args.data)
    query_text = _read_query_arg(args.query)
    sc = build_context(
        parallelism=args.parallelism,
        faults=args.faults,
        max_task_attempts=args.max_task_attempts,
        speculation=args.speculation,
        backend=args.backend,
        workers=args.workers,
        verify_closures=args.verify_closures,
    )
    engine = _engine_class(args.engine)(sc)
    engine.load(graph)
    optimizer = _build_optimizer(args, graph)
    if optimizer is not None:
        engine.set_optimizer(optimizer)
    if args.trace:
        sc.tracer.clear().enable()
    before = sc.metrics.snapshot()
    result = engine.execute(query_text)
    cost = sc.metrics.snapshot() - before
    if args.trace:
        sc.tracer.disable()
        _write_query_trace(args.trace, engine.profile.name, cost, sc.tracer.roots)
    if isinstance(result, SolutionSet):
        headers = ["?" + v for v in result.variables]
        print(format_table(headers, result.to_table()))
        print("%d solution(s)" % len(result))
    elif isinstance(result, bool):
        print("yes" if result else "no")
    else:  # CONSTRUCT / DESCRIBE -> a graph
        for triple in result.to_list():
            print(triple.n3())
        print("%d triple(s)" % len(result))
    print(
        "cost: scanned=%d shuffled=%d remote=%d comparisons=%d"
        % (
            cost.records_scanned,
            cost.shuffle_records,
            cost.shuffle_remote_records,
            cost.join_comparisons,
        )
    )
    if sc.faults is not None:
        total = sc.metrics.snapshot()
        print(
            "recovery: failed=%d retried=%d recomputed=%d speculative=%d"
            % (
                total.tasks_failed,
                total.tasks_retried,
                total.partitions_recomputed,
                total.speculative_launches,
            )
        )
    if args.trace:
        print("trace written to %s" % args.trace)
    return 0


def _write_query_trace(path, engine_name, cost, spans) -> None:
    from repro.explain import run_record, write_trace_file

    write_trace_file(path, [run_record(engine_name, "query", cost, spans)])


def _check_views_flags(args) -> None:
    """--views is an optimizer substitution; reject it without --optimize."""
    if getattr(args, "views", False) and not getattr(args, "optimize", False):
        raise RuntimeConfigError("--views requires --optimize")


def _check_route_flags(args) -> None:
    """--route-engines narrows the routed pool; reject it without --route."""
    if getattr(args, "route_engines", None) and not getattr(
        args, "route", False
    ):
        raise RuntimeConfigError("--route-engines requires --route")


def _build_optimizer(args, graph):
    """The shared cost-based optimizer, or None when --optimize is off."""
    _check_views_flags(args)
    if not getattr(args, "optimize", False):
        return None
    from repro.optimizer import Optimizer

    return Optimizer.for_graph(
        graph,
        mode=args.optimizer_mode,
        broadcast_threshold=args.broadcast_threshold,
        views=args.views,
        view_threshold=args.view_threshold,
    )


def cmd_explain(args) -> int:
    from repro.explain import DEFAULT_EXPLAIN_ENGINES, explain

    _check_views_flags(args)
    _check_route_flags(args)
    graph = load_graph(args.data)
    query_text = _read_query_arg(args.query)
    shapes = _load_shapes_arg(args.shapes) if args.shapes else None
    engines = [
        _engine_class(name)
        for name in (args.engine or list(DEFAULT_EXPLAIN_ENGINES))
    ]
    print(
        explain(
            graph,
            query_text,
            engines,
            parallelism=args.parallelism,
            optimize=args.optimize,
            optimizer_mode=args.optimizer_mode,
            broadcast_threshold=args.broadcast_threshold,
            views=args.views,
            view_threshold=args.view_threshold,
            route=args.route,
            route_engines=args.route_engines or None,
            shapes=shapes,
            verify_closures=args.verify_closures,
        )
    )
    return 0


def _load_shapes_arg(path: str):
    """Load a shapes file (ShaclError -> exit 2, like other bad inputs)."""
    from repro.shacl import load_shapes_file

    return load_shapes_file(path)


def cmd_validate(args) -> int:
    from repro.shacl import ShaclValidator, ServiceExecutor

    shapes = _load_shapes_arg(args.shapes)
    if args.remote:
        from repro.federation import WireEndpoint, validate_remote_first

        endpoint = WireEndpoint(_build_service(args))
        report, subgraph = validate_remote_first(
            endpoint, shapes, page_size=args.page_size
        )
    else:
        service = _build_service(args)
        report = ShaclValidator(ServiceExecutor(service)).validate(shapes)
    if args.json:
        print(report.to_json(), end="")
    else:
        print(report.render())
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print("report written to %s" % args.report)
    return 0 if report.conforms else 1


def cmd_harvest(args) -> int:
    from repro.federation import HarvestError, Subgraph, WireEndpoint

    endpoint = WireEndpoint(_build_service(args))
    subgraph = Subgraph(endpoint, page_size=args.page_size)
    query_text = _read_query_arg(args.query)
    try:
        record = subgraph.harvest(query_text, id="cli")
    except ValueError as exc:
        raise RuntimeConfigError(str(exc))
    except HarvestError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(record.to_payload(), indent=2, sort_keys=True))
    else:
        print(
            "harvested %d triple(s) (%d new) in %d page(s) of %d "
            "at remote version %d (%d remote unit(s))"
            % (
                record.triples,
                record.new_triples,
                record.pages,
                subgraph.page_size,
                record.remote_version,
                record.units,
            )
        )
    if args.output:
        written = save_ntriples_file(args.output, subgraph.head())
        print("wrote %d triple(s) to %s" % (written, args.output))
    elif not args.json:
        for line in sorted(t.n3() for t in subgraph.head().to_list()):
            print(line)
    return 0


def cmd_route(args) -> int:
    import json

    from repro.routing import RoutingPolicy

    graph = load_graph(args.data)
    query_text = _read_query_arg(args.query)
    policy = RoutingPolicy.for_graph(
        graph,
        engines=args.engine or None,
        mode=args.optimizer_mode,
        broadcast_threshold=args.broadcast_threshold,
    )
    decision = policy.decide(query_text)
    if args.json:
        print(json.dumps(decision.to_payload(), indent=2, sort_keys=True))
    else:
        print(decision.render())
    return 0


def cmd_stats(args) -> int:
    from repro.stats import StatsCatalog

    graph = load_graph(args.data)
    catalog = StatsCatalog.from_graph(graph)
    summary = catalog.summary()
    rows = [[name, summary[name]] for name in sorted(summary)]
    print(format_table(["statistic", "value"], rows))
    top = sorted(
        catalog.predicates.items(), key=lambda item: (-item[1].count, item[0])
    )[:10]
    print()
    print(
        format_table(
            ["predicate", "count", "distinct subj", "distinct obj"],
            [
                [n3, stats.count, stats.distinct_subjects, stats.distinct_objects]
                for n3, stats in top
            ],
        )
    )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(catalog.to_json())
        print("catalog written to %s" % args.json)
    return 0


def cmd_assess(args) -> int:
    graph = load_graph(args.data)
    queries = {
        "star": LubmGenerator.query_star(),
        "linear": LubmGenerator.query_linear(),
        "snowflake": LubmGenerator.query_snowflake(),
        "complex": LubmGenerator.query_complex(),
    }
    bench = BenchRun(
        graph,
        parallelism=args.parallelism,
        faults=args.faults,
        max_task_attempts=args.max_task_attempts,
        speculation=args.speculation,
        backend=args.backend,
        workers=args.workers,
        verify_closures=args.verify_closures,
    )
    results = bench.run(
        (NaiveEngine,) + ALL_ENGINE_CLASSES, queries, trace=bool(args.trace)
    )
    if args.trace:
        from repro.explain import run_record, write_trace_file

        write_trace_file(
            args.trace,
            [
                run_record(r.engine, r.query, r.metrics, r.trace or [])
                for r in results
            ],
        )
        print("trace written to %s" % args.trace)
    rows = [
        [
            r.engine,
            r.query,
            r.rows,
            "ok" if r.correct else ("-" if r.correct is None else "WRONG"),
            r.cost_summary()["records_scanned"],
            r.cost_summary()["shuffle_records"],
        ]
        for r in results
    ]
    print(
        format_table(
            ["engine", "query", "rows", "answers", "scanned", "shuffled"],
            rows,
        )
    )
    return 1 if bench.incorrect() else 0


def cmd_analyze(args) -> int:
    from repro.analysis.closures import check_paths

    for path in args.paths:
        if not os.path.exists(path):
            print("error: cannot read path: %s" % path, file=sys.stderr)
            return 2
    report = check_paths(args.paths)
    if args.json:
        sys.stdout.write(report.to_json())
    else:
        print(report.render())
    return report.exit_code()


def cmd_lint(args) -> int:
    from repro.analysis import lint_text, merge_reports
    from repro.stats import StatsCatalog

    if args.closures:
        if args.data or args.stats or args.deadline is not None:
            print(
                "error: --closures takes Python paths only (no --data, "
                "--stats, or --deadline)",
                file=sys.stderr,
            )
            return 2
        args.paths = args.queries
        return cmd_analyze(args)
    catalog = None
    if args.data and args.stats:
        print(
            "error: --data and --stats are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.data:
        catalog = StatsCatalog.from_graph(load_graph(args.data))
    elif args.stats:
        try:
            with open(args.stats, "r", encoding="utf-8") as handle:
                catalog = StatsCatalog.from_json(handle.read())
        except (OSError, ValueError, KeyError) as exc:
            print(
                "error: cannot load stats catalog: %s" % exc, file=sys.stderr
            )
            return 2
    reports = []
    for position, query_arg in enumerate(args.queries):
        if os.path.exists(query_arg):
            subject, text = query_arg, _read_query_arg(query_arg)
        elif query_arg.endswith((".rq", ".sparql")):
            # A query *file* that is missing is an input error, not a
            # parse error in a literal query.
            print(
                "error: cannot read query file: %s" % query_arg,
                file=sys.stderr,
            )
            return 2
        else:
            subject, text = "arg%d" % (position + 1), query_arg
        reports.append(
            lint_text(
                text,
                subject=subject,
                catalog=catalog,
                deadline=args.deadline,
                broadcast_threshold=args.broadcast_threshold,
                mode=args.optimizer_mode,
            )
        )
    merged = merge_reports("query-lint", reports)
    if args.json:
        sys.stdout.write(merged.to_json())
    else:
        print(merged.render())
    return merged.exit_code()


def _build_service(args):
    """Construct the QueryService every serving subcommand shares."""
    from repro.server import QueryService

    _check_views_flags(args)
    _check_route_flags(args)
    graph = load_graph(args.data)
    return QueryService(
        graph,
        engine=args.engine,
        route=args.route,
        route_engines=args.route_engines or None,
        pool_size=args.pool,
        parallelism=args.parallelism,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        enable_plan_cache=not args.no_plan_cache,
        enable_result_cache=not args.no_result_cache,
        faults=args.faults,
        max_task_attempts=args.max_task_attempts,
        speculation=args.speculation,
        optimize=args.optimize,
        optimizer_mode=args.optimizer_mode,
        broadcast_threshold=args.broadcast_threshold,
        lint_admission=not args.no_lint,
        enable_views=args.views,
        view_threshold=args.view_threshold,
        backend=args.backend,
        workers=args.workers,
        verify_closures=args.verify_closures,
    )


def cmd_serve(args) -> int:
    from repro.server import serve_lines

    service = _build_service(args)
    if args.input:
        try:
            with open(args.input, "r", encoding="utf-8") as handle:
                processed = serve_lines(service, handle, sys.stdout)
        except OSError as exc:
            print(
                "error: cannot read request file: %s" % exc, file=sys.stderr
            )
            return 2
    else:
        processed = serve_lines(service, sys.stdin, sys.stdout)
    print(
        "served %d request(s) on %s (version %d)"
        % (processed, service.engine_name, service.version),
        file=sys.stderr,
    )
    return 0


def cmd_loadtest(args) -> int:
    from repro.server import (
        LoadGenerator,
        build_federated_workload,
        build_shacl_workload,
        build_shape_workload,
        build_workload,
        grouped_tenant_profiles,
        shape_tenant_profiles,
    )

    workload_kind = args.workload
    if args.shape_mix:
        if args.workload != "uniform":
            raise RuntimeConfigError(
                "--shape-mix conflicts with --workload; "
                "use --workload shape instead"
            )
        workload_kind = "shape"
    if args.smoke:
        args.clients = min(args.clients, 4)
        args.requests = min(args.requests, 2)
        args.queries = min(args.queries, 4)
    service = _build_service(args)
    graph = service.versions.head()
    profiles = None
    if workload_kind == "shape":
        workload = build_shape_workload(
            graph, per_shape=max(1, args.queries // 5), seed=args.seed
        )
        profiles = shape_tenant_profiles(workload, args.tenants)
    elif workload_kind == "shacl":
        workload = build_shacl_workload(graph, seed=args.seed)
        profiles = grouped_tenant_profiles(workload, args.tenants)
    elif workload_kind == "federated":
        workload = build_federated_workload(graph, seed=args.seed)
        profiles = grouped_tenant_profiles(workload, args.tenants)
    else:
        workload = build_workload(graph, size=args.queries, seed=args.seed)
    generator = LoadGenerator(
        service,
        workload,
        clients=args.clients,
        tenants=args.tenants,
        requests_per_client=args.requests,
        think_units=args.think,
        seed=args.seed,
        deadline=args.deadline,
        tenant_profiles=profiles,
    )
    report = generator.run()
    payload = report.to_payload()
    rows = [
        ["submitted", payload["totals"]["submitted"]],
        ["completed", payload["totals"]["completed"]],
        ["ok", payload["totals"]["ok"]],
        ["rejected", payload["totals"]["rejected"]],
        ["lint rejected", payload["totals"]["lint_rejected"]],
        ["deadline aborts", payload["totals"]["deadline_aborts"]],
        ["p50 latency (units)", payload["latency_units"]["p50"]],
        ["p95 latency (units)", payload["latency_units"]["p95"]],
        ["p99 latency (units)", payload["latency_units"]["p99"]],
        ["throughput (/kilounit)", payload["throughput_per_kilounit"]],
        ["result-cache hit rate", payload["cache"]["result_hit_rate"]],
        ["max queue depth", payload["queue"]["max_depth"]],
    ]
    print(format_table(["metric", "value"], rows))
    if payload["totals"]["rejected"]:
        print(
            "queue rejections by tenant: "
            + ", ".join(
                "%s=%d" % (tenant, entry["queue_rejected"])
                for tenant, entry in sorted(payload["tenants"].items())
                if entry["queue_rejected"]
            )
        )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
        print("report written to %s" % args.report)
    return 0


def cmd_generate(args) -> int:
    if args.kind == "lubm":
        graph = LubmGenerator(
            num_universities=args.scale, seed=args.seed
        ).generate()
    else:
        graph = WatdivGenerator(
            num_users=30 * args.scale,
            num_products=15 * args.scale,
            seed=args.seed,
        ).generate()
    written = save_ntriples_file(args.path, graph)
    print("wrote %d triples to %s" % (written, args.path))
    return 0


def cmd_views(args) -> int:
    from repro.stats import StatsCatalog
    from repro.views import DEFAULT_VIEW_THRESHOLD, ViewCatalog

    graph = load_graph(args.data)
    threshold = (
        DEFAULT_VIEW_THRESHOLD
        if args.view_threshold is None
        else args.view_threshold
    )
    catalog = ViewCatalog.build(
        graph, StatsCatalog.from_graph(graph), threshold=threshold
    )
    if args.action == "list":
        shown = catalog.sorted_views()[: args.limit]
        print(
            format_table(
                ["view", "kind", "rows", "factor"],
                [
                    [view.name, view.kind, len(view), round(view.factor, 6)]
                    for view in shown
                ],
            )
        )
        remaining = len(catalog) - len(shown)
        if remaining > 0:
            print("... and %d more view(s) (raise --limit)" % remaining)
    else:  # build | stats -- the headline numbers
        summary = catalog.summary()
        rows = [[name, summary[name]] for name in sorted(summary)]
        print(format_table(["statistic", "value"], rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(catalog.to_json())
        print("view catalog written to %s" % args.json)
    return 0


def _add_optimizer_arguments(parser: argparse.ArgumentParser) -> None:
    """Cost-based-optimizer knobs shared by every executing subcommand."""
    from repro.optimizer import DEFAULT_BROADCAST_THRESHOLD, ORDER_MODES

    parser.add_argument(
        "--optimize",
        action="store_true",
        help="run BGPs through the shared cost-based optimizer "
        "(statistics catalog + DP join ordering + broadcast selection)",
    )
    parser.add_argument(
        "--optimizer-mode",
        choices=list(ORDER_MODES),
        default="dp",
        help="join ordering strategy under --optimize (default dp)",
    )
    parser.add_argument(
        "--broadcast-threshold",
        type=int,
        default=DEFAULT_BROADCAST_THRESHOLD,
        metavar="ROWS",
        help="broadcast a join's build side when its estimated size is "
        "under ROWS (default %d)" % DEFAULT_BROADCAST_THRESHOLD,
    )
    parser.add_argument(
        "--views",
        action="store_true",
        help="materialize ExtVP views and substitute them into plans "
        "when they strictly dominate a base scan (requires --optimize; "
        "see docs/VIEWS.md)",
    )
    _add_view_threshold_argument(parser)


def _add_view_threshold_argument(parser: argparse.ArgumentParser) -> None:
    from repro.views import DEFAULT_VIEW_THRESHOLD

    parser.add_argument(
        "--view-threshold",
        type=_selectivity_factor,
        default=None,
        metavar="FACTOR",
        help="materialize an ExtVP pair when its selectivity factor is "
        "at most FACTOR in [0, 1] (default %s)" % DEFAULT_VIEW_THRESHOLD,
    )


def _add_routing_arguments(parser: argparse.ArgumentParser) -> None:
    """Adaptive-routing knobs shared by explain/serve/loadtest."""
    parser.add_argument(
        "--route",
        action="store_true",
        help="dispatch each query through the adaptive per-shape routing "
        "policy instead of one fixed engine (see docs/ROUTING.md)",
    )
    parser.add_argument(
        "--route-engines",
        action="append",
        metavar="NAME",
        help="candidate engine for the routed pool (repeatable; requires "
        "--route; default: the survey preference pool)",
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """Executor-backend knobs shared by every executing subcommand."""
    from repro.spark.parallel import BACKEND_NAMES, DEFAULT_WORKERS

    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="inprocess",
        help="executor backend: 'inprocess' runs partition tasks serially "
        "in the driver (the byte-exact oracle); 'parallel' runs them on a "
        "forked worker pool (see docs/PARALLEL.md)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes under --backend parallel (default %d; "
        "ignored by the in-process backend)" % DEFAULT_WORKERS,
    )
    _add_verify_closures_argument(parser)


def _add_verify_closures_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--verify-closures",
        action="store_true",
        help="analyze every closure in a job's lineage at submission "
        "time (rules CL000..CL007, see docs/ANALYSIS.md); a violating "
        "closure aborts the run with exit code 4",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    """Fault-injection knobs shared by ``query`` and ``assess``."""
    parser.add_argument(
        "--faults",
        metavar="SPEC",
        help="inject a deterministic fault schedule, e.g. "
        "'fail:p=0.2;lose:p=0.5;straggle:p=0.1,delay=3;seed=7' "
        "(see docs/FAULTS.md for the grammar)",
    )
    parser.add_argument(
        "--max-task-attempts",
        type=int,
        default=4,
        metavar="N",
        help="retries before a failing task aborts the run (default 4)",
    )
    parser.add_argument(
        "--speculation",
        action="store_true",
        help="launch speculative backup copies for straggling tasks",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RDF query answering on a Spark-like substrate "
        "(ICDE 2018 review & assessment, reproduced).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Figure 1 and Tables I/II")
    sub.add_parser("survey", help="print the per-system survey report")
    sub.add_parser(
        "claims", help="check every performance claim of the paper"
    )

    query = sub.add_parser("query", help="run a SPARQL query on a data file")
    query.add_argument("data", help="RDF file (.nt or .ttl)")
    query.add_argument("query", help="SPARQL file or literal query text")
    query.add_argument(
        "--engine", default="SPARQLGX", help="engine name (default SPARQLGX)"
    )
    query.add_argument("--parallelism", type=int, default=4)
    query.add_argument(
        "--trace",
        metavar="FILE",
        help="write the execution trace (JSON span tree) to FILE",
    )
    _add_optimizer_arguments(query)
    _add_fault_arguments(query)
    _add_backend_arguments(query)

    explain = sub.add_parser(
        "explain",
        help="print a per-operator cost tree for a query on several engines",
    )
    explain.add_argument("data", help="RDF file (.nt or .ttl)")
    explain.add_argument("query", help="SPARQL file or literal query text")
    explain.add_argument(
        "--engine",
        action="append",
        help="engine to explain (repeatable; default: SPARQLGX, S2RDF, HAQWA)",
    )
    explain.add_argument("--parallelism", type=int, default=4)
    explain.add_argument(
        "--shapes",
        metavar="FILE",
        help="SHACL-lite shapes file (JSON); prepends a 'shacl:' block "
        "inventorying the shape set's compiled validation queries and "
        "marking the explained query if it is one of them",
    )
    _add_optimizer_arguments(explain)
    _add_routing_arguments(explain)
    _add_verify_closures_argument(explain)

    route = sub.add_parser(
        "route",
        help="show the adaptive routing decision for a query without "
        "executing it (see docs/ROUTING.md)",
    )
    route.add_argument("data", help="RDF file (.nt or .ttl)")
    route.add_argument("query", help="SPARQL file or literal query text")
    route.add_argument(
        "--engine",
        action="append",
        help="candidate engine for the pool (repeatable; default: the "
        "survey preference pool)",
    )
    route.add_argument(
        "--json",
        action="store_true",
        help="print the decision as deterministic JSON instead of text",
    )
    from repro.optimizer import DEFAULT_BROADCAST_THRESHOLD, ORDER_MODES

    route.add_argument(
        "--optimizer-mode",
        choices=list(ORDER_MODES),
        default="dp",
        help="join ordering used by the base cost estimate (default dp)",
    )
    route.add_argument(
        "--broadcast-threshold",
        type=int,
        default=DEFAULT_BROADCAST_THRESHOLD,
        metavar="ROWS",
        help="broadcast threshold for the base cost estimate (default %d)"
        % DEFAULT_BROADCAST_THRESHOLD,
    )

    assess = sub.add_parser(
        "assess", help="run the cross-system assessment on a data file"
    )
    assess.add_argument("data", help="RDF file (.nt or .ttl)")
    assess.add_argument("--parallelism", type=int, default=4)
    assess.add_argument(
        "--trace",
        metavar="FILE",
        help="write every run's execution trace (JSON) to FILE",
    )
    _add_fault_arguments(assess)
    _add_backend_arguments(assess)

    generate = sub.add_parser(
        "generate", help="write a synthetic dataset to N-Triples"
    )
    generate.add_argument("kind", choices=["lubm", "watdiv"])
    generate.add_argument("path")
    generate.add_argument("--scale", type=int, default=1)
    generate.add_argument("--seed", type=int, default=42)

    stats = sub.add_parser(
        "stats",
        help="compute the statistics catalog for a data file",
    )
    stats.add_argument("data", help="RDF file (.nt or .ttl)")
    stats.add_argument(
        "--json",
        metavar="FILE",
        help="write the deterministic catalog JSON to FILE",
    )

    views = sub.add_parser(
        "views",
        help="materialize the ExtVP view catalog for a data file "
        "(see docs/VIEWS.md)",
    )
    views.add_argument("data", help="RDF file (.nt or .ttl)")
    views.add_argument(
        "action",
        choices=["build", "list", "stats"],
        help="build/stats print the catalog's headline numbers, "
        "list the per-view table",
    )
    _add_view_threshold_argument(views)
    views.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="views shown by the list action (default 20)",
    )
    views.add_argument(
        "--json",
        metavar="FILE",
        help="write the deterministic view-catalog JSON to FILE",
    )

    lint = sub.add_parser(
        "lint",
        help="statically analyze SPARQL queries without executing them",
    )
    lint.add_argument(
        "queries",
        nargs="+",
        metavar="QUERY",
        help="SPARQL file or literal query text (repeatable)",
    )
    lint.add_argument(
        "--data",
        metavar="FILE",
        help="RDF file to derive a statistics catalog from (enables the "
        "statistics-backed rules QL004-QL006)",
    )
    lint.add_argument(
        "--stats",
        metavar="FILE",
        help="precomputed catalog JSON (from `repro stats --json`) "
        "instead of --data",
    )
    lint.add_argument(
        "--deadline",
        type=_positive_units,
        default=None,
        metavar="UNITS",
        help="cost-unit budget for the cost-over-deadline rule QL005",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="print the report as deterministic JSON instead of text",
    )
    lint.add_argument(
        "--closures",
        action="store_true",
        help="treat the positional arguments as Python files/directories "
        "and run the closure analyzer (CL000..CL007) instead of the "
        "SPARQL linter; equivalent to `repro analyze`",
    )
    from repro.optimizer import DEFAULT_BROADCAST_THRESHOLD, ORDER_MODES

    lint.add_argument(
        "--optimizer-mode",
        choices=list(ORDER_MODES),
        default="dp",
        help="join ordering used by the cost estimate (default dp)",
    )
    lint.add_argument(
        "--broadcast-threshold",
        type=int,
        default=DEFAULT_BROADCAST_THRESHOLD,
        metavar="ROWS",
        help="broadcast threshold checked by QL006 (default %d)"
        % DEFAULT_BROADCAST_THRESHOLD,
    )

    analyze = sub.add_parser(
        "analyze",
        help="statically analyze Python sources for worker-boundary "
        "closure violations (CL000..CL007; see docs/ANALYSIS.md)",
    )
    analyze.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="Python file or directory to check (repeatable)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="print the report as deterministic JSON instead of text",
    )

    serve = sub.add_parser(
        "serve",
        help="run the query service over JSON-lines requests "
        "(see docs/SERVER.md)",
    )
    serve.add_argument("data", help="RDF file (.nt or .ttl)")
    serve.add_argument(
        "--input",
        metavar="FILE",
        help="read request lines from FILE instead of stdin",
    )
    _add_service_arguments(serve)
    _add_routing_arguments(serve)
    _add_optimizer_arguments(serve)
    _add_fault_arguments(serve)
    _add_backend_arguments(serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="drive the service with the closed-loop load generator",
    )
    loadtest.add_argument("data", help="RDF file (.nt or .ttl)")
    loadtest.add_argument(
        "--clients", type=int, default=8, help="closed-loop clients"
    )
    loadtest.add_argument(
        "--tenants", type=int, default=2, help="tenants clients spread over"
    )
    loadtest.add_argument(
        "--requests", type=int, default=8, help="requests per client"
    )
    loadtest.add_argument(
        "--queries", type=int, default=6, help="distinct workload queries"
    )
    loadtest.add_argument(
        "--think",
        type=int,
        default=50,
        metavar="UNITS",
        help="max client think time between requests (cost units)",
    )
    loadtest.add_argument("--seed", type=int, default=42)
    loadtest.add_argument(
        "--report",
        metavar="FILE",
        help="write the full JSON report (BENCH_server.json style) to FILE",
    )
    loadtest.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fixed-size run for CI (caps clients/requests/queries)",
    )
    loadtest.add_argument(
        "--shape-mix",
        action="store_true",
        help="drive the shape-stratified workload (one batch of queries "
        "per shape) with per-tenant shape emphasis instead of the "
        "uniform workload (shorthand for --workload shape)",
    )
    loadtest.add_argument(
        "--workload",
        choices=["uniform", "shape", "shacl", "federated"],
        default="uniform",
        help="workload family: 'uniform' draws --queries mixed queries; "
        "'shape' is the shape-stratified mix; 'shacl' replays a "
        "validation fan-out (compiled shape queries + class probes); "
        "'federated' replays a harvester's paged CONSTRUCT pages "
        "(default uniform)",
    )
    _add_service_arguments(loadtest)
    _add_routing_arguments(loadtest)
    _add_optimizer_arguments(loadtest)
    _add_fault_arguments(loadtest)
    _add_backend_arguments(loadtest)

    from repro.federation import DEFAULT_PAGE_SIZE

    validate = sub.add_parser(
        "validate",
        help="validate an RDF file against a SHACL-lite shapes file "
        "(see docs/SHACL.md)",
    )
    validate.add_argument("data", help="RDF file (.nt or .ttl)")
    validate.add_argument(
        "shapes", help="SHACL-lite shapes file (JSON; see docs/SHACL.md)"
    )
    validate.add_argument(
        "--remote",
        action="store_true",
        help="remote-first: pair the data behind an in-process wire "
        "endpoint, harvest the shape-relevant subgraph page by page, "
        "and validate the local copy (see docs/FEDERATION.md)",
    )
    validate.add_argument(
        "--page-size",
        type=_positive_int,
        default=DEFAULT_PAGE_SIZE,
        metavar="N",
        help="triples per harvested CONSTRUCT page under --remote "
        "(default %d)" % DEFAULT_PAGE_SIZE,
    )
    validate.add_argument(
        "--json",
        action="store_true",
        help="print the byte-deterministic report JSON instead of text",
    )
    validate.add_argument(
        "--report",
        metavar="FILE",
        help="write the report JSON to FILE",
    )
    _add_service_arguments(validate)
    _add_routing_arguments(validate)
    _add_optimizer_arguments(validate)
    _add_fault_arguments(validate)
    _add_backend_arguments(validate)

    harvest = sub.add_parser(
        "harvest",
        help="page a CONSTRUCT query out of a paired wire endpoint into "
        "a local subgraph (see docs/FEDERATION.md)",
    )
    harvest.add_argument("data", help="RDF file (.nt or .ttl)")
    harvest.add_argument(
        "query", help="CONSTRUCT query file or literal query text"
    )
    harvest.add_argument(
        "--page-size",
        type=_positive_int,
        default=DEFAULT_PAGE_SIZE,
        metavar="N",
        help="triples per CONSTRUCT page (default %d)" % DEFAULT_PAGE_SIZE,
    )
    harvest.add_argument(
        "--output",
        metavar="FILE",
        help="write the harvested triples as N-Triples to FILE "
        "(default: print them)",
    )
    harvest.add_argument(
        "--json",
        action="store_true",
        help="print the harvest record (pages, triples, version, units) "
        "as deterministic JSON instead of the triples",
    )
    _add_service_arguments(harvest)
    _add_routing_arguments(harvest)
    _add_optimizer_arguments(harvest)
    _add_fault_arguments(harvest)
    _add_backend_arguments(harvest)

    return parser


def _positive_int(value: str) -> int:
    """argparse type: a strictly positive integer."""
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return number


def _positive_units(value: str) -> int:
    """argparse type: a strictly positive integer of cost units."""
    units = int(value)
    if units <= 0:
        raise argparse.ArgumentTypeError(
            "must be a positive integer of cost units"
        )
    return units


def _selectivity_factor(value: str) -> float:
    """argparse type: a selectivity factor in [0, 1]."""
    factor = float(value)
    if not 0.0 <= factor <= 1.0:
        raise argparse.ArgumentTypeError(
            "must be a selectivity factor between 0 and 1"
        )
    return factor


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """Service knobs shared by ``serve`` and ``loadtest``."""
    parser.add_argument(
        "--engine", default="SPARQLGX", help="engine name (default SPARQLGX)"
    )
    parser.add_argument("--parallelism", type=int, default=4)
    parser.add_argument(
        "--pool", type=int, default=2, help="warmed engine instances"
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="bounded admission queue length (beyond it: rejection)",
    )
    parser.add_argument(
        "--deadline",
        type=_positive_units,
        default=None,
        metavar="UNITS",
        help="default per-query deadline in cost units (default: none)",
    )
    parser.add_argument(
        "--no-plan-cache",
        action="store_true",
        help="disable the parsed-plan cache",
    )
    parser.add_argument(
        "--no-result-cache",
        action="store_true",
        help="disable the version-keyed result cache",
    )
    parser.add_argument(
        "--no-lint",
        action="store_true",
        help="disable static lint admission (repro.analysis.query); "
        "lint-rejectable queries then run and fail at execution time",
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": cmd_tables,
        "survey": cmd_survey,
        "claims": cmd_claims,
        "query": cmd_query,
        "explain": cmd_explain,
        "route": cmd_route,
        "assess": cmd_assess,
        "generate": cmd_generate,
        "serve": cmd_serve,
        "loadtest": cmd_loadtest,
        "stats": cmd_stats,
        "lint": cmd_lint,
        "analyze": cmd_analyze,
        "views": cmd_views,
        "validate": cmd_validate,
        "harvest": cmd_harvest,
    }
    try:
        return handlers[args.command](args)
    except ClosureAnalysisError as exc:
        print("error: closure rejected at job submission:", file=sys.stderr)
        print(str(exc), file=sys.stderr)
        return 4
    except ShaclError as exc:
        print("error: bad shapes file: %s" % exc, file=sys.stderr)
        return 2
    except FaultSpecError as exc:
        print("error: invalid --faults spec: %s" % exc, file=sys.stderr)
        return 2
    except BackendConfigError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except RuntimeConfigError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except TaskFailedError as exc:
        print("error: %s" % exc, file=sys.stderr)
        print(
            "the fault schedule exhausted --max-task-attempts; raise the "
            "limit or relax --faults",
            file=sys.stderr,
        )
        return 3
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
