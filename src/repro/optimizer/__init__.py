"""Cost-based SPARQL optimization shared across every engine.

The package wires three pieces together behind one :class:`Optimizer`
facade:

* :mod:`repro.stats` supplies the :class:`~repro.stats.catalog.StatsCatalog`
  (per-predicate counts, characteristic sets, ExtVP pair selectivities);
* :mod:`repro.optimizer.cardinality` estimates pattern / star / subset
  cardinalities from it;
* :mod:`repro.optimizer.planner` orders the joins (Selinger DP, greedy, or
  parse order) and picks each join's physical strategy (broadcast vs
  shuffle vs partition-local);
* :mod:`repro.optimizer.executor` runs the annotated plan through any
  engine's own single-pattern evaluation.

Engines opt in via :meth:`repro.systems.base.SparkRdfEngine.set_optimizer`;
the unoptimized path stays the default (and the ablation baseline).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.executor import (
    collect_q_errors,
    execute_plan,
    q_error,
)
from repro.optimizer.planner import (
    BgpPlan,
    DEFAULT_BROADCAST_THRESHOLD,
    JoinPlanner,
    JoinStep,
    ORDER_MODES,
    ViewChoice,
)
from repro.rdf.graph import RDFGraph
from repro.sparql.ast import TriplePattern
from repro.stats.catalog import StatsCatalog


class Optimizer:
    """Catalog + estimator + planner + executor, ready to hand an engine."""

    def __init__(
        self,
        catalog: StatsCatalog,
        mode: str = "dp",
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
        enable_broadcast: bool = True,
        view_catalog=None,
    ) -> None:
        self.catalog = catalog
        self.estimator = CardinalityEstimator(catalog)
        self.view_catalog = view_catalog
        self.planner = JoinPlanner(
            self.estimator,
            mode=mode,
            broadcast_threshold=broadcast_threshold,
            enable_broadcast=enable_broadcast,
            view_catalog=view_catalog,
        )

    @classmethod
    def for_graph(
        cls,
        graph: RDFGraph,
        version: int = 0,
        views: bool = False,
        view_threshold: Optional[float] = None,
        **kwargs,
    ) -> "Optimizer":
        """Build the catalog from *graph* and wrap it in an optimizer.

        With ``views=True`` a :class:`~repro.views.ViewCatalog` is built
        from the same statistics (at *view_threshold*, defaulting to
        :data:`~repro.views.DEFAULT_VIEW_THRESHOLD`) and attached, so
        plans substitute materialized ExtVP views for dominated scans.
        """
        catalog = StatsCatalog.from_graph(graph, version=version)
        view_catalog = None
        if views:
            from repro.views import DEFAULT_VIEW_THRESHOLD, ViewCatalog

            view_catalog = ViewCatalog.build(
                graph,
                catalog,
                threshold=(
                    DEFAULT_VIEW_THRESHOLD
                    if view_threshold is None
                    else view_threshold
                ),
                version=version,
            )
        return cls(catalog, view_catalog=view_catalog, **kwargs)

    def set_view_catalog(self, view_catalog) -> None:
        """Attach (or detach, with None) a materialized-view catalog."""
        self.view_catalog = view_catalog
        self.planner.view_catalog = view_catalog

    @property
    def mode(self) -> str:
        return self.planner.mode

    @property
    def stats_version(self) -> int:
        """The graph version the statistics were computed at."""
        return self.catalog.version

    def plan_bgp(self, patterns: Sequence[TriplePattern]) -> BgpPlan:
        return self.planner.plan(patterns)

    def execute_bgp(self, engine, patterns: Sequence[TriplePattern]):
        """Plan and execute one BGP on *engine* (the base-class hook).

        With tracing on, planning is bracketed by an ``optimize`` span
        whose attrs carry the chosen order and per-step strategies.
        """
        tracer = engine.ctx.tracer
        if tracer.enabled:
            with tracer.span("optimize", name=self.mode) as span:
                plan = self.plan_bgp(patterns)
                if span is not None:
                    span.attrs.update(plan.describe())
        else:
            plan = self.plan_bgp(patterns)
        return execute_plan(engine, plan, view_catalog=self.view_catalog)

    def __repr__(self) -> str:
        return "Optimizer(mode=%s, stats_version=%d, threshold=%d)" % (
            self.mode,
            self.stats_version,
            self.planner.broadcast_threshold,
        )


__all__ = [
    "BgpPlan",
    "CardinalityEstimator",
    "DEFAULT_BROADCAST_THRESHOLD",
    "JoinPlanner",
    "JoinStep",
    "ORDER_MODES",
    "Optimizer",
    "ViewChoice",
    "collect_q_errors",
    "execute_plan",
    "q_error",
]
