"""Executes a :class:`~repro.optimizer.planner.BgpPlan` on any engine.

The executor only asks an engine for what every engine already provides:
``_evaluate_bgp([pattern])`` -- the bindings of one triple pattern through
the engine's own storage and partitioning (the same call the shared
DESCRIBE path uses).  Everything after the leaf scans runs on the common
RDD machinery, so the physical strategy the planner picked is charged to
the simulated cluster's real counters:

``shuffle`` / ``local``
    Both sides are keyed by the join variables and hash-joined.  The
    accumulated side stays *keyed and partitioned* between steps
    (``mapValues`` preserves partitioning), so a ``local`` step's
    ``partitionBy`` is a genuine no-op -- only the fresh side moves.
``broadcast``
    The fresh pattern's bindings are collected, broadcast
    (``broadcast_bytes`` charged), and probed partition-locally on the
    accumulated side without disturbing its keying or partitioning.
``cartesian``
    The nested-loop product, for disconnected BGPs.

Tracing: with the context tracer enabled, every step emits a ``bgp_step``
span (name = strategy) carrying ``est_rows`` and, because the step's
output is materialized inside the span, ``actual_rows`` -- the pair the
q-error accounting (:func:`collect_q_errors`) and EXPLAIN read.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.spark.partitioner import HashPartitioner
from repro.spark.rdd import RDD
from repro.spark.tracing import Span
from repro.optimizer.planner import BgpPlan, JoinStep
from repro.sparql.ast import Variable

Binding = Dict[str, object]


def _key_func(names: Tuple[str, ...]):
    def key_of(binding: Binding):
        return tuple(binding[name] for name in names)

    return key_of


class _State:
    """The accumulated side: a bindings RDD, keyed when *key* is set."""

    def __init__(self, rdd: RDD, key: Optional[Tuple[str, ...]] = None):
        self.rdd = rdd
        self.key = key

    def bindings(self) -> RDD:
        """The plain bindings view (drops keying, costs nothing extra)."""
        return self.rdd.values() if self.key is not None else self.rdd

    def keyed_by(self, names: Tuple[str, ...]) -> RDD:
        """The (key, binding) view for the given join variables."""
        if self.key == names:
            return self.rdd
        return self.bindings().map(
            lambda b, key_of=_key_func(names): (key_of(b), b)
        )


def execute_plan(engine, plan: BgpPlan, view_catalog=None) -> RDD:
    """Run *plan* on *engine*, returning an RDD of bindings.

    When *view_catalog* is given, steps the planner annotated with a
    :class:`~repro.optimizer.planner.ViewChoice` read their leaf bindings
    from the materialized ExtVP view instead of the engine's base
    representation (a ``view`` span records est/actual rows).
    """
    ctx = engine.ctx
    tracer = ctx.tracer
    state: Optional[_State] = None
    for step in plan.steps:
        if not tracer.enabled:
            state = _apply_step(engine, state, step, view_catalog)
            continue
        with tracer.span(
            "bgp_step",
            name=step.strategy,
            **_step_attrs(step),
        ) as span:
            state = _apply_step(engine, state, step, view_catalog)
            state.rdd.cache()
            rows = state.rdd.count()
            if span is not None:
                span.attrs["actual_rows"] = rows
    assert state is not None
    return state.bindings()


def _step_attrs(step: JoinStep) -> Dict[str, object]:
    attrs: Dict[str, object] = {"est_rows": round(step.est_rows, 2)}
    if step.strategy == "scan":
        attrs["pattern"] = repr(step.pattern)
    else:
        attrs["on"] = ",".join(step.shared)
        attrs["est_build"] = round(step.est_build, 2)
    if step.view is not None:
        attrs["view"] = step.view.name
    return attrs


def _apply_step(
    engine, state: Optional[_State], step: JoinStep, view_catalog=None
) -> _State:
    fresh = _leaf_scan(engine, step, view_catalog)
    if state is None:
        return _State(fresh)
    if step.strategy == "cartesian":
        product = state.bindings().cartesian(fresh)
        return _State(product.map(lambda pair: {**pair[0], **pair[1]}))
    if step.strategy == "broadcast":
        return _broadcast_join(engine.ctx, state, fresh, step.shared)
    return _partitioned_join(engine.ctx, state, fresh, step.shared)


def _leaf_scan(engine, step: JoinStep, view_catalog) -> RDD:
    """One pattern's bindings: the chosen view, or the engine's base scan."""
    if step.view is None or view_catalog is None:
        return engine._evaluate_bgp([step.pattern])
    view = view_catalog.get(step.view.key)
    if view is None:  # catalog changed under the plan -- stay correct
        return engine._evaluate_bgp([step.pattern])
    return _view_scan(engine, step, view)


def _view_scan(engine, step: JoinStep, view) -> RDD:
    """Bindings of *step*'s pattern read from a materialized view.

    The view stores the (subject, object) rows of ``p1``'s partition that
    survive the semi-join; bound subject/object slots of the pattern
    filter rows, variable slots bind them (a repeated variable must match
    itself, as in the base scan).  Rows arrive sorted by N3 text, so the
    resulting RDD is deterministic.
    """
    pattern = step.pattern
    bindings: List[Binding] = []
    for s, o in view.rows():
        binding: Binding = {}
        consistent = True
        for slot, value in (("subject", s), ("object", o)):
            term = getattr(pattern, slot)
            if isinstance(term, Variable):
                if term.name in binding and binding[term.name] != value:
                    consistent = False
                    break
                binding[term.name] = value
            elif term != value:
                consistent = False
                break
        if consistent:
            bindings.append(binding)
    ctx = engine.ctx
    ctx.metrics.incr("view_scans")
    tracer = ctx.tracer
    if not tracer.enabled:
        return ctx.parallelize(bindings)
    with tracer.span(
        "view",
        name=view.name,
        est_rows=step.view.rows,
        base_rows=step.view.base_rows,
        factor=round(view.factor, 6),
    ) as span:
        rdd = ctx.parallelize(bindings)
        # Materialize inside the span so the scan's records land here.
        rdd.cache()
        rows = rdd.count()
        if span is not None:
            span.attrs["actual_rows"] = rows
    return rdd


def _partitioned_join(
    ctx, state: _State, fresh: RDD, shared: Tuple[str, ...]
) -> _State:
    """The shuffle hash join; a no-op shuffle on the accumulated side when
    it is already partitioned on *shared* (the planner's ``local`` case)."""
    left = state.keyed_by(shared)
    right = fresh.map(lambda b, key_of=_key_func(shared): (key_of(b), b))
    joined = left.join(right, num_partitions=ctx.default_parallelism)
    merged = joined.mapValues(lambda lr: {**lr[0], **lr[1]})
    return _State(merged, key=shared)


def _broadcast_join(
    ctx, state: _State, fresh: RDD, shared: Tuple[str, ...]
) -> _State:
    """Broadcast the fresh side; probe the accumulated side in place."""
    key_of = _key_func(shared)
    build: Dict[Tuple[object, ...], List[Binding]] = {}
    for part in fresh._materialize():
        for binding in part:
            build.setdefault(key_of(binding), []).append(binding)
    bcast = ctx.broadcast(build)
    metrics = ctx.metrics
    keyed = state.key is not None

    def probe(part: List[object]) -> List[object]:
        table = bcast.value
        out: List[object] = []
        comparisons = 0
        for item in part:
            binding = item[1] if keyed else item
            matches = table.get(key_of(binding))
            if matches:
                comparisons += len(matches)
                for build_binding in matches:
                    merged = {**binding, **build_binding}
                    out.append((item[0], merged) if keyed else merged)
            else:
                comparisons += 1
        metrics.record_join(comparisons, len(part), len(out))
        return out

    probed = state.rdd.mapPartitions(probe, preserves_partitioning=True)
    return _State(probed, key=state.key)


# ----------------------------------------------------------------------
# q-error accounting
# ----------------------------------------------------------------------


def q_error(estimated: float, actual: float) -> float:
    """The symmetric under/over-estimation factor, smoothed at one row."""
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


def collect_q_errors(spans: Sequence[Span]) -> List[Tuple[str, float]]:
    """(strategy, q-error) for every traced optimizer step with both an
    estimate and an actual count."""
    out: List[Tuple[str, float]] = []
    for root in spans:
        for span in root.walk():
            if span.kind != "bgp_step":
                continue
            if "est_rows" not in span.attrs or "actual_rows" not in span.attrs:
                continue
            out.append(
                (
                    span.name,
                    q_error(
                        float(span.attrs["est_rows"]),
                        float(span.attrs["actual_rows"]),
                    ),
                )
            )
    return out
