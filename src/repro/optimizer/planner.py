"""Selinger-style left-deep join ordering with physical strategy selection.

The planner turns a BGP (a list of triple patterns) into a
:class:`BgpPlan`: an execution order plus, for every join step, the
physical strategy the executor should use.

Ordering modes (the ablation axis of ``benchmarks/bench_optimizer.py``):

``dp``
    Selinger dynamic programming over left-deep trees.  The cost of an
    order is the classic ``C_out``: the sum of the estimated cardinalities
    of every intermediate result.  Extensions that share a variable with
    the prefix are preferred; a cartesian extension is considered only
    when no connected one exists.  Ties break on the lexicographically
    smallest index sequence, so plans are deterministic.
``greedy``
    SPARQLGX's heuristic: start from the most selective pattern, then
    repeatedly append the connected pattern with the smallest estimate.
``parse``
    The patterns exactly as written -- the no-statistics baseline.

Physical strategies per join step:

``broadcast``
    Chosen **iff** the estimated build side (the fresh pattern's scan) is
    strictly under ``broadcast_threshold`` rows (and broadcasts are
    enabled).  The probe side is never shuffled.
``local``
    The accumulated side is already hash-partitioned on exactly this join
    key (a previous shuffle on the same key), so only the fresh side
    moves -- the co-partitioned join HAQWA's subject hashing banks on.
``shuffle``
    The partitioned hash join: both sides shuffle to a common partitioner.
``cartesian``
    No shared variable (only when the BGP is disconnected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.optimizer.cardinality import CardinalityEstimator
from repro.sparql.ast import TriplePattern

#: Default broadcast threshold in estimated build-side rows.  Sized so the
#: small vertical partitions of the test workloads broadcast while full
#: scans of anything dataset-sized do not.
DEFAULT_BROADCAST_THRESHOLD = 64

#: Past this many patterns, exact DP (2^n subsets) yields to greedy.
MAX_DP_PATTERNS = 12

ORDER_MODES = ("dp", "greedy", "parse")


@dataclass(frozen=True)
class JoinStep:
    """One step of a left-deep BGP plan.

    The first step is always the ``scan`` of the first pattern; every
    later step joins the accumulated prefix with one fresh pattern.
    """

    index: int  # position in the original pattern list
    pattern: TriplePattern
    shared: Tuple[str, ...]  # join variables with the prefix (sorted)
    strategy: str  # scan | broadcast | local | shuffle | cartesian
    est_build: float  # estimated rows of this pattern's scan
    est_rows: float  # estimated rows after this step


@dataclass
class BgpPlan:
    """An ordered, physically annotated plan for one BGP."""

    steps: List[JoinStep]
    mode: str
    broadcast_threshold: int

    @property
    def order(self) -> List[int]:
        return [step.index for step in self.steps]

    @property
    def est_rows(self) -> float:
        return self.steps[-1].est_rows if self.steps else 1.0

    def describe(self) -> Dict[str, object]:
        """Compact JSON-ready description (the ``optimize`` span attrs)."""
        return {
            "mode": self.mode,
            "order": ",".join(str(i) for i in self.order),
            "strategies": ",".join(s.strategy for s in self.steps),
            "est_rows": round(self.est_rows, 2),
        }


class JoinPlanner:
    """Builds :class:`BgpPlan` objects from catalog-backed estimates."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        mode: str = "dp",
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
        enable_broadcast: bool = True,
    ) -> None:
        if mode not in ORDER_MODES:
            raise ValueError(
                "unknown order mode %r; choose one of %s"
                % (mode, ", ".join(ORDER_MODES))
            )
        if broadcast_threshold <= 0:
            raise ValueError("broadcast_threshold must be positive")
        self.estimator = estimator
        self.mode = mode
        self.broadcast_threshold = broadcast_threshold
        self.enable_broadcast = enable_broadcast

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def plan(self, patterns: Sequence[TriplePattern]) -> BgpPlan:
        patterns = list(patterns)
        if not patterns:
            return BgpPlan([], self.mode, self.broadcast_threshold)
        if self.mode == "parse":
            order = list(range(len(patterns)))
        elif self.mode == "greedy" or len(patterns) > MAX_DP_PATTERNS:
            order = self._greedy_order(patterns)
        else:
            order = self._dp_order(patterns)
        return BgpPlan(
            self._annotate(patterns, order),
            self.mode,
            self.broadcast_threshold,
        )

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------

    def _greedy_order(self, patterns: List[TriplePattern]) -> List[int]:
        """Most selective first, then smallest connected next."""
        estimate = self.estimator.pattern_cardinality
        remaining = sorted(
            range(len(patterns)), key=lambda i: (estimate(patterns[i]), i)
        )
        order = [remaining.pop(0)]
        bound = {v.name for v in patterns[order[0]].variables()}
        while remaining:
            connected = [
                i
                for i in remaining
                if bound & {v.name for v in patterns[i].variables()}
            ]
            chosen = connected[0] if connected else remaining[0]
            remaining.remove(chosen)
            order.append(chosen)
            bound |= {v.name for v in patterns[chosen].variables()}
        return order

    def _dp_order(self, patterns: List[TriplePattern]) -> List[int]:
        """Left-deep Selinger DP minimizing the sum of intermediate rows."""
        n = len(patterns)
        variables = [
            frozenset(v.name for v in p.variables()) for p in patterns
        ]

        cardinality: Dict[FrozenSet[int], float] = {}

        def subset_rows(subset: FrozenSet[int]) -> float:
            if subset not in cardinality:
                cardinality[subset] = self.estimator.subset_cardinality(
                    [patterns[i] for i in sorted(subset)]
                )
            return cardinality[subset]

        # best[subset] = (cost, order tuple); cost excludes the first scan
        # (every order pays it) and sums every intermediate cardinality.
        best: Dict[FrozenSet[int], Tuple[float, Tuple[int, ...]]] = {
            frozenset((i,)): (0.0, (i,)) for i in range(n)
        }
        for size in range(2, n + 1):
            level: Dict[FrozenSet[int], Tuple[float, Tuple[int, ...]]] = {}
            for subset, (cost, order) in best.items():
                if len(subset) != size - 1:
                    continue
                bound = frozenset().union(*(variables[i] for i in subset))
                connected = [
                    i
                    for i in range(n)
                    if i not in subset and bound & variables[i]
                ]
                extensions = connected or [
                    i for i in range(n) if i not in subset
                ]
                for i in extensions:
                    grown = subset | {i}
                    candidate = (
                        cost + subset_rows(grown),
                        order + (i,),
                    )
                    incumbent = level.get(grown)
                    if incumbent is None or candidate < incumbent:
                        level[grown] = candidate
            best = {
                subset: value
                for subset, value in best.items()
                if len(subset) != size - 1
            }
            best.update(level)
        return list(best[frozenset(range(n))][1])

    # ------------------------------------------------------------------
    # Physical annotation
    # ------------------------------------------------------------------

    def _annotate(
        self, patterns: List[TriplePattern], order: List[int]
    ) -> List[JoinStep]:
        estimator = self.estimator
        steps: List[JoinStep] = []
        prefix: List[TriplePattern] = []
        bound: set = set()
        current_key: Optional[Tuple[str, ...]] = None
        for position, index in enumerate(order):
            pattern = patterns[index]
            est_build = estimator.pattern_cardinality(pattern)
            if position == 0:
                steps.append(
                    JoinStep(
                        index=index,
                        pattern=pattern,
                        shared=(),
                        strategy="scan",
                        est_build=est_build,
                        est_rows=est_build,
                    )
                )
            else:
                shared = tuple(
                    sorted(bound & {v.name for v in pattern.variables()})
                )
                est_rows = estimator.subset_cardinality(prefix + [pattern])
                if not shared:
                    strategy = "cartesian"
                    current_key = None
                elif (
                    self.enable_broadcast
                    and est_build < self.broadcast_threshold
                ):
                    # Broadcast never touches the accumulated side, so its
                    # partitioning (current_key) survives untouched.
                    strategy = "broadcast"
                elif current_key == shared:
                    strategy = "local"
                else:
                    strategy = "shuffle"
                    current_key = shared
                steps.append(
                    JoinStep(
                        index=index,
                        pattern=pattern,
                        shared=shared,
                        strategy=strategy,
                        est_build=est_build,
                        est_rows=est_rows,
                    )
                )
            prefix.append(pattern)
            bound |= {v.name for v in pattern.variables()}
        return steps
