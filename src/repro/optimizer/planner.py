"""Selinger-style left-deep join ordering with physical strategy selection.

The planner turns a BGP (a list of triple patterns) into a
:class:`BgpPlan`: an execution order plus, for every join step, the
physical strategy the executor should use.

Ordering modes (the ablation axis of ``benchmarks/bench_optimizer.py``):

``dp``
    Selinger dynamic programming over left-deep trees.  The cost of an
    order is the classic ``C_out``: the sum of the estimated cardinalities
    of every intermediate result.  Extensions that share a variable with
    the prefix are preferred; a cartesian extension is considered only
    when no connected one exists.  Ties break on the lexicographically
    smallest index sequence, so plans are deterministic.
``greedy``
    SPARQLGX's heuristic: start from the most selective pattern, then
    repeatedly append the connected pattern with the smallest estimate.
``parse``
    The patterns exactly as written -- the no-statistics baseline.

Physical strategies per join step:

``broadcast``
    Chosen **iff** the estimated build side (the fresh pattern's scan) is
    strictly under ``broadcast_threshold`` rows (and broadcasts are
    enabled).  The probe side is never shuffled.
``local``
    The accumulated side is already hash-partitioned on exactly this join
    key (a previous shuffle on the same key), so only the fresh side
    moves -- the co-partitioned join HAQWA's subject hashing banks on.
``shuffle``
    The partitioned hash join: both sides shuffle to a common partitioner.
``cartesian``
    No shared variable (only when the BGP is disconnected).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.optimizer.cardinality import CardinalityEstimator
from repro.sparql.ast import TriplePattern, Variable

#: Default broadcast threshold in estimated build-side rows.  Sized so the
#: small vertical partitions of the test workloads broadcast while full
#: scans of anything dataset-sized do not.
DEFAULT_BROADCAST_THRESHOLD = 64

#: Past this many patterns, exact DP (2^n subsets) yields to greedy.
MAX_DP_PATTERNS = 12

ORDER_MODES = ("dp", "greedy", "parse")


@dataclass(frozen=True)
class ViewChoice:
    """A materialized ExtVP view substituted for one pattern's base scan.

    Chosen by :meth:`JoinPlanner._choose_view` when the view *strictly
    dominates* the base scan: its stored row count is below the scanned
    predicate's full partition size.  ``partner`` is the index of the
    BGP pattern whose predicate justifies the semi-join reduction.
    """

    key: Tuple[str, str, str]  # (kind, p1 n3, p2 n3)
    rows: int  # materialized rows (exact, not estimated)
    base_rows: int  # the base scan this replaces (p1's partition size)
    factor: float  # the view's selectivity factor at build time
    partner: int  # index of the pattern that makes the view applicable

    @property
    def name(self) -> str:
        from repro.views.catalog import view_name

        return view_name(self.key)


@dataclass(frozen=True)
class JoinStep:
    """One step of a left-deep BGP plan.

    The first step is always the ``scan`` of the first pattern; every
    later step joins the accumulated prefix with one fresh pattern.
    When *view* is set, the pattern's leaf scan reads the materialized
    ExtVP view instead of the engine's base representation.
    """

    index: int  # position in the original pattern list
    pattern: TriplePattern
    shared: Tuple[str, ...]  # join variables with the prefix (sorted)
    strategy: str  # scan | broadcast | local | shuffle | cartesian
    est_build: float  # estimated rows of this pattern's scan
    est_rows: float  # estimated rows after this step
    view: Optional[ViewChoice] = None  # substituted materialized view


@dataclass
class BgpPlan:
    """An ordered, physically annotated plan for one BGP."""

    steps: List[JoinStep]
    mode: str
    broadcast_threshold: int

    @property
    def order(self) -> List[int]:
        return [step.index for step in self.steps]

    @property
    def est_rows(self) -> float:
        return self.steps[-1].est_rows if self.steps else 1.0

    def describe(self) -> Dict[str, object]:
        """Compact JSON-ready description (the ``optimize`` span attrs)."""
        described = {
            "mode": self.mode,
            "order": ",".join(str(i) for i in self.order),
            "strategies": ",".join(s.strategy for s in self.steps),
            "est_rows": round(self.est_rows, 2),
        }
        views = ";".join(
            "%d:%s" % (s.index, s.view.name)
            for s in self.steps
            if s.view is not None
        )
        if views:  # key absent when no view was substituted, so plans
            # without a catalog keep their exact pre-views trace bytes.
            described["views"] = views
        return described


class JoinPlanner:
    """Builds :class:`BgpPlan` objects from catalog-backed estimates."""

    def __init__(
        self,
        estimator: CardinalityEstimator,
        mode: str = "dp",
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
        enable_broadcast: bool = True,
        view_catalog=None,
    ) -> None:
        if mode not in ORDER_MODES:
            raise ValueError(
                "unknown order mode %r; choose one of %s"
                % (mode, ", ".join(ORDER_MODES))
            )
        if broadcast_threshold <= 0:
            raise ValueError("broadcast_threshold must be positive")
        self.estimator = estimator
        self.mode = mode
        self.broadcast_threshold = broadcast_threshold
        self.enable_broadcast = enable_broadcast
        self.view_catalog = view_catalog

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def plan(self, patterns: Sequence[TriplePattern]) -> BgpPlan:
        patterns = list(patterns)
        if not patterns:
            return BgpPlan([], self.mode, self.broadcast_threshold)
        if self.mode == "parse":
            order = list(range(len(patterns)))
        elif self.mode == "greedy" or len(patterns) > MAX_DP_PATTERNS:
            order = self._greedy_order(patterns)
        else:
            order = self._dp_order(patterns)
        return BgpPlan(
            self._annotate(patterns, order),
            self.mode,
            self.broadcast_threshold,
        )

    # ------------------------------------------------------------------
    # Ordering
    # ------------------------------------------------------------------

    def _greedy_order(self, patterns: List[TriplePattern]) -> List[int]:
        """Most selective first, then smallest connected next."""
        estimate = self.estimator.pattern_cardinality
        remaining = sorted(
            range(len(patterns)), key=lambda i: (estimate(patterns[i]), i)
        )
        order = [remaining.pop(0)]
        bound = {v.name for v in patterns[order[0]].variables()}
        while remaining:
            connected = [
                i
                for i in remaining
                if bound & {v.name for v in patterns[i].variables()}
            ]
            chosen = connected[0] if connected else remaining[0]
            remaining.remove(chosen)
            order.append(chosen)
            bound |= {v.name for v in patterns[chosen].variables()}
        return order

    def _dp_order(self, patterns: List[TriplePattern]) -> List[int]:
        """Left-deep Selinger DP minimizing the sum of intermediate rows."""
        n = len(patterns)
        variables = [
            frozenset(v.name for v in p.variables()) for p in patterns
        ]

        cardinality: Dict[FrozenSet[int], float] = {}

        def subset_rows(subset: FrozenSet[int]) -> float:
            if subset not in cardinality:
                cardinality[subset] = self.estimator.subset_cardinality(
                    [patterns[i] for i in sorted(subset)]
                )
            return cardinality[subset]

        # best[subset] = (cost, order tuple); cost excludes the first scan
        # (every order pays it) and sums every intermediate cardinality.
        best: Dict[FrozenSet[int], Tuple[float, Tuple[int, ...]]] = {
            frozenset((i,)): (0.0, (i,)) for i in range(n)
        }
        for size in range(2, n + 1):
            level: Dict[FrozenSet[int], Tuple[float, Tuple[int, ...]]] = {}
            for subset, (cost, order) in best.items():
                if len(subset) != size - 1:
                    continue
                bound = frozenset().union(*(variables[i] for i in subset))
                connected = [
                    i
                    for i in range(n)
                    if i not in subset and bound & variables[i]
                ]
                extensions = connected or [
                    i for i in range(n) if i not in subset
                ]
                for i in extensions:
                    grown = subset | {i}
                    candidate = (
                        cost + subset_rows(grown),
                        order + (i,),
                    )
                    incumbent = level.get(grown)
                    if incumbent is None or candidate < incumbent:
                        level[grown] = candidate
            best = {
                subset: value
                for subset, value in best.items()
                if len(subset) != size - 1
            }
            best.update(level)
        return list(best[frozenset(range(n))][1])

    # ------------------------------------------------------------------
    # Physical annotation
    # ------------------------------------------------------------------

    def _annotate(
        self, patterns: List[TriplePattern], order: List[int]
    ) -> List[JoinStep]:
        estimator = self.estimator
        steps: List[JoinStep] = []
        prefix: List[TriplePattern] = []
        bound: set = set()
        current_key: Optional[Tuple[str, ...]] = None
        for position, index in enumerate(order):
            pattern = patterns[index]
            est_build = estimator.pattern_cardinality(pattern)
            view = self._choose_view(patterns, index)
            if view is not None:
                # The view's row count is exact, not estimated: the leaf
                # scan reads the materialized table instead of the base
                # partition, so the build side shrinks accordingly.
                est_build = min(est_build, float(view.rows))
            if position == 0:
                steps.append(
                    JoinStep(
                        index=index,
                        pattern=pattern,
                        shared=(),
                        strategy="scan",
                        est_build=est_build,
                        est_rows=est_build,
                        view=view,
                    )
                )
            else:
                shared = tuple(
                    sorted(bound & {v.name for v in pattern.variables()})
                )
                est_rows = estimator.subset_cardinality(prefix + [pattern])
                if not shared:
                    strategy = "cartesian"
                    current_key = None
                elif (
                    self.enable_broadcast
                    and est_build < self.broadcast_threshold
                ):
                    # Broadcast never touches the accumulated side, so its
                    # partitioning (current_key) survives untouched.
                    strategy = "broadcast"
                elif current_key == shared:
                    strategy = "local"
                else:
                    strategy = "shuffle"
                    current_key = shared
                steps.append(
                    JoinStep(
                        index=index,
                        pattern=pattern,
                        shared=shared,
                        strategy=strategy,
                        est_build=est_build,
                        est_rows=est_rows,
                        view=view,
                    )
                )
            prefix.append(pattern)
            bound |= {v.name for v in pattern.variables()}
        return steps

    # ------------------------------------------------------------------
    # Materialized-view substitution
    # ------------------------------------------------------------------

    def _choose_view(
        self, patterns: List[TriplePattern], index: int
    ) -> Optional[ViewChoice]:
        """The best materialized view replacing pattern *index*'s scan.

        A view ``extvp_kind(p1,p2)`` applies when the pattern's predicate
        is bound to ``p1`` and some *other* pattern of the same BGP binds
        ``p2`` with a shared variable sitting on the columns *kind* names.
        The view's rows are a superset of the joinable rows (they survive
        the semi-join against **all** of ``p2``'s triples, of which the
        partner's matches are a subset), so substituting it never changes
        results.  Substitution requires *strict dominance*: the view must
        hold fewer rows than ``p1``'s full partition.  Ties break on
        (rows, key, partner index) so plans stay deterministic.
        """
        catalog = self.view_catalog
        if catalog is None or len(catalog) == 0:
            return None
        pattern = patterns[index]
        if isinstance(pattern.predicate, Variable):
            return None
        p1 = pattern.predicate.n3()
        stats = self.estimator.catalog.predicate_stats(p1)
        base_rows = stats.count if stats is not None else 0
        position_of = CardinalityEstimator._so_position
        best = None  # ((rows, view key, partner index), view)
        for partner, other in enumerate(patterns):
            if partner == index or isinstance(other.predicate, Variable):
                continue
            p2 = other.predicate.n3()
            if p2 == p1:
                continue
            shared = {v.name for v in pattern.variables()} & {
                v.name for v in other.variables()
            }
            for name in sorted(shared):
                mine = position_of(pattern, name)
                theirs = position_of(other, name)
                if mine is None or theirs is None:
                    continue
                kind = mine + theirs
                if kind == "oo":
                    continue  # ExtVP keeps no object-object tables
                view = catalog.get((kind, p1, p2))
                if view is None or len(view) >= base_rows:
                    continue
                candidate = ((len(view), view.key, partner), view)
                if best is None or candidate[0] < best[0]:
                    best = candidate
        if best is None:
            return None
        (_, _, partner), view = best
        return ViewChoice(
            key=view.key,
            rows=len(view),
            base_rows=base_rows,
            factor=view.factor,
            partner=partner,
        )
