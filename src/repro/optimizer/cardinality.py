"""Cardinality estimation for triple patterns, stars and join subsets.

Three estimation layers, each falling back to the next:

1. **Triple patterns** -- the SPARQLGX recipe generalized: the bound
   predicate selects its vertical-partition size, a bound subject/object
   divides by that predicate's distinct subject/object count (the global
   counts when the predicate is unbound).
2. **Subject stars** -- when every pattern of a subset shares one subject
   variable and all predicates are bound, characteristic sets give a
   near-exact count (Neumann & Moerkotte): sum over the subject groups
   whose predicate set covers the query star.
3. **Arbitrary subsets** -- the System-R independence assumption: the
   product of per-pattern cardinalities divided, for each join variable,
   by all but the smallest distinct-value count among the patterns using
   it.  Before the division, each pattern's cardinality is reduced by the
   strongest applicable ExtVP pair-selectivity factor against the other
   patterns in the subset -- the same semi-join reduction S2RDF gets from
   its precomputed tables.

Every estimate is a ``float >= 0``; deterministic because the catalog is.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.sparql.ast import TriplePattern, Variable
from repro.stats.catalog import StatsCatalog


def _n3(term: object) -> Optional[str]:
    """The N3 key of a bound position, or None for a variable."""
    if isinstance(term, Variable):
        return None
    return term.n3()  # type: ignore[attr-defined]


class CardinalityEstimator:
    """Estimates pattern / star / subset cardinalities from a catalog."""

    def __init__(self, catalog: StatsCatalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Single patterns
    # ------------------------------------------------------------------

    def pattern_cardinality(self, pattern: TriplePattern) -> float:
        """Expected matches of one triple pattern against the graph."""
        catalog = self.catalog
        predicate = _n3(pattern.predicate)
        if predicate is None:
            base = float(catalog.triples)
            subjects = catalog.distinct_subjects
            objects = catalog.distinct_objects
        else:
            stats = catalog.predicate_stats(predicate)
            if stats is None:
                return 0.0
            base = float(stats.count)
            subjects = stats.distinct_subjects
            objects = stats.distinct_objects
        if _n3(pattern.subject) is not None:
            base /= max(subjects, 1)
        if _n3(pattern.object) is not None:
            base /= max(objects, 1)
        return base

    def variable_distinct(
        self, pattern: TriplePattern, name: str
    ) -> float:
        """Estimated distinct values variable *name* takes in *pattern*."""
        catalog = self.catalog
        predicate = _n3(pattern.predicate)
        if predicate is None:
            stats = None
        else:
            stats = catalog.predicate_stats(predicate)
        distinct = 1.0
        if isinstance(pattern.subject, Variable) and pattern.subject.name == name:
            distinct = max(
                distinct,
                float(
                    stats.distinct_subjects
                    if stats is not None
                    else catalog.distinct_subjects
                ),
            )
        if (
            isinstance(pattern.predicate, Variable)
            and pattern.predicate.name == name
        ):
            distinct = max(distinct, float(catalog.distinct_predicates))
        if isinstance(pattern.object, Variable) and pattern.object.name == name:
            distinct = max(
                distinct,
                float(
                    stats.distinct_objects
                    if stats is not None
                    else catalog.distinct_objects
                ),
            )
        return max(min(distinct, self.pattern_cardinality(pattern)), 1.0)

    # ------------------------------------------------------------------
    # Pattern-pair reduction (ExtVP)
    # ------------------------------------------------------------------

    def reduction_factor(
        self, pattern: TriplePattern, other: TriplePattern
    ) -> float:
        """Fraction of *pattern*'s rows surviving a semi-join with *other*.

        1.0 when no ExtVP factor applies (unbound predicates, predicate-
        position joins, or no shared variable on s/o columns).
        """
        p1 = _n3(pattern.predicate)
        p2 = _n3(other.predicate)
        if p1 is None or p2 is None or p1 == p2:
            return 1.0
        factor = 1.0
        shared = set(v.name for v in pattern.variables()) & set(
            v.name for v in other.variables()
        )
        # Sorted: float multiplication is not associativity-stable, so
        # accumulating the per-variable factors in set order would leak
        # PYTHONHASHSEED into cost estimates.
        for name in sorted(shared):
            mine = self._so_position(pattern, name)
            theirs = self._so_position(other, name)
            if mine is None or theirs is None:
                continue
            kind = mine + theirs  # "ss" | "so" | "os" | "oo"
            if kind == "oo":
                continue  # ExtVP keeps no object-object tables
            factor = min(factor, self.catalog.selectivity(kind, p1, p2))
        return factor

    @staticmethod
    def _so_position(pattern: TriplePattern, name: str) -> Optional[str]:
        """'s'/'o' when *name* sits in a subject/object slot, else None."""
        if (
            isinstance(pattern.subject, Variable)
            and pattern.subject.name == name
        ):
            return "s"
        if (
            isinstance(pattern.object, Variable)
            and pattern.object.name == name
        ):
            return "o"
        return None

    def reduced_cardinality(
        self, pattern: TriplePattern, others: Sequence[TriplePattern]
    ) -> float:
        """Pattern cardinality after the strongest semi-join reduction."""
        base = self.pattern_cardinality(pattern)
        factor = 1.0
        for other in others:
            factor = min(factor, self.reduction_factor(pattern, other))
        return base * factor

    # ------------------------------------------------------------------
    # Subsets (order-independent, used by the DP planner)
    # ------------------------------------------------------------------

    def subset_cardinality(
        self, patterns: Sequence[TriplePattern]
    ) -> float:
        """Expected rows of joining every pattern in the subset."""
        if not patterns:
            return 1.0
        if len(patterns) == 1:
            return self.pattern_cardinality(patterns[0])
        star = self._star_cardinality(patterns)
        if star is not None:
            return star
        return self._independence_cardinality(patterns)

    def _star_cardinality(
        self, patterns: Sequence[TriplePattern]
    ) -> Optional[float]:
        """Characteristic-set estimate when the subset is a subject star."""
        first = patterns[0].subject
        if not isinstance(first, Variable):
            return None
        if not all(p.subject == first for p in patterns):
            return None
        predicate_names: List[str] = []
        for pattern in patterns:
            p = _n3(pattern.predicate)
            if p is None:
                return None
            predicate_names.append(p)
        rows = self.catalog.star_cardinality(predicate_names)
        if rows is None:
            return None
        # Bound objects filter the star the way a bound object filters a
        # single pattern: one value out of the predicate's distinct objects.
        for pattern in patterns:
            if _n3(pattern.object) is not None:
                stats = self.catalog.predicate_stats(_n3(pattern.predicate))
                rows /= max(stats.distinct_objects if stats else 1, 1)
        return rows

    def _independence_cardinality(
        self, patterns: Sequence[TriplePattern]
    ) -> float:
        result = 1.0
        others: List[List[TriplePattern]] = [
            [q for q in patterns if q is not p] for p in patterns
        ]
        for pattern, rest in zip(patterns, others):
            result *= self.reduced_cardinality(pattern, rest)
        # For each join variable keep the smallest distinct count and
        # divide by the rest (System-R).
        by_variable: Dict[str, List[float]] = {}
        for pattern in patterns:
            for variable in sorted(
                set(pattern.variables()), key=lambda v: v.name
            ):
                by_variable.setdefault(variable.name, []).append(
                    self.variable_distinct(pattern, variable.name)
                )
        for distincts in by_variable.values():
            if len(distincts) < 2:
                continue
            distincts.sort()
            for d in distincts[1:]:
                result /= max(d, 1.0)
        return result
