"""SPARQL tokenizer."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List


class SparqlParseError(ValueError):
    """Raised on malformed SPARQL text."""


KEYWORDS = {
    "SELECT", "ASK", "CONSTRUCT", "DESCRIBE",
    "WHERE", "PREFIX", "BASE", "DISTINCT", "REDUCED",
    "FILTER", "OPTIONAL", "UNION", "ORDER", "BY", "ASC", "DESC",
    "LIMIT", "OFFSET", "NOT", "IN", "TRUE", "FALSE", "A",
    "REGEX", "BOUND", "ISIRI", "ISURI", "ISLITERAL", "ISBLANK",
    "STR", "LANG", "DATATYPE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<var>[?$][A-Za-z_][A-Za-z0-9_]*)
  | (?P<uri><[^<>\s]*>)
  | (?P<string>(?:"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')(?:@[A-Za-z][A-Za-z0-9\-]*)?)
  | (?P<double>[+-]?\d+\.\d+(?:[eE][+-]?\d+)?)
  | (?P<integer>[+-]?\d+)
  | (?P<bnode>_:[A-Za-z0-9_]+)
  | (?P<pname>[A-Za-z_][\w\-]*:[\w\-.]*|:[\w\-.]+)
  | (?P<pname_ns>[A-Za-z_][\w\-]*:)
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|\|\||&&|[{}().,;=<>!*/+\-\^@])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | word | var | uri | string | integer | double | pname | bnode | op | eof
    value: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Lex SPARQL text into tokens."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SparqlParseError(
                "cannot lex SPARQL at position %d: %r"
                % (position, text[position : position + 20])
            )
        position = match.end()
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "word":
            upper = value.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, match.start()))
            else:
                raise SparqlParseError(
                    "unexpected bare word %r at position %d"
                    % (value, match.start())
                )
        elif kind == "pname_ns":
            tokens.append(Token("pname", value, match.start()))
        else:
            tokens.append(Token(kind, value, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens


class TokenStream:
    """Cursor over tokens with accept/expect helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._index += 1
        return token

    def accept(self, kind: str, value: str = None) -> bool:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            return False
        self.next()
        return True

    def expect(self, kind: str, value: str = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            raise SparqlParseError(
                "expected %s%s at position %d, found %r"
                % (
                    kind,
                    " %r" % value if value else "",
                    token.position,
                    token.value or "<eof>",
                )
            )
        return self.next()

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.value in keywords
