"""SPARQL: the standard query language for the semantic web (Section II-B).

A tokenizer and recursive-descent parser for the BGP+ fragment the surveyed
systems support (basic graph patterns, FILTER, OPTIONAL, UNION, DISTINCT,
ORDER BY, LIMIT/OFFSET, SELECT/ASK), translation to SPARQL algebra, a
reference evaluator over any triple source, query-shape classification
(star / linear / snowflake / complex), and solution-set containers.
"""

from repro.sparql.ast import (
    AskQuery,
    GroupGraphPattern,
    SelectQuery,
    TriplePattern,
    Variable,
)
from repro.sparql.parser import SparqlParseError, parse_sparql
from repro.sparql.algebra import evaluate, translate
from repro.sparql.results import Solution, SolutionSet
from repro.sparql.shapes import QueryShape, classify_shape
from repro.sparql.fragments import SparqlFragment, fragment_of

__all__ = [
    "AskQuery",
    "GroupGraphPattern",
    "QueryShape",
    "SelectQuery",
    "Solution",
    "SolutionSet",
    "SparqlFragment",
    "SparqlParseError",
    "TriplePattern",
    "Variable",
    "classify_shape",
    "evaluate",
    "fragment_of",
    "parse_sparql",
    "translate",
]
