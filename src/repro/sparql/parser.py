"""Recursive-descent SPARQL parser for the BGP+ fragment.

Supports PREFIX prologues, SELECT (DISTINCT) / ASK forms, basic graph
patterns with ``;``/``,`` shorthand, FILTER with the standard operator and
builtin set, OPTIONAL, UNION, nested groups, ORDER BY, LIMIT and OFFSET --
the union of the SPARQL features Table II attributes to the surveyed
systems.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import Literal, Term, URI
from repro.rdf.vocab import RDF, XSD
from repro.sparql.ast import (
    Arithmetic,
    AskQuery,
    BooleanExpr,
    Comparison,
    ConstructQuery,
    DescribeQuery,
    FilterExpr,
    FilterPattern,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    NotExpr,
    OptionalPattern,
    PatternTerm,
    Query,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnionPattern,
    VarExpr,
    Variable,
)
from repro.sparql.tokenizer import SparqlParseError, TokenStream, tokenize

_BUILTINS = {
    "REGEX", "BOUND", "ISIRI", "ISURI", "ISLITERAL", "ISBLANK",
    "STR", "LANG", "DATATYPE",
}


def parse_sparql(text: str) -> Query:
    """Parse SPARQL text into a :class:`SelectQuery` or :class:`AskQuery`."""
    stream = TokenStream(tokenize(text))
    parser = _Parser(stream)
    query = parser.parse_query()
    stream.expect("eof")
    return query


class _Parser:
    def __init__(self, stream: TokenStream) -> None:
        self.stream = stream
        self.namespaces = NamespaceManager()

    # -- prologue ------------------------------------------------------

    def parse_query(self) -> Query:
        while self.stream.at_keyword("PREFIX"):
            self.stream.next()
            prefix_token = self.stream.expect("pname")
            prefix = prefix_token.value.rstrip(":")
            uri_token = self.stream.expect("uri")
            self.namespaces.bind(prefix, uri_token.value[1:-1])
        if self.stream.at_keyword("SELECT"):
            return self._parse_select()
        if self.stream.at_keyword("ASK"):
            return self._parse_ask()
        if self.stream.at_keyword("CONSTRUCT"):
            return self._parse_construct()
        if self.stream.at_keyword("DESCRIBE"):
            return self._parse_describe()
        raise SparqlParseError(
            "expected SELECT, ASK, CONSTRUCT or DESCRIBE at position %d"
            % self.stream.peek().position
        )

    def _parse_construct(self) -> ConstructQuery:
        self.stream.expect("keyword", "CONSTRUCT")
        self.stream.expect("op", "{")
        template_group = GroupGraphPattern()
        while not self.stream.accept("op", "}"):
            if self.stream.peek().kind == "eof":
                raise SparqlParseError("unterminated CONSTRUCT template")
            self._parse_triples_into(template_group)
        template = [
            element
            for element in template_group.elements
            if isinstance(element, TriplePattern)
        ]
        if not template:
            raise SparqlParseError("empty CONSTRUCT template")
        self.stream.accept("keyword", "WHERE")
        where = self._parse_group()
        # LIMIT and OFFSET may come in either order; they page the
        # *sorted constructed graph* at the protocol layer (the engines
        # build the full graph -- see ConstructQuery's docstring).
        limit: Optional[int] = None
        offset = 0
        for _attempt in range(2):
            if self.stream.accept("keyword", "LIMIT"):
                limit = int(self.stream.expect("integer").value)
            elif self.stream.accept("keyword", "OFFSET"):
                offset = int(self.stream.expect("integer").value)
        return ConstructQuery(template, where, limit=limit, offset=offset)

    def _parse_describe(self) -> DescribeQuery:
        self.stream.expect("keyword", "DESCRIBE")
        variables: List[Variable] = []
        terms: List = []
        while True:
            token = self.stream.peek()
            if token.kind == "var":
                self.stream.next()
                variables.append(Variable(token.value[1:]))
            elif token.kind == "uri":
                self.stream.next()
                terms.append(URI(token.value[1:-1]))
            elif token.kind == "pname":
                self.stream.next()
                terms.append(self.namespaces.expand(token.value))
            else:
                break
        if not variables and not terms:
            raise SparqlParseError("DESCRIBE needs resources or variables")
        where = None
        if self.stream.at_keyword("WHERE") or (
            self.stream.peek().kind == "op" and self.stream.peek().value == "{"
        ):
            self.stream.accept("keyword", "WHERE")
            where = self._parse_group()
        if variables and where is None:
            raise SparqlParseError(
                "DESCRIBE with variables needs a WHERE clause"
            )
        return DescribeQuery(variables, terms, where)

    # -- query forms ----------------------------------------------------

    def _parse_select(self) -> SelectQuery:
        self.stream.expect("keyword", "SELECT")
        distinct = False
        if self.stream.accept("keyword", "DISTINCT"):
            distinct = True
        else:
            self.stream.accept("keyword", "REDUCED")
        variables: Optional[List[Variable]]
        if self.stream.accept("op", "*"):
            variables = None
        else:
            variables = []
            while self.stream.peek().kind == "var":
                variables.append(Variable(self.stream.next().value[1:]))
            if not variables:
                raise SparqlParseError(
                    "SELECT needs variables or * at position %d"
                    % self.stream.peek().position
                )
        self.stream.accept("keyword", "WHERE")
        where = self._parse_group()

        order_by: List[Tuple[Variable, bool]] = []
        if self.stream.accept("keyword", "ORDER"):
            self.stream.expect("keyword", "BY")
            while True:
                token = self.stream.peek()
                if token.kind == "var":
                    self.stream.next()
                    order_by.append((Variable(token.value[1:]), True))
                elif self.stream.accept("keyword", "ASC"):
                    self.stream.expect("op", "(")
                    var = self.stream.expect("var")
                    self.stream.expect("op", ")")
                    order_by.append((Variable(var.value[1:]), True))
                elif self.stream.accept("keyword", "DESC"):
                    self.stream.expect("op", "(")
                    var = self.stream.expect("var")
                    self.stream.expect("op", ")")
                    order_by.append((Variable(var.value[1:]), False))
                else:
                    break
            if not order_by:
                raise SparqlParseError("empty ORDER BY")

        limit: Optional[int] = None
        offset = 0
        # LIMIT and OFFSET may come in either order.
        for _attempt in range(2):
            if self.stream.accept("keyword", "LIMIT"):
                limit = int(self.stream.expect("integer").value)
            elif self.stream.accept("keyword", "OFFSET"):
                offset = int(self.stream.expect("integer").value)
        return SelectQuery(
            variables=variables,
            where=where,
            distinct=distinct,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def _parse_ask(self) -> AskQuery:
        self.stream.expect("keyword", "ASK")
        self.stream.accept("keyword", "WHERE")
        return AskQuery(self._parse_group())

    # -- group graph patterns --------------------------------------------

    def _parse_group(self) -> GroupGraphPattern:
        self.stream.expect("op", "{")
        group = GroupGraphPattern()
        while not self.stream.accept("op", "}"):
            token = self.stream.peek()
            if token.kind == "eof":
                raise SparqlParseError("unterminated group graph pattern")
            if self.stream.at_keyword("FILTER"):
                self.stream.next()
                group.elements.append(FilterPattern(self._parse_constraint()))
                self.stream.accept("op", ".")
            elif self.stream.at_keyword("OPTIONAL"):
                self.stream.next()
                group.elements.append(OptionalPattern(self._parse_group()))
                self.stream.accept("op", ".")
            elif token.kind == "op" and token.value == "{":
                element = self._parse_union_or_group()
                group.elements.append(element)
                self.stream.accept("op", ".")
            else:
                self._parse_triples_into(group)
        return group

    def _parse_union_or_group(self):
        first = self._parse_group()
        if not self.stream.at_keyword("UNION"):
            return first
        alternatives = [first]
        while self.stream.accept("keyword", "UNION"):
            alternatives.append(self._parse_group())
        return UnionPattern(alternatives)

    def _parse_triples_into(self, group: GroupGraphPattern) -> None:
        subject = self._parse_pattern_term(allow_literal=False)
        while True:
            predicate = self._parse_pattern_term(
                allow_literal=False, predicate_position=True
            )
            while True:
                obj = self._parse_pattern_term(allow_literal=True)
                group.elements.append(TriplePattern(subject, predicate, obj))
                if not self.stream.accept("op", ","):
                    break
            if self.stream.accept("op", ";"):
                token = self.stream.peek()
                # Trailing ';' is legal.
                if token.kind == "op" and token.value in (".", "}"):
                    break
                continue
            break
        self.stream.accept("op", ".")

    def _parse_pattern_term(
        self, allow_literal: bool, predicate_position: bool = False
    ) -> PatternTerm:
        token = self.stream.peek()
        if token.kind == "var":
            self.stream.next()
            return Variable(token.value[1:])
        if token.kind == "uri":
            self.stream.next()
            return URI(token.value[1:-1])
        if token.kind == "pname":
            self.stream.next()
            return self.namespaces.expand(token.value)
        if predicate_position and self.stream.accept("keyword", "A"):
            return RDF.type
        if token.kind == "bnode":
            self.stream.next()
            # Blank nodes in patterns behave as non-projectable variables.
            return Variable("__bnode_%s" % token.value[2:])
        if allow_literal:
            literal = self._try_parse_literal()
            if literal is not None:
                return literal
        raise SparqlParseError(
            "expected %s at position %d, found %r"
            % (
                "term" if allow_literal else "subject/predicate",
                token.position,
                token.value or "<eof>",
            )
        )

    def _try_parse_literal(self) -> Optional[Literal]:
        token = self.stream.peek()
        if token.kind == "string":
            self.stream.next()
            body = token.value
            language = None
            if not body.endswith(('"', "'")):
                body, language = body.rsplit("@", 1)
            lexical = body[1:-1].replace('\\"', '"').replace("\\'", "'")
            if language is not None:
                return Literal(lexical, language=language)
            if self.stream.accept("op", "^"):
                self.stream.expect("op", "^")
                dt_token = self.stream.next()
                if dt_token.kind == "uri":
                    return Literal(lexical, datatype=URI(dt_token.value[1:-1]))
                if dt_token.kind == "pname":
                    return Literal(
                        lexical, datatype=self.namespaces.expand(dt_token.value)
                    )
                raise SparqlParseError("expected datatype after ^^")
            return Literal(lexical)
        if token.kind == "integer":
            self.stream.next()
            return Literal(int(token.value))
        if token.kind == "double":
            self.stream.next()
            return Literal(float(token.value))
        if self.stream.accept("keyword", "TRUE"):
            return Literal(True)
        if self.stream.accept("keyword", "FALSE"):
            return Literal(False)
        return None

    # -- filter expressions -----------------------------------------------

    def _parse_constraint(self) -> FilterExpr:
        token = self.stream.peek()
        if token.kind == "op" and token.value == "(":
            self.stream.next()
            expr = self._parse_expr()
            self.stream.expect("op", ")")
            return expr
        if token.kind == "keyword" and token.value in _BUILTINS:
            return self._parse_builtin()
        raise SparqlParseError(
            "FILTER needs a bracketted expression or builtin at position %d"
            % token.position
        )

    def _parse_expr(self) -> FilterExpr:
        return self._parse_or()

    def _parse_or(self) -> FilterExpr:
        left = self._parse_and()
        while self.stream.accept("op", "||"):
            left = BooleanExpr("or", left, self._parse_and())
        return left

    def _parse_and(self) -> FilterExpr:
        left = self._parse_unary_not()
        while self.stream.accept("op", "&&"):
            left = BooleanExpr("and", left, self._parse_unary_not())
        return left

    def _parse_unary_not(self) -> FilterExpr:
        if self.stream.accept("op", "!"):
            return NotExpr(self._parse_unary_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> FilterExpr:
        left = self._parse_additive()
        token = self.stream.peek()
        if token.kind == "op" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self.stream.next()
            return Comparison(token.value, left, self._parse_additive())
        negated = False
        if self.stream.at_keyword("NOT"):
            self.stream.next()
            negated = True
        if self.stream.accept("keyword", "IN"):
            self.stream.expect("op", "(")
            options = [self._parse_additive()]
            while self.stream.accept("op", ","):
                options.append(self._parse_additive())
            self.stream.expect("op", ")")
            return InExpr(left, tuple(options), negated)
        if negated:
            raise SparqlParseError("NOT must be followed by IN")
        return left

    def _parse_additive(self) -> FilterExpr:
        left = self._parse_multiplicative()
        while True:
            token = self.stream.peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self.stream.next()
                left = Arithmetic(token.value, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> FilterExpr:
        left = self._parse_primary()
        while True:
            token = self.stream.peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self.stream.next()
                left = Arithmetic(token.value, left, self._parse_primary())
            else:
                return left

    def _parse_primary(self) -> FilterExpr:
        token = self.stream.peek()
        if token.kind == "op" and token.value == "(":
            self.stream.next()
            expr = self._parse_expr()
            self.stream.expect("op", ")")
            return expr
        if token.kind == "var":
            self.stream.next()
            return VarExpr(Variable(token.value[1:]))
        if token.kind == "keyword" and token.value in _BUILTINS:
            return self._parse_builtin()
        if token.kind == "uri":
            self.stream.next()
            return TermExpr(URI(token.value[1:-1]))
        if token.kind == "pname":
            self.stream.next()
            return TermExpr(self.namespaces.expand(token.value))
        literal = self._try_parse_literal()
        if literal is not None:
            return TermExpr(literal)
        raise SparqlParseError(
            "unexpected token %r in expression at position %d"
            % (token.value or "<eof>", token.position)
        )

    def _parse_builtin(self) -> FunctionCall:
        name = self.stream.next().value
        self.stream.expect("op", "(")
        args: List[FilterExpr] = []
        if not self.stream.accept("op", ")"):
            args.append(self._parse_expr())
            while self.stream.accept("op", ","):
                args.append(self._parse_expr())
            self.stream.expect("op", ")")
        arity = {
            "REGEX": (2, 3), "BOUND": (1, 1), "ISIRI": (1, 1),
            "ISURI": (1, 1), "ISLITERAL": (1, 1), "ISBLANK": (1, 1),
            "STR": (1, 1), "LANG": (1, 1), "DATATYPE": (1, 1),
        }[name]
        if not arity[0] <= len(args) <= arity[1]:
            raise SparqlParseError(
                "%s takes %d..%d arguments, got %d"
                % (name, arity[0], arity[1], len(args))
            )
        return FunctionCall(name, tuple(args))
