"""FILTER expression evaluation with SPARQL error semantics.

Type errors (comparing a URI with ``<``, arithmetic on strings, unbound
variables outside BOUND) raise :class:`FilterEvalError`; a FILTER whose
constraint errors rejects the solution, per the SPARQL specification.
"""

from __future__ import annotations

import re
from typing import Union

from repro.rdf.terms import BNode, Literal, Term, URI
from repro.sparql.ast import (
    Arithmetic,
    BooleanExpr,
    Comparison,
    FilterExpr,
    FunctionCall,
    InExpr,
    NotExpr,
    TermExpr,
    VarExpr,
)
from repro.sparql.results import Solution


class FilterEvalError(Exception):
    """A SPARQL expression evaluation error ('error' in the spec)."""


def _numeric(term: Term) -> Union[int, float]:
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, bool):
            raise FilterEvalError("boolean is not numeric")
        if isinstance(value, (int, float)):
            return value
    raise FilterEvalError("not a numeric literal: %r" % (term,))


def effective_boolean_value(term: Term) -> bool:
    """EBV per the spec: booleans, numbers (non-zero), strings (non-empty)."""
    if isinstance(term, Literal):
        value = term.to_python()
        if isinstance(value, bool):
            return value
        if isinstance(value, (int, float)):
            return value != 0
        return len(term.lexical) > 0
    raise FilterEvalError("no effective boolean value for %r" % (term,))


def evaluate_expression(expr: FilterExpr, solution: Solution) -> Term:
    """Evaluate to an RDF term, raising :class:`FilterEvalError` on error."""
    if isinstance(expr, TermExpr):
        return expr.term
    if isinstance(expr, VarExpr):
        value = solution.get(expr.variable)
        if value is None:
            raise FilterEvalError("unbound variable ?%s" % expr.variable.name)
        return value
    if isinstance(expr, BooleanExpr):
        # SPARQL || and && recover from errors when the other side decides.
        left_error = right_error = False
        left = right = False
        try:
            left = effective_boolean_value(
                evaluate_expression(expr.left, solution)
            )
        except FilterEvalError:
            left_error = True
        try:
            right = effective_boolean_value(
                evaluate_expression(expr.right, solution)
            )
        except FilterEvalError:
            right_error = True
        if expr.op == "or":
            if (not left_error and left) or (not right_error and right):
                return Literal(True)
            if left_error or right_error:
                raise FilterEvalError("error in ||")
            return Literal(False)
        if (not left_error and not left) or (not right_error and not right):
            return Literal(False)
        if left_error or right_error:
            raise FilterEvalError("error in &&")
        return Literal(True)
    if isinstance(expr, NotExpr):
        value = effective_boolean_value(
            evaluate_expression(expr.child, solution)
        )
        return Literal(not value)
    if isinstance(expr, Comparison):
        return Literal(_compare(expr, solution))
    if isinstance(expr, Arithmetic):
        left = _numeric(evaluate_expression(expr.left, solution))
        right = _numeric(evaluate_expression(expr.right, solution))
        if expr.op == "+":
            return Literal(left + right)
        if expr.op == "-":
            return Literal(left - right)
        if expr.op == "*":
            return Literal(left * right)
        if right == 0:
            raise FilterEvalError("division by zero")
        return Literal(left / right)
    if isinstance(expr, InExpr):
        needle = evaluate_expression(expr.needle, solution)
        found = any(
            needle == evaluate_expression(option, solution)
            for option in expr.options
        )
        return Literal(found != expr.negated)
    if isinstance(expr, FunctionCall):
        return _call(expr, solution)
    raise FilterEvalError("unknown expression %r" % (expr,))


def _compare(expr: Comparison, solution: Solution) -> bool:
    left = evaluate_expression(expr.left, solution)
    right = evaluate_expression(expr.right, solution)
    if expr.op == "=":
        return _term_equal(left, right)
    if expr.op == "!=":
        return not _term_equal(left, right)
    # Ordering comparisons need literals of comparable kinds.
    if not isinstance(left, Literal) or not isinstance(right, Literal):
        raise FilterEvalError("cannot order non-literals")
    lv, rv = left.to_python(), right.to_python()
    if isinstance(lv, bool) or isinstance(rv, bool):
        raise FilterEvalError("cannot order booleans")
    numeric_left = isinstance(lv, (int, float))
    numeric_right = isinstance(rv, (int, float))
    if numeric_left != numeric_right:
        raise FilterEvalError("type mismatch in comparison")
    if expr.op == "<":
        return lv < rv
    if expr.op == "<=":
        return lv <= rv
    if expr.op == ">":
        return lv > rv
    return lv >= rv


def _term_equal(left: Term, right: Term) -> bool:
    if isinstance(left, Literal) and isinstance(right, Literal):
        # Value-based equality for numerics ("1"^^int = "1.0"^^double).
        lv, rv = left.to_python(), right.to_python()
        if isinstance(lv, (int, float)) and isinstance(rv, (int, float)) \
                and not isinstance(lv, bool) and not isinstance(rv, bool):
            return lv == rv
    return left == right


def _call(expr: FunctionCall, solution: Solution) -> Term:
    name = expr.name
    if name == "BOUND":
        arg = expr.args[0]
        if not isinstance(arg, VarExpr):
            raise FilterEvalError("BOUND takes a variable")
        return Literal(solution.get(arg.variable) is not None)
    values = [evaluate_expression(a, solution) for a in expr.args]
    if name == "REGEX":
        text = _string_value(values[0])
        pattern = _string_value(values[1])
        flags = 0
        if len(values) == 3 and "i" in _string_value(values[2]):
            flags = re.IGNORECASE
        return Literal(re.search(pattern, text, flags) is not None)
    if name in ("ISIRI", "ISURI"):
        return Literal(isinstance(values[0], URI))
    if name == "ISLITERAL":
        return Literal(isinstance(values[0], Literal))
    if name == "ISBLANK":
        return Literal(isinstance(values[0], BNode))
    if name == "STR":
        return Literal(_string_value(values[0]))
    if name == "LANG":
        if not isinstance(values[0], Literal):
            raise FilterEvalError("LANG takes a literal")
        return Literal(values[0].language or "")
    if name == "DATATYPE":
        if not isinstance(values[0], Literal):
            raise FilterEvalError("DATATYPE takes a literal")
        if values[0].datatype is not None:
            return values[0].datatype
        return URI("http://www.w3.org/2001/XMLSchema#string")
    raise FilterEvalError("unknown function %s" % name)


def _string_value(term: Term) -> str:
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, URI):
        return term.value
    raise FilterEvalError("no string value for %r" % (term,))


def passes_filter(expr: FilterExpr, solution: Solution) -> bool:
    """True when the constraint holds; errors reject the solution."""
    try:
        return effective_boolean_value(evaluate_expression(expr, solution))
    except FilterEvalError:
        return False
