"""SPARQL fragment detection: BGP vs BGP+ (the Table II column).

"All systems start from evaluating simple blocks of triple patterns,
called Basic Graph Patterns (BGP), and continue building on top of this,
for more operations (BGP+)."  ``features_of`` lists the operations a query
uses; engines declare the features they support and the harness routes
queries accordingly.
"""

from __future__ import annotations

from enum import Enum
from typing import Set

from repro.sparql.ast import (
    FilterPattern,
    GroupGraphPattern,
    OptionalPattern,
    Query,
    SelectQuery,
    TriplePattern,
    UnionPattern,
)


class SparqlFragment(Enum):
    BGP = "BGP"
    BGP_PLUS = "BGP+"


#: Feature labels used in engine profiles and query analysis.
FEATURE_BGP = "BGP"
FEATURE_FILTER = "FILTER"
FEATURE_OPTIONAL = "OPTIONAL"
FEATURE_UNION = "UNION"
FEATURE_DISTINCT = "DISTINCT"
FEATURE_ORDER_BY = "ORDER BY"
FEATURE_LIMIT = "LIMIT"
FEATURE_OFFSET = "OFFSET"

ALL_FEATURES = frozenset(
    {
        FEATURE_BGP,
        FEATURE_FILTER,
        FEATURE_OPTIONAL,
        FEATURE_UNION,
        FEATURE_DISTINCT,
        FEATURE_ORDER_BY,
        FEATURE_LIMIT,
        FEATURE_OFFSET,
    }
)


def _group_features(group: GroupGraphPattern) -> Set[str]:
    features: Set[str] = set()
    for element in group.elements:
        if isinstance(element, TriplePattern):
            features.add(FEATURE_BGP)
        elif isinstance(element, FilterPattern):
            features.add(FEATURE_FILTER)
        elif isinstance(element, OptionalPattern):
            features.add(FEATURE_OPTIONAL)
            features |= _group_features(element.pattern)
        elif isinstance(element, UnionPattern):
            features.add(FEATURE_UNION)
            for branch in element.alternatives:
                features |= _group_features(branch)
        elif isinstance(element, GroupGraphPattern):
            features |= _group_features(element)
    return features


def features_of(query: Query) -> Set[str]:
    """The SPARQL features *query* uses."""
    where = getattr(query, "where", None)
    features = _group_features(where) if where is not None else set()
    if isinstance(query, SelectQuery):
        if query.distinct:
            features.add(FEATURE_DISTINCT)
        if query.order_by:
            features.add(FEATURE_ORDER_BY)
        if query.limit is not None:
            features.add(FEATURE_LIMIT)
        if query.offset:
            features.add(FEATURE_OFFSET)
    return features


def fragment_of(query: Query) -> SparqlFragment:
    """BGP when the query is pure triple patterns; otherwise BGP+."""
    if features_of(query) <= {FEATURE_BGP}:
        return SparqlFragment.BGP
    return SparqlFragment.BGP_PLUS
