"""Solutions and solution sets (bag semantics).

A :class:`Solution` is a partial mapping from variables to RDF terms; a
:class:`SolutionSet` is a multiset of solutions with a header of projected
variables.  Cross-engine correctness checks compare solution sets as
multisets, which is what SPARQL's bag semantics requires.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.rdf.terms import Term
from repro.sparql.ast import Variable


class Solution:
    """An immutable variable -> term binding."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Dict[str, Term]] = None) -> None:
        object.__setattr__(self, "_bindings", dict(bindings or {}))

    def __setattr__(self, name, value):
        raise AttributeError("Solution is immutable")

    def get(self, variable) -> Optional[Term]:
        name = variable.name if isinstance(variable, Variable) else variable
        return self._bindings.get(name)

    def __getitem__(self, variable) -> Term:
        name = variable.name if isinstance(variable, Variable) else variable
        return self._bindings[name]

    def __contains__(self, variable) -> bool:
        name = variable.name if isinstance(variable, Variable) else variable
        return name in self._bindings

    def variables(self) -> List[str]:
        return sorted(self._bindings)

    def items(self) -> Iterable[Tuple[str, Term]]:
        return self._bindings.items()

    def bind(self, variable, term: Term) -> "Solution":
        """A new solution with one more binding."""
        name = variable.name if isinstance(variable, Variable) else variable
        merged = dict(self._bindings)
        merged[name] = term
        return Solution(merged)

    def compatible(self, other: "Solution") -> bool:
        """SPARQL compatibility: shared variables agree."""
        if len(self._bindings) > len(other._bindings):
            return other.compatible(self)
        for name, term in self._bindings.items():
            if name in other._bindings and other._bindings[name] != term:
                return False
        return True

    def merge(self, other: "Solution") -> "Solution":
        merged = dict(self._bindings)
        merged.update(other._bindings)
        return Solution(merged)

    def project(self, variables: Iterable) -> "Solution":
        names = [
            v.name if isinstance(v, Variable) else v for v in variables
        ]
        return Solution(
            {n: self._bindings[n] for n in names if n in self._bindings}
        )

    def frozen(self) -> frozenset:
        return frozenset(self._bindings.items())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Solution) and self._bindings == other._bindings

    def __hash__(self) -> int:
        return hash(self.frozen())

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        inner = ", ".join(
            "?%s=%s" % (k, v.n3()) for k, v in sorted(self._bindings.items())
        )
        return "{%s}" % inner


class SolutionSet:
    """A multiset of solutions plus the projected variable header."""

    def __init__(
        self,
        variables: Iterable,
        solutions: Iterable[Solution] = (),
    ) -> None:
        self.variables: List[str] = [
            v.name if isinstance(v, Variable) else v for v in variables
        ]
        self.solutions: List[Solution] = list(solutions)

    def __len__(self) -> int:
        return len(self.solutions)

    def __iter__(self) -> Iterator[Solution]:
        return iter(self.solutions)

    def __bool__(self) -> bool:
        return bool(self.solutions)

    def add(self, solution: Solution) -> None:
        self.solutions.append(solution)

    def as_multiset(self) -> Counter:
        return Counter(s.frozen() for s in self.solutions)

    def same_as(self, other: "SolutionSet") -> bool:
        """Multiset equality, ignoring solution order."""
        return self.as_multiset() == other.as_multiset()

    def distinct(self) -> "SolutionSet":
        seen = set()
        out = []
        for solution in self.solutions:
            key = solution.frozen()
            if key not in seen:
                seen.add(key)
                out.append(solution)
        return SolutionSet(self.variables, out)

    def to_table(self) -> List[Tuple]:
        """Rows of n3-rendered strings, ordered by the header."""
        out = []
        for solution in self.solutions:
            out.append(
                tuple(
                    solution.get(v).n3() if solution.get(v) is not None else ""
                    for v in self.variables
                )
            )
        return out

    def __repr__(self) -> str:
        return "SolutionSet(vars=%r, size=%d)" % (self.variables, len(self))
