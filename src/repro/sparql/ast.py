"""SPARQL abstract syntax: variables, triple patterns, group graph patterns,
filter expressions and query forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.rdf.terms import Term


class Variable:
    """A SPARQL variable (``?x`` / ``$x``)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)

    def __setattr__(self, attr, value):
        raise AttributeError("Variable is immutable")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __repr__(self) -> str:
        return "?%s" % self.name


#: A position in a triple pattern: bound term or variable.
PatternTerm = Union[Term, Variable]


@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern: each position may be a term or a variable."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def positions(self) -> Tuple[PatternTerm, PatternTerm, PatternTerm]:
        return (self.subject, self.predicate, self.object)

    def variables(self) -> List[Variable]:
        return [p for p in self.positions() if isinstance(p, Variable)]

    def variable_positions(self) -> List[Tuple[str, Variable]]:
        """(position name, variable) pairs for the unbound positions."""
        out = []
        for name, value in zip(("subject", "predicate", "object"), self.positions()):
            if isinstance(value, Variable):
                out.append((name, value))
        return out

    def bound_count(self) -> int:
        """How many positions are constants (S2RDF orders by this)."""
        return sum(1 for p in self.positions() if not isinstance(p, Variable))

    def __repr__(self) -> str:
        def show(p: PatternTerm) -> str:
            return repr(p) if isinstance(p, Variable) else p.n3()

        return "%s %s %s" % tuple(show(p) for p in self.positions())


# ----------------------------------------------------------------------
# Filter expressions
# ----------------------------------------------------------------------


class FilterExpr:
    """Base class for FILTER constraint expressions."""


@dataclass(frozen=True)
class VarExpr(FilterExpr):
    variable: Variable


@dataclass(frozen=True)
class TermExpr(FilterExpr):
    term: Term


@dataclass(frozen=True)
class Comparison(FilterExpr):
    op: str  # = != < <= > >=
    left: FilterExpr
    right: FilterExpr


@dataclass(frozen=True)
class BooleanExpr(FilterExpr):
    op: str  # and | or
    left: FilterExpr
    right: FilterExpr


@dataclass(frozen=True)
class NotExpr(FilterExpr):
    child: FilterExpr


@dataclass(frozen=True)
class Arithmetic(FilterExpr):
    op: str  # + - * /
    left: FilterExpr
    right: FilterExpr


@dataclass(frozen=True)
class FunctionCall(FilterExpr):
    """Builtins: REGEX, BOUND, ISIRI, ISURI, ISLITERAL, ISBLANK, STR, LANG."""

    name: str
    args: Tuple[FilterExpr, ...]


@dataclass(frozen=True)
class InExpr(FilterExpr):
    needle: FilterExpr
    options: Tuple[FilterExpr, ...]
    negated: bool = False


# ----------------------------------------------------------------------
# Group graph patterns
# ----------------------------------------------------------------------


class PatternElement:
    """Base class for elements inside a group graph pattern."""


@dataclass
class GroupGraphPattern(PatternElement):
    """A ``{ ... }`` block: triples, filters, optionals, unions, subgroups."""

    elements: List[PatternElement] = field(default_factory=list)

    def triple_patterns(self) -> List[TriplePattern]:
        """All triple patterns anywhere inside this group (recursively)."""
        out: List[TriplePattern] = []
        for element in self.elements:
            if isinstance(element, TriplePattern):
                out.append(element)
            elif isinstance(element, GroupGraphPattern):
                out.extend(element.triple_patterns())
            elif isinstance(element, OptionalPattern):
                out.extend(element.pattern.triple_patterns())
            elif isinstance(element, UnionPattern):
                for alternative in element.alternatives:
                    out.extend(alternative.triple_patterns())
        return out

    def filters(self) -> List["FilterPattern"]:
        return [e for e in self.elements if isinstance(e, FilterPattern)]


@dataclass
class FilterPattern(PatternElement):
    expression: FilterExpr


@dataclass
class OptionalPattern(PatternElement):
    pattern: GroupGraphPattern


@dataclass
class UnionPattern(PatternElement):
    alternatives: List[GroupGraphPattern]


# ----------------------------------------------------------------------
# Query forms
# ----------------------------------------------------------------------


@dataclass
class SelectQuery:
    """SELECT: projection, pattern and solution modifiers (Section II-B)."""

    variables: Optional[List[Variable]]  # None means SELECT *
    where: GroupGraphPattern
    distinct: bool = False
    order_by: List[Tuple[Variable, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    def projected(self) -> List[Variable]:
        """The projection, resolving ``*`` to all visible variables."""
        if self.variables is not None:
            return list(self.variables)
        seen: List[Variable] = []
        for pattern in self.where.triple_patterns():
            for variable in pattern.variables():
                if not variable.name.startswith("__") and variable not in seen:
                    seen.append(variable)
        return seen


@dataclass
class AskQuery:
    """ASK: a yes/no answer (one of the output types of Section II-B)."""

    where: GroupGraphPattern


@dataclass
class ConstructQuery:
    """CONSTRUCT: "construction of new triples from these values".

    *template* triples are instantiated once per solution of *where*;
    instantiations with unbound variables or invalid positions (literal
    subject etc.) are skipped, per the SPARQL specification.

    ``limit``/``offset`` page the *constructed graph*, not the WHERE
    solutions: the wire protocol sorts the instantiated triples into
    their canonical N-Triples order and slices that total order, so
    pages at a fixed graph version are disjoint and exhaustive
    (docs/FEDERATION.md; the federated harvester depends on this).
    Engines never see the slice -- it is applied at the serialization
    boundary (:func:`repro.server.protocol.canonical_result`).
    """

    template: List[TriplePattern]
    where: GroupGraphPattern
    limit: Optional[int] = None
    offset: int = 0


@dataclass
class DescribeQuery:
    """DESCRIBE: "descriptions of resources".

    Resources are either given directly (*terms*) or found by evaluating
    *where* and collecting the bindings of *variables*.  The description
    produced is the concise bounded form: all triples with the resource
    as subject.
    """

    variables: List[Variable]
    terms: List[Term]
    where: Optional[GroupGraphPattern] = None


Query = Union[SelectQuery, AskQuery, ConstructQuery, DescribeQuery]
