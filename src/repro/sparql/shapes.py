"""Query shape classification (Section II-B of the paper).

Star-shaped queries join triple patterns on a shared subject variable
(subject-subject joins); linear queries chain subject-object joins;
snowflakes combine several stars; anything else is complex.  Shapes drive
workload generation and benchmark reporting, since the paper's systems
differ exactly in which shapes they execute locally.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Sequence, Set, Tuple

from repro.sparql.ast import Query, TriplePattern, Variable


class QueryShape(Enum):
    EMPTY = "empty"
    SINGLE = "single"
    STAR = "star"
    LINEAR = "linear"
    SNOWFLAKE = "snowflake"
    COMPLEX = "complex"


class JoinKind(Enum):
    """Join classification by the positions the shared variable occupies."""

    SUBJECT_SUBJECT = "SS"
    SUBJECT_OBJECT = "SO"
    OBJECT_SUBJECT = "OS"
    OBJECT_OBJECT = "OO"
    OTHER = "other"  # a predicate position participates


def _positions_of(pattern: TriplePattern, variable: Variable) -> Set[str]:
    out = set()
    if pattern.subject == variable:
        out.add("s")
    if pattern.predicate == variable:
        out.add("p")
    if pattern.object == variable:
        out.add("o")
    return out


def join_edges(
    patterns: Sequence[TriplePattern],
) -> List[Tuple[int, int, Variable, JoinKind]]:
    """All pairwise joins: (pattern index, pattern index, variable, kind)."""
    edges = []
    for i in range(len(patterns)):
        for j in range(i + 1, len(patterns)):
            shared = set(patterns[i].variables()) & set(patterns[j].variables())
            for variable in sorted(shared, key=lambda v: v.name):
                pi = _positions_of(patterns[i], variable)
                pj = _positions_of(patterns[j], variable)
                if "p" in pi or "p" in pj:
                    kind = JoinKind.OTHER
                elif "s" in pi and "s" in pj:
                    kind = JoinKind.SUBJECT_SUBJECT
                elif "s" in pi and "o" in pj:
                    kind = JoinKind.SUBJECT_OBJECT
                elif "o" in pi and "s" in pj:
                    kind = JoinKind.OBJECT_SUBJECT
                else:
                    kind = JoinKind.OBJECT_OBJECT
                edges.append((i, j, variable, kind))
    return edges


def _is_star(patterns: Sequence[TriplePattern]) -> bool:
    """Every pattern shares one subject variable (subject-subject joins)."""
    first = patterns[0].subject
    if not isinstance(first, Variable):
        return False
    return all(p.subject == first for p in patterns)


def _is_linear(patterns: Sequence[TriplePattern]) -> bool:
    """Patterns form a chain of subject-object joins.

    Some ordering of the patterns must satisfy: object variable of step i
    equals subject variable of step i+1, and no other variables are shared.
    """
    n = len(patterns)
    if n < 2:
        return False
    edges = join_edges(patterns)
    if len(edges) != n - 1:
        return False
    degree: Dict[int, int] = {i: 0 for i in range(n)}
    for i, j, _var, kind in edges:
        if kind not in (JoinKind.SUBJECT_OBJECT, JoinKind.OBJECT_SUBJECT):
            return False
        degree[i] += 1
        degree[j] += 1
    endpoints = [i for i, d in degree.items() if d == 1]
    middles = [i for i, d in degree.items() if d == 2]
    return len(endpoints) == 2 and len(endpoints) + len(middles) == n


def _connected(patterns: Sequence[TriplePattern]) -> bool:
    n = len(patterns)
    if n <= 1:
        return True
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(n)}
    for i, j, _var, _kind in join_edges(patterns):
        adjacency[i].add(j)
        adjacency[j].add(i)
    seen = {0}
    stack = [0]
    while stack:
        node = stack.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                stack.append(neighbour)
    return len(seen) == n


def _is_snowflake(patterns: Sequence[TriplePattern]) -> bool:
    """Several stars connected by subject-object links.

    Operationally: group patterns by subject; at least two groups have two
    or more patterns (the stars); the contracted star graph is connected;
    and every inter-group join is subject-object (no OO or predicate
    joins).
    """
    groups: Dict[object, List[int]] = {}
    for index, pattern in enumerate(patterns):
        groups.setdefault(pattern.subject, []).append(index)
    star_groups = [members for members in groups.values() if len(members) >= 2]
    if len(star_groups) < 2:
        return False
    group_of = {}
    for key, members in groups.items():
        for member in members:
            group_of[member] = key
    for i, j, _var, kind in join_edges(patterns):
        if group_of[i] == group_of[j]:
            if kind is not JoinKind.SUBJECT_SUBJECT:
                return False
        else:
            if kind not in (JoinKind.SUBJECT_OBJECT, JoinKind.OBJECT_SUBJECT):
                return False
    return _connected(patterns)


def classify_patterns(patterns: Sequence[TriplePattern]) -> QueryShape:
    """Shape of a list of triple patterns."""
    if not patterns:
        return QueryShape.EMPTY
    if len(patterns) == 1:
        return QueryShape.SINGLE
    if _is_star(patterns):
        return QueryShape.STAR
    if _is_linear(patterns):
        return QueryShape.LINEAR
    if _is_snowflake(patterns):
        return QueryShape.SNOWFLAKE
    return QueryShape.COMPLEX


def classify_shape(query: Query) -> QueryShape:
    """Shape of a query's full set of triple patterns."""
    return classify_patterns(query.where.triple_patterns())
