"""SPARQL algebra: translation from the AST and a reference evaluator.

The reference evaluator runs locally against any triple source exposing the
``triples((s, p, o))`` lookup protocol of :class:`repro.rdf.graph.RDFGraph`.
It defines correct answers; every distributed engine in ``repro.systems``
is validated against it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple, Union

from repro.rdf.terms import Term
from repro.sparql.ast import (
    AskQuery,
    FilterExpr,
    FilterPattern,
    GroupGraphPattern,
    OptionalPattern,
    Query,
    SelectQuery,
    TriplePattern,
    UnionPattern,
    Variable,
)
from repro.sparql.filtereval import passes_filter
from repro.sparql.results import Solution, SolutionSet


# ----------------------------------------------------------------------
# Algebra nodes
# ----------------------------------------------------------------------


class AlgebraNode:
    """Base class for algebra operators."""

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self._describe()]
        for child in self._children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__

    def _children(self) -> List["AlgebraNode"]:
        return []


class BGP(AlgebraNode):
    """A basic graph pattern: a conjunction of triple patterns."""

    def __init__(self, patterns: List[TriplePattern]) -> None:
        self.patterns = list(patterns)

    def _describe(self) -> str:
        return "BGP(%s)" % "; ".join(repr(p) for p in self.patterns)


class AlgebraJoin(AlgebraNode):
    def __init__(self, left: AlgebraNode, right: AlgebraNode) -> None:
        self.left = left
        self.right = right

    def _children(self):
        return [self.left, self.right]


class LeftJoin(AlgebraNode):
    """OPTIONAL: keep left solutions even without a compatible right."""

    def __init__(self, left: AlgebraNode, right: AlgebraNode) -> None:
        self.left = left
        self.right = right

    def _children(self):
        return [self.left, self.right]


class AlgebraUnion(AlgebraNode):
    def __init__(self, branches: List[AlgebraNode]) -> None:
        self.branches = list(branches)

    def _children(self):
        return self.branches


class AlgebraFilter(AlgebraNode):
    def __init__(self, expression: FilterExpr, child: AlgebraNode) -> None:
        self.expression = expression
        self.child = child

    def _children(self):
        return [self.child]


# ----------------------------------------------------------------------
# Translation
# ----------------------------------------------------------------------


def translate_group(group: GroupGraphPattern) -> AlgebraNode:
    """Standard SPARQL group translation.

    Adjacent triple patterns accumulate into BGPs; OPTIONAL becomes
    LeftJoin with what came before; group-level FILTERs apply to the whole
    group's result.
    """
    current: Optional[AlgebraNode] = None
    bgp_buffer: List[TriplePattern] = []
    filters: List[FilterExpr] = []

    def flush_bgp() -> None:
        nonlocal current
        if bgp_buffer:
            node = BGP(list(bgp_buffer))
            bgp_buffer.clear()
            current = node if current is None else AlgebraJoin(current, node)

    for element in group.elements:
        if isinstance(element, TriplePattern):
            bgp_buffer.append(element)
        elif isinstance(element, FilterPattern):
            filters.append(element.expression)
        elif isinstance(element, OptionalPattern):
            flush_bgp()
            if current is None:
                current = BGP([])
            current = LeftJoin(current, translate_group(element.pattern))
        elif isinstance(element, UnionPattern):
            flush_bgp()
            union = AlgebraUnion(
                [translate_group(branch) for branch in element.alternatives]
            )
            current = union if current is None else AlgebraJoin(current, union)
        elif isinstance(element, GroupGraphPattern):
            flush_bgp()
            sub = translate_group(element)
            current = sub if current is None else AlgebraJoin(current, sub)
        else:
            raise TypeError("unknown pattern element %r" % (element,))
    flush_bgp()
    if current is None:
        current = BGP([])
    for expression in filters:
        current = AlgebraFilter(expression, current)
    return current


def translate(query: Query) -> AlgebraNode:
    """Algebra tree for the query's WHERE clause."""
    return translate_group(query.where)


# ----------------------------------------------------------------------
# Reference evaluation
# ----------------------------------------------------------------------


def match_pattern(
    source, pattern: TriplePattern, solution: Solution
) -> Iterator[Solution]:
    """Extend *solution* with matches of one pattern against *source*."""

    def resolve(position) -> Optional[Term]:
        if isinstance(position, Variable):
            return solution.get(position)
        return position

    lookup = (
        resolve(pattern.subject),
        resolve(pattern.predicate),
        resolve(pattern.object),
    )
    for triple in source.triples(lookup):
        extended = solution
        consistent = True
        for position, value in zip(
            pattern.positions(), triple.as_tuple()
        ):
            if isinstance(position, Variable):
                bound = extended.get(position)
                if bound is None:
                    extended = extended.bind(position, value)
                elif bound != value:
                    consistent = False
                    break
        if consistent:
            yield extended


def evaluate_bgp(
    source, patterns: Iterable[TriplePattern]
) -> List[Solution]:
    solutions = [Solution()]
    for pattern in patterns:
        next_solutions: List[Solution] = []
        for solution in solutions:
            next_solutions.extend(match_pattern(source, pattern, solution))
        solutions = next_solutions
        if not solutions:
            break
    return solutions


def evaluate_node(node: AlgebraNode, source) -> List[Solution]:
    if isinstance(node, BGP):
        return evaluate_bgp(source, node.patterns)
    if isinstance(node, AlgebraJoin):
        left = evaluate_node(node.left, source)
        right = evaluate_node(node.right, source)
        out = []
        for l in left:
            for r in right:
                if l.compatible(r):
                    out.append(l.merge(r))
        return out
    if isinstance(node, LeftJoin):
        left = evaluate_node(node.left, source)
        right = evaluate_node(node.right, source)
        out = []
        for l in left:
            matched = False
            for r in right:
                if l.compatible(r):
                    out.append(l.merge(r))
                    matched = True
            if not matched:
                out.append(l)
        return out
    if isinstance(node, AlgebraUnion):
        out = []
        for branch in node.branches:
            out.extend(evaluate_node(branch, source))
        return out
    if isinstance(node, AlgebraFilter):
        return [
            s
            for s in evaluate_node(node.child, source)
            if passes_filter(node.expression, s)
        ]
    raise TypeError("unknown algebra node %r" % (node,))


def apply_solution_modifiers(
    query: SelectQuery, solutions: List[Solution]
) -> SolutionSet:
    """ORDER BY -> projection -> DISTINCT -> OFFSET/LIMIT, per the spec."""
    ordered = list(solutions)
    if query.order_by:
        # SPARQL leaves tie order unspecified; pin it to the canonical
        # full-row order (the sorts below are stable) so every engine and
        # every physical plan serializes ORDER BY results byte-identically.
        ordered.sort(
            key=lambda s: tuple(
                (name, term.sort_key())
                for name, term in sorted(s.items(), key=lambda kv: kv[0])
            )
        )
    for variable, ascending in reversed(query.order_by):
        ordered.sort(
            key=lambda s: (
                s.get(variable) is not None,
                s.get(variable).sort_key() if s.get(variable) is not None else None,
            ),
            reverse=not ascending,
        )
    projected_vars = query.projected()
    result = SolutionSet(
        projected_vars,
        (s.project(projected_vars) for s in ordered),
    )
    if query.distinct:
        result = result.distinct()
    if query.offset:
        result = SolutionSet(result.variables, result.solutions[query.offset :])
    if query.limit is not None:
        result = SolutionSet(
            result.variables, result.solutions[: query.limit]
        )
    return result


def instantiate_template(
    template: List[TriplePattern], solutions: Iterable[Solution]
):
    """CONSTRUCT template instantiation -> a new RDF graph.

    Instantiations with unbound variables or terms in invalid positions
    (e.g. a literal subject) are skipped, per the specification.
    """
    from repro.rdf.graph import RDFGraph
    from repro.rdf.triple import Triple, TripleValidityError

    graph = RDFGraph()
    for solution in solutions:
        for pattern in template:
            values = []
            ok = True
            for position in pattern.positions():
                if isinstance(position, Variable):
                    bound = solution.get(position)
                    if bound is None:
                        ok = False
                        break
                    values.append(bound)
                else:
                    values.append(position)
            if not ok:
                continue
            try:
                graph.add(Triple(*values))
            except TripleValidityError:
                continue
    return graph


def describe_resources(source, resources: Iterable):
    """The concise description of resources: their subject triples."""
    from repro.rdf.graph import RDFGraph

    graph = RDFGraph()
    for resource in resources:
        for triple in source.triples((resource, None, None)):
            graph.add(triple)
    return graph


def evaluate(query: Query, source):
    """Evaluate a query against a triple source.

    Returns a :class:`SolutionSet` for SELECT, a boolean for ASK, and an
    :class:`~repro.rdf.graph.RDFGraph` for CONSTRUCT/DESCRIBE -- the four
    output types of Section II-B.
    """
    from repro.sparql.ast import ConstructQuery, DescribeQuery

    if isinstance(query, ConstructQuery):
        solutions = evaluate_node(translate_group(query.where), source)
        return instantiate_template(query.template, solutions)
    if isinstance(query, DescribeQuery):
        resources = list(query.terms)
        if query.where is not None:
            for solution in evaluate_node(
                translate_group(query.where), source
            ):
                for variable in query.variables:
                    bound = solution.get(variable)
                    if bound is not None:
                        resources.append(bound)
        return describe_resources(source, dict.fromkeys(resources))
    node = translate(query)
    solutions = evaluate_node(node, source)
    if isinstance(query, AskQuery):
        return bool(solutions)
    return apply_solution_modifiers(query, solutions)
