"""The system registry: every surveyed engine's profile, queryable along
the taxonomy's dimensions.  Table I and Table II are views over this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.core.dimensions import DataModel, SparkAbstraction


class SystemRegistry:
    """An ordered collection of engine classes keyed by profile."""

    def __init__(self, engine_classes: Sequence[type] = ()) -> None:
        self._classes: List[type] = []
        for cls in engine_classes:
            self.register(cls)

    def register(self, engine_class: type) -> None:
        profile = getattr(engine_class, "profile", None)
        if profile is None:
            raise ValueError(
                "%r has no profile attribute" % engine_class
            )
        if any(c.profile.name == profile.name for c in self._classes):
            raise ValueError("duplicate system name %r" % profile.name)
        self._classes.append(engine_class)

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self):
        return iter(self._classes)

    def engine_classes(self) -> List[type]:
        return list(self._classes)

    def profiles(self) -> List:
        return [cls.profile for cls in self._classes]

    def by_name(self, name: str) -> type:
        for cls in self._classes:
            if cls.profile.name == name:
                return cls
        raise KeyError("unknown system %r" % name)

    def classify(
        self,
        data_model: Optional[DataModel] = None,
        abstraction: Optional[SparkAbstraction] = None,
    ) -> List[type]:
        """Engines matching the requested taxonomy cell."""
        out = []
        for cls in self._classes:
            profile = cls.profile
            if data_model is not None and profile.data_model != data_model:
                continue
            if (
                abstraction is not None
                and abstraction not in profile.abstractions
            ):
                continue
            out.append(cls)
        return out

    def taxonomy_cells(self) -> Dict[tuple, List[str]]:
        """(abstraction, data model) -> citation list; Table I's content."""
        cells: Dict[tuple, List[str]] = {}
        for cls in self._classes:
            profile = cls.profile
            for abstraction in profile.abstractions:
                key = (abstraction, profile.data_model)
                cells.setdefault(key, []).append(profile.citation)
        return cells


def default_registry() -> SystemRegistry:
    """The registry holding exactly the paper's nine surveyed systems."""
    # Imported lazily: repro.systems imports repro.core.dimensions.
    from repro.systems import ALL_ENGINE_CLASSES

    return SystemRegistry(ALL_ENGINE_CLASSES)
