"""The assessment framework: the paper's qualitative claims, made testable.

A :class:`Claim` couples a quotation from the paper with an executable
experiment that returns measured evidence and a pass/fail verdict.  The
benchmark suite instantiates one claim per performance argument in
Section IV and reports paper-vs-measured in EXPERIMENTS.md format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class ClaimResult:
    """Measured evidence for one claim."""

    claim_id: str
    holds: bool
    evidence: Dict[str, object] = field(default_factory=dict)

    def summary(self) -> str:
        verdict = "HOLDS" if self.holds else "DOES NOT HOLD"
        details = ", ".join(
            "%s=%s" % (key, value) for key, value in sorted(self.evidence.items())
        )
        return "%s: %s (%s)" % (self.claim_id, verdict, details)


@dataclass
class Claim:
    """A falsifiable statement from the paper plus its experiment."""

    claim_id: str
    quotation: str
    section: str
    experiment: Callable[[], ClaimResult]

    def check(self) -> ClaimResult:
        result = self.experiment()
        if result.claim_id != self.claim_id:
            raise ValueError(
                "experiment returned result for %r, expected %r"
                % (result.claim_id, self.claim_id)
            )
        return result


class Assessment:
    """A collection of claims checked together (the survey's assessment)."""

    def __init__(self) -> None:
        self._claims: List[Claim] = []

    def add(
        self,
        claim_id: str,
        quotation: str,
        section: str,
        experiment: Callable[[], ClaimResult],
    ) -> None:
        if any(c.claim_id == claim_id for c in self._claims):
            raise ValueError("duplicate claim id %r" % claim_id)
        self._claims.append(Claim(claim_id, quotation, section, experiment))

    def claims(self) -> List[Claim]:
        return list(self._claims)

    def run(self) -> List[ClaimResult]:
        return [claim.check() for claim in self._claims]

    def report(self) -> str:
        lines = []
        for claim, result in zip(self._claims, self.run()):
            lines.append("%s (%s)" % (claim.claim_id, claim.section))
            lines.append('  paper: "%s"' % claim.quotation)
            lines.append("  measured: %s" % result.summary())
        return "\n".join(lines)
