"""Figure 1: the taxonomy of dimensions for organizing RDF query
processing methods, as an executable data structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TaxonomyNode:
    """A node in the taxonomy tree of Figure 1."""

    label: str
    children: List["TaxonomyNode"] = field(default_factory=list)

    def find(self, label: str) -> Optional["TaxonomyNode"]:
        """Depth-first search by label."""
        if self.label == label:
            return self
        for child in self.children:
            hit = child.find(label)
            if hit is not None:
                return hit
        return None

    def leaves(self) -> List[str]:
        if not self.children:
            return [self.label]
        out: List[str] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


#: Figure 1 verbatim: the two axes and their leaf options.
TAXONOMY = TaxonomyNode(
    "RDF query processing methods on Apache Spark",
    [
        TaxonomyNode(
            "Data Model",
            [
                TaxonomyNode("The Triple Model"),
                TaxonomyNode("The Graph Model"),
            ],
        ),
        TaxonomyNode(
            "Apache Spark Abstraction",
            [
                TaxonomyNode("RDD"),
                TaxonomyNode("DataFrames"),
                TaxonomyNode("Spark SQL"),
                TaxonomyNode("GraphX"),
                TaxonomyNode("GraphFrames"),
            ],
        ),
    ],
)


def render_taxonomy(node: TaxonomyNode = TAXONOMY, indent: int = 0) -> str:
    """ASCII rendering of the taxonomy tree (the Figure 1 reproduction)."""
    lines = ["%s%s" % ("  " * indent, node.label if indent == 0 else "- " + node.label)]
    for child in node.children:
        lines.append(render_taxonomy(child, indent + 1))
    return "\n".join(lines)
