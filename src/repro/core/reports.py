"""Regenerating the paper's tables from engine profiles.

``PAPER_TABLE_I`` and ``PAPER_TABLE_II`` are golden transcriptions of the
published tables; :func:`table_i_cells` / :func:`table_ii_rows` compute the
same content from the registry's machine-readable profiles.  Tests and
``benchmarks/bench_table1.py`` / ``bench_table2.py`` assert they agree and
print the rendered tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dimensions import DataModel, SparkAbstraction
from repro.core.registry import SystemRegistry

# ----------------------------------------------------------------------
# Golden copies transcribed from the paper
# ----------------------------------------------------------------------

#: Table I: (abstraction, data model) -> citations, exactly as published.
PAPER_TABLE_I: Dict[Tuple[SparkAbstraction, DataModel], Tuple[str, ...]] = {
    (SparkAbstraction.RDD, DataModel.TRIPLE): ("[7]", "[13]", "[21]"),
    (SparkAbstraction.RDD, DataModel.GRAPH): ("[5]",),
    (SparkAbstraction.DATAFRAMES, DataModel.TRIPLE): ("[21]",),
    (SparkAbstraction.SPARK_SQL, DataModel.TRIPLE): ("[24]",),
    (SparkAbstraction.GRAPHX, DataModel.GRAPH): ("[23]", "[16]", "[12]"),
    (SparkAbstraction.GRAPHFRAMES, DataModel.GRAPH): ("[4]",),
}

#: Table II rows in published order:
#: (system, query processing, optimization, partitioning, SPARQL fragment).
PAPER_TABLE_II: Tuple[Tuple[str, str, str, str, str], ...] = (
    ("[7]", "RDD API", "No", "Hash / Query Aware", "BGP+"),
    ("[13]", "RDD API", "Yes", "Vertical", "BGP+"),
    ("[24]", "Spark SQL", "Yes", "Extended Vertical", "BGP+"),
    ("[21]", "Hybrid", "Yes", "Hash-sbj", "BGP"),
    ("[23]", "Graph Iterations", "No", "Default", "BGP+"),
    ("[16]", "Graph Iterations", "Yes", "Default", "BGP"),
    ("[12]", "Graph Iterations", "Yes", "Default", "BGP"),
    ("[4]", "Subgraph Matching", "Yes", "Default", "BGP"),
    ("[5]", "Custom", "Yes", "Hash-sbj", "BGP"),
)

#: Row order of Table II by citation (the paper's presentation order).
TABLE_II_ORDER = tuple(row[0] for row in PAPER_TABLE_II)


# ----------------------------------------------------------------------
# Computed from the registry
# ----------------------------------------------------------------------


def table_i_cells(
    registry: SystemRegistry,
) -> Dict[Tuple[SparkAbstraction, DataModel], Tuple[str, ...]]:
    """Table I content derived from engine profiles."""
    return {
        key: tuple(citations)
        for key, citations in registry.taxonomy_cells().items()
    }


def table_ii_rows(
    registry: SystemRegistry,
) -> List[Tuple[str, str, str, str, str]]:
    """Table II content derived from engine profiles, in paper order."""
    by_citation = {cls.profile.citation: cls.profile for cls in registry}
    rows = []
    for citation in TABLE_II_ORDER:
        profile = by_citation[citation]
        rows.append(
            (
                citation,
                profile.query_processing.value,
                profile.optimization.value,
                profile.partitioning.value,
                profile.sparql_fragment,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def _grid(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max([len(headers[i])] + [len(row[i]) for row in rows])
        for i in range(len(headers))
    ]
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = [sep]
    out.append(
        "|" + "|".join(
            " %s " % headers[i].ljust(widths[i]) for i in range(len(headers))
        ) + "|"
    )
    out.append(sep)
    for row in rows:
        out.append(
            "|" + "|".join(
                " %s " % row[i].ljust(widths[i]) for i in range(len(row))
            ) + "|"
        )
    out.append(sep)
    return "\n".join(out)


def render_table_i(registry: Optional[SystemRegistry] = None) -> str:
    """Table I as an ASCII grid (abstraction rows x data-model columns)."""
    from repro.core.registry import default_registry

    cells = table_i_cells(registry or default_registry())
    headers = ["Apache Spark Abstraction", "The Triple Model", "The Graph Model"]
    rows = []
    for abstraction in SparkAbstraction:
        row = [abstraction.value]
        for model in (DataModel.TRIPLE, DataModel.GRAPH):
            citations = cells.get((abstraction, model), ())
            row.append(", ".join(citations))
        rows.append(row)
    return _grid(headers, rows)


def render_table_ii(registry: Optional[SystemRegistry] = None) -> str:
    """Table II as an ASCII grid."""
    from repro.core.registry import default_registry

    rows = table_ii_rows(registry or default_registry())
    headers = ["System", "Query Processing", "Optimization", "Partitioning", "SPARQL"]
    return _grid(headers, [list(row) for row in rows])


def diff_against_paper(registry: SystemRegistry) -> List[str]:
    """Human-readable mismatches between profiles and the published tables.

    Empty means the reproduction's classification agrees with the paper.
    """
    problems: List[str] = []
    computed_i = table_i_cells(registry)
    cells = sorted(
        set(PAPER_TABLE_I) | set(computed_i),
        key=lambda cell: (cell[0].value, cell[1].value),
    )
    for key in cells:
        expected = tuple(sorted(PAPER_TABLE_I.get(key, ())))
        actual = tuple(sorted(computed_i.get(key, ())))
        if expected != actual:
            problems.append(
                "Table I cell %s/%s: paper %r vs computed %r"
                % (key[0].value, key[1].value, expected, actual)
            )
    for expected_row, actual_row in zip(
        PAPER_TABLE_II, table_ii_rows(registry)
    ):
        if tuple(expected_row) != tuple(actual_row):
            problems.append(
                "Table II row %s: paper %r vs computed %r"
                % (expected_row[0], expected_row, actual_row)
            )
    return problems
