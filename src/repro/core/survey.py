"""A generated per-system survey report (Section IV, from the profiles).

``render_survey`` rebuilds the survey's narrative skeleton from the
machine-readable registry: systems grouped by data model (the paper's
IV-A "Triple Processing Systems" vs IV-B "Graph Processing"), each with
its classification along every Section III dimension plus the mechanism
summary.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.dimensions import DataModel
from repro.core.registry import SystemRegistry, default_registry


def render_system(profile) -> str:
    """One system's entry."""
    lines = [
        "%s %s" % (profile.name, profile.citation),
        "  data model:        %s" % profile.data_model.value,
        "  spark abstraction: %s"
        % ", ".join(a.value for a in profile.abstractions),
        "  query processing:  %s" % profile.query_processing.value,
        "  optimization:      %s" % profile.optimization.value,
        "  partitioning:      %s" % profile.partitioning.value,
        "  sparql fragment:   %s (%s)"
        % (
            profile.sparql_fragment,
            ", ".join(sorted(profile.sparql_features)),
        ),
        "  contribution:      %s" % profile.contribution.value,
    ]
    if profile.description:
        lines.append("  mechanism:         %s" % profile.description)
    return "\n".join(lines)


def render_survey(registry: Optional[SystemRegistry] = None) -> str:
    """The full Section IV-style report."""
    registry = registry or default_registry()
    sections: List[str] = ["RDF PROCESSING APPROACHES (generated survey)"]
    for model, heading in (
        (DataModel.TRIPLE, "A. Triple Processing Systems"),
        (DataModel.GRAPH, "B. Graph Processing"),
    ):
        sections.append("")
        sections.append(heading)
        sections.append("-" * len(heading))
        for engine_class in registry.classify(data_model=model):
            sections.append("")
            sections.append(render_system(engine_class.profile))
    return "\n".join(sections)
