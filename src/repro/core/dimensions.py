"""The evaluation dimensions of Section III.

Every engine in ``repro.systems`` self-describes along these dimensions;
the registry and report generators consume them to rebuild the paper's
taxonomy and tables.
"""

from __future__ import annotations

from enum import Enum


class DataModel(Enum):
    """How RDF data is modeled for processing (the paper's first axis)."""

    TRIPLE = "The Triple Model"
    GRAPH = "The Graph Model"


class SparkAbstraction(Enum):
    """Which Spark API carries the implementation (the second axis)."""

    RDD = "RDD"
    DATAFRAMES = "DataFrames"
    SPARK_SQL = "Spark SQL"
    GRAPHX = "GraphX"
    GRAPHFRAMES = "GraphFrames"


class QueryProcessing(Enum):
    """How SPARQL is translated and evaluated (Table II column 1)."""

    RDD_API = "RDD API"
    SPARK_SQL = "Spark SQL"
    HYBRID = "Hybrid"
    GRAPH_ITERATIONS = "Graph Iterations"
    SUBGRAPH_MATCHING = "Subgraph Matching"
    CUSTOM = "Custom"


class Optimization(Enum):
    """Whether the system applies query optimizations (Table II column 2)."""

    YES = "Yes"
    NO = "No"


class PartitioningStrategy(Enum):
    """Data partitioning strategy (Table II column 3)."""

    HASH_QUERY_AWARE = "Hash / Query Aware"
    VERTICAL = "Vertical"
    EXTENDED_VERTICAL = "Extended Vertical"
    HASH_SUBJECT = "Hash-sbj"
    DEFAULT = "Default"


class Contribution(Enum):
    """What the system chiefly targets (the 'System Contribution' dimension)."""

    ALL_QUERY_TYPES = "all query types"
    STAR_QUERIES = "star queries"
    JOIN_STRATEGY = "join strategy selection"
    GRAPH_MATCHING = "graph pattern matching"
    STORAGE_INDEXING = "storage and indexing"
