"""The survey's own contribution, executable.

Section III's evaluation dimensions as enums, Figure 1's taxonomy as a
data structure, the system registry with every surveyed engine's profile,
report generators that regenerate Table I / Table II / Figure 1, and the
claim-checking assessment framework.
"""

from repro.core.dimensions import (
    Contribution,
    DataModel,
    Optimization,
    PartitioningStrategy,
    QueryProcessing,
    SparkAbstraction,
)
from repro.core.taxonomy import TAXONOMY, TaxonomyNode, render_taxonomy
from repro.core.registry import SystemRegistry, default_registry
from repro.core.reports import (
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    render_table_i,
    render_table_ii,
)
from repro.core.assessment import Claim, ClaimResult, Assessment
from repro.core.claims import build_default_assessment
from repro.core.survey import render_survey

__all__ = [
    "Assessment",
    "Claim",
    "ClaimResult",
    "Contribution",
    "DataModel",
    "Optimization",
    "PAPER_TABLE_I",
    "PAPER_TABLE_II",
    "PartitioningStrategy",
    "QueryProcessing",
    "SparkAbstraction",
    "SystemRegistry",
    "TAXONOMY",
    "TaxonomyNode",
    "build_default_assessment",
    "render_survey",
    "default_registry",
    "render_table_i",
    "render_table_ii",
    "render_taxonomy",
]
