"""The paper's performance claims as a ready-made :class:`Assessment`.

``build_default_assessment()`` registers a compact executable experiment
for every qualitative claim in Sections III-IV (the full-size versions
live in ``benchmarks/``; these run in seconds on one-university data so
the assessment is usable as a library call or from ``python -m repro
claims``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.assessment import Assessment, ClaimResult
from repro.rdf.graph import RDFGraph
from repro.spark.context import SparkContext


def _lubm():
    from repro.data.lubm import LubmGenerator

    return LubmGenerator(num_universities=1, seed=42).generate()


def _query_cost(engine, query_text):
    before = engine.ctx.metrics.snapshot()
    engine.execute(query_text)
    return engine.ctx.metrics.snapshot() - before


def _claim_star_local() -> ClaimResult:
    from repro.data.lubm import LubmGenerator
    from repro.systems import HaqwaEngine

    engine = HaqwaEngine(SparkContext(4))
    engine.load(_lubm())
    star = _query_cost(engine, LubmGenerator.query_star())
    linear = _query_cost(engine, LubmGenerator.query_linear())
    return ClaimResult(
        "star-queries-local",
        holds=star.shuffle_records == 0 and linear.shuffle_records > 0,
        evidence={
            "star_shuffle": star.shuffle_records,
            "linear_shuffle": linear.shuffle_records,
        },
    )


def _claim_workload_aware() -> ClaimResult:
    from repro.data.workload import QueryWorkload
    from repro.sparql.parser import parse_sparql
    from repro.systems import HaqwaEngine

    query = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?s ?p ?d WHERE { ?s lubm:advisor ?p . ?p lubm:worksFor ?d }"
    )
    workload = QueryWorkload()
    workload.add("hot", parse_sparql(query), frequency=10.0)
    engine = HaqwaEngine(SparkContext(4), workload=workload)
    engine.load(_lubm())
    cost = _query_cost(engine, query)
    return ClaimResult(
        "workload-aware-allocation",
        holds=cost.shuffle_records == 0 and engine.replicated_triples > 0,
        evidence={
            "shuffle": cost.shuffle_records,
            "replicas": engine.replicated_triples,
        },
    )


def _claim_vertical_partitioning() -> ClaimResult:
    from repro.data.lubm import LubmGenerator
    from repro.systems import NaiveEngine, SparqlgxEngine

    graph = _lubm()
    query = (
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?s ?o WHERE { ?s lubm:advisor ?o }"
    )
    vertical = SparqlgxEngine(SparkContext(4))
    vertical.load(graph)
    naive = NaiveEngine(SparkContext(4))
    naive.load(graph)
    vertical_scans = _query_cost(vertical, query).records_scanned
    naive_scans = _query_cost(naive, query).records_scanned
    return ClaimResult(
        "vertical-partitioning-bounded-predicates",
        holds=vertical_scans * 2 < naive_scans,
        evidence={
            "vertical_scans": vertical_scans,
            "naive_scans": naive_scans,
        },
    )


def _claim_extvp() -> ClaimResult:
    from repro.rdf.terms import URI
    from repro.rdf.triple import Triple
    from repro.systems import S2RdfEngine

    ex = "http://example.org/"
    graph = RDFGraph()
    for i in range(100):
        graph.add(Triple(URI(ex + "a%d" % i), URI(ex + "likes"), URI(ex + "L%d" % i)))
        subject = "a%d" % i if i < 10 else "b%d" % i
        graph.add(Triple(URI(ex + subject), URI(ex + "follows"), URI(ex + "F%d" % i)))
    query = (
        "PREFIX ex: <http://example.org/>\n"
        "SELECT ?x ?y ?z WHERE { ?x ex:likes ?y . ?x ex:follows ?z }"
    )
    reduced = S2RdfEngine(SparkContext(1))
    reduced.load(graph)
    plain = S2RdfEngine(SparkContext(1), build_extvp=False)
    plain.load(graph)
    with_extvp = _query_cost(reduced, query).join_comparisons
    without = _query_cost(plain, query).join_comparisons
    return ClaimResult(
        "extvp-semi-join-reduction",
        holds=with_extvp * 5 <= without,
        evidence={"comparisons_extvp": with_extvp, "comparisons_vp": without},
    )


def _claim_hybrid_joins() -> ClaimResult:
    from repro.data.lubm import LubmGenerator
    from repro.systems import HybridEngine, JoinStrategy

    graph = _lubm()
    query = LubmGenerator.query_star()
    costs = {}
    for strategy in (JoinStrategy.RDD, JoinStrategy.HYBRID):
        engine = HybridEngine(SparkContext(4), strategy=strategy)
        engine.load(graph)
        costs[strategy] = _query_cost(engine, query)
    return ClaimResult(
        "hybrid-join-strategy",
        holds=costs[JoinStrategy.HYBRID].shuffle_remote_records
        < costs[JoinStrategy.RDD].shuffle_remote_records,
        evidence={
            "hybrid_remote": costs[JoinStrategy.HYBRID].shuffle_remote_records,
            "rdd_remote": costs[JoinStrategy.RDD].shuffle_remote_records,
        },
    )


def _claim_pruning() -> ClaimResult:
    from repro.data.lubm import LubmGenerator
    from repro.systems import GraphFramesEngine

    graph = _lubm()
    engine = GraphFramesEngine(SparkContext(4))
    engine.load(graph)
    engine.execute(
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "SELECT ?s ?o WHERE { ?s lubm:advisor ?o }"
    )
    return ClaimResult(
        "local-search-space-pruning",
        holds=engine.last_pruned_edge_count * 2 < len(graph),
        evidence={
            "pruned_edges": engine.last_pruned_edge_count,
            "total_edges": len(graph),
        },
    )


def _claim_mesg_index() -> ClaimResult:
    from repro.systems import SparkRdfMesgEngine

    engine = SparkRdfMesgEngine(SparkContext(4))
    engine.load(_lubm())
    engine.execute(
        "PREFIX lubm: <http://repro.example.org/lubm#>\n"
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
        "SELECT ?s ?c WHERE { ?s rdf:type lubm:GraduateStudent . "
        "?s lubm:takesCourse ?c }"
    )
    reads = dict(engine.last_index_reads)
    return ClaimResult(
        "mesg-class-indexes",
        holds="CR" in reads and "REL" not in reads,
        evidence=reads,
    )


def _claim_encoding() -> ClaimResult:
    from repro.rdf.encoding import encoded_volume_ratio

    ratio = encoded_volume_ratio(list(_lubm()))
    return ClaimResult(
        "integer-encoding-volume",
        holds=ratio > 1.5,
        evidence={"volume_ratio": round(ratio, 2)},
    )


def _claim_lineage_recovery() -> ClaimResult:
    from repro.spark.faults import FaultRule, FaultScheduler

    def recovery_cost(checkpoint_depth: Optional[int]) -> int:
        """Tasks re-executed after losing the tail of a 12-map chain."""
        sc = SparkContext(2, faults=FaultScheduler())
        rdd = sc.parallelize(range(64), 2)
        for depth in range(1, 13):
            rdd = rdd.map(lambda x: x + 1)
            if depth == checkpoint_depth:
                rdd = rdd.checkpoint()
        tail = rdd.cache()
        tail.count()  # fault-free materialization
        sc.faults.add_rule(FaultRule("lose", stage=tail.id, times=2))
        before = sc.metrics.snapshot()
        tail.count()  # both partitions lost -> lineage recomputation
        return (sc.metrics.snapshot() - before).recompute_comparisons

    uncached = recovery_cost(None)
    checkpointed = recovery_cost(10)
    return ClaimResult(
        "lineage-recovery-cost",
        holds=0 < checkpointed < uncached,
        evidence={
            "recovery_tasks_uncached_chain": uncached,
            "recovery_tasks_checkpointed_chain": checkpointed,
        },
    )


def _claim_columnar() -> ClaimResult:
    from repro.spark.sql.session import SparkSession

    graph = _lubm()
    session = SparkSession(default_parallelism=4)
    df = session.createDataFrame(
        [(t.subject.n3(), t.predicate.n3(), t.object.n3()) for t in graph],
        ["s", "p", "o"],
    )
    factor = df.storage_bytes(columnar=False) / df.storage_bytes(
        columnar=True
    )
    return ClaimResult(
        "columnar-compression",
        holds=factor > 1.5,
        evidence={"compression_factor": round(factor, 2)},
    )


def _workload_queries():
    from repro.data.lubm import LubmGenerator

    return {
        "star": LubmGenerator.query_star(),
        "linear": LubmGenerator.query_linear(),
        "snowflake": LubmGenerator.query_snowflake(),
        "complex": LubmGenerator.query_complex(),
    }


def _bgp_nodes(node):
    """Every multi-pattern BGP in an algebra tree (depth-first)."""
    from repro.sparql.algebra import BGP

    found = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, BGP):
            if len(current.patterns) > 1:
                found.append(current)
        stack.extend(current._children())
    return found


def _claim_cost_ordering() -> ClaimResult:
    from repro.optimizer import Optimizer
    from repro.sparql.algebra import translate
    from repro.sparql.parser import parse_sparql
    from repro.systems import SparqlgxEngine

    graph = _lubm()
    queries = _workload_queries()

    def run(mode: str, enable_broadcast: bool):
        optimizer = Optimizer.for_graph(
            graph, mode=mode, enable_broadcast=enable_broadcast
        )
        costs = {}
        for name, text in queries.items():
            engine = SparqlgxEngine(SparkContext(4))
            engine.load(graph)
            engine.set_optimizer(optimizer)
            costs[name] = _query_cost(engine, text)
        return costs

    # Ordering: with broadcast disabled on both sides (so only the join
    # order differs), the DP plan never performs more comparisons than
    # the parse-order plan.
    dp = run("dp", enable_broadcast=False)
    parse_order = run("parse", enable_broadcast=False)
    ordered = all(
        dp[name].join_comparisons <= parse_order[name].join_comparisons
        for name in queries
    )

    # Strategy rule: over every planned join step of the workload,
    # broadcast is chosen exactly when the estimated build side is under
    # the threshold.
    optimizer = Optimizer.for_graph(graph)
    threshold = optimizer.planner.broadcast_threshold
    rule_holds, broadcasts = True, 0
    for text in queries.values():
        for bgp in _bgp_nodes(translate(parse_sparql(text))):
            for step in optimizer.plan_bgp(bgp.patterns).steps[1:]:
                if step.strategy == "cartesian":
                    continue
                if (step.strategy == "broadcast") != (
                    step.est_build < threshold
                ):
                    rule_holds = False
                broadcasts += step.strategy == "broadcast"

    # And broadcasting wins: same DP order, shuffle volume only drops.
    dp_broadcast = run("dp", enable_broadcast=True)
    shuffled_off = sum(dp[name].shuffle_records for name in queries)
    shuffled_on = sum(dp_broadcast[name].shuffle_records for name in queries)
    return ClaimResult(
        "cost-based-join-ordering",
        holds=ordered
        and rule_holds
        and broadcasts > 0
        and shuffled_on < shuffled_off,
        evidence={
            "dp_comparisons": sum(
                dp[name].join_comparisons for name in queries
            ),
            "parse_comparisons": sum(
                parse_order[name].join_comparisons for name in queries
            ),
            "broadcast_rule_holds": rule_holds,
            "broadcast_steps": broadcasts,
            "shuffle_no_broadcast": shuffled_off,
            "shuffle_with_broadcast": shuffled_on,
        },
    )


def _claim_estimator_accuracy() -> ClaimResult:
    from repro.explain import run_traced
    from repro.optimizer import Optimizer, collect_q_errors
    from repro.systems import SparqlgxEngine

    graph = _lubm()
    optimizer = Optimizer.for_graph(graph)
    cap = 100.0
    per_shape = {}
    for name, text in _workload_queries().items():
        run = run_traced(
            graph, text, SparqlgxEngine, optimizer=optimizer
        )
        errors = [error for _strategy, error in collect_q_errors(run.spans)]
        per_shape["max_q_error_%s" % name] = (
            round(max(errors), 2) if errors else None
        )
    holds = all(
        value is not None and value <= cap for value in per_shape.values()
    )
    evidence = dict(per_shape)
    evidence["cap"] = cap
    return ClaimResult("estimator-accuracy", holds=holds, evidence=evidence)


def build_default_assessment() -> Assessment:
    """All Section III-IV performance claims, compact and executable."""
    assessment = Assessment()
    assessment.add(
        "star-queries-local",
        "hash-based partitioning on triple subjects ensures that "
        "star-shaped queries are performed locally",
        "IV-A1 (HAQWA)",
        _claim_star_local,
    )
    assessment.add(
        "workload-aware-allocation",
        "data are allocated according to the analysis of frequent queries "
        "... to prevent network communication",
        "IV-A1 (HAQWA)",
        _claim_workload_aware,
    )
    assessment.add(
        "vertical-partitioning-bounded-predicates",
        "the memory footprint is reduced and the response time is "
        "minimized when queries have bounded predicates",
        "IV-A1 (SPARQLGX)",
        _claim_vertical_partitioning,
    )
    assessment.add(
        "extvp-semi-join-reduction",
        "if we store data using ExtVP, only 10 comparisons are needed",
        "IV-A2 (S2RDF)",
        _claim_extvp,
    )
    assessment.add(
        "hybrid-join-strategy",
        "a hybrid strategy ... takes into account an existing data "
        "partitioning scheme to avoid useless data transfer",
        "IV-A3 ([21])",
        _claim_hybrid_joins,
    )
    assessment.add(
        "local-search-space-pruning",
        "all triples in the dataset that do not match BGPs predicates get "
        "discarded ... a much smaller search space",
        "IV-B2 ([4])",
        _claim_pruning,
    )
    assessment.add(
        "mesg-class-indexes",
        "the authors avoid reading many unnecessary data, and rdf:type "
        "triple patterns can be removed",
        "IV-B3 (SparkRDF)",
        _claim_mesg_index,
    )
    assessment.add(
        "integer-encoding-volume",
        "an encoding of string values to integer ones ... minimizes data "
        "volume",
        "IV-A1 (HAQWA)",
        _claim_encoding,
    )
    assessment.add(
        "lineage-recovery-cost",
        "if a partition is lost, the RDD has enough information about "
        "how it was derived ... to recompute just that partition",
        "III (RDD fault tolerance)",
        _claim_lineage_recovery,
    )
    assessment.add(
        "cost-based-join-ordering",
        "statistics on data (counts of all distinct subjects, predicates "
        "and objects) ... are used to reorder the join execution",
        "IV-A1 (SPARQLGX) / III (broadcast joins)",
        _claim_cost_ordering,
    )
    assessment.add(
        "estimator-accuracy",
        "cardinality estimates from one-pass statistics stay within a "
        "bounded factor of the true intermediate result sizes",
        "III-IV (cost-based optimization)",
        _claim_estimator_accuracy,
    )
    assessment.add(
        "columnar-compression",
        "columnar compressed in-memory representation ... up to 10 times "
        "larger data sets than RDD can be managed",
        "IV-A3 (DataFrames)",
        _claim_columnar,
    )
    return assessment
