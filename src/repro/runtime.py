"""Shared runtime construction: one code path from names to warm engines.

Historically ``repro.cli`` owned graph loading and engine resolution, so
anything else that needed an engine (benchmarks, the serving layer) had
to either import the CLI or duplicate the logic.  This module is the
single construction path both the CLI and :mod:`repro.server` use:

* :func:`load_graph` -- read an RDF file by extension (``.nt`` / ``.ttl``),
  raising :class:`GraphLoadError` with a readable message instead of a
  bare ``OSError`` traceback;
* :func:`resolve_engine` -- engine name to class, raising
  :class:`UnknownEngineError` listing the valid choices;
* :func:`build_context` -- a :class:`~repro.spark.context.SparkContext`
  from the knob set every entry point shares (parallelism, faults,
  retry limit, speculation);
* :func:`build_engine` -- a warmed engine: context built, graph loaded,
  store built (dictionary encoding, vertical partitions, indexes --
  whatever the engine's ``_build`` does) exactly once.
"""

from __future__ import annotations

from typing import Optional, Type, Union

from repro.rdf.graph import RDFGraph
from repro.rdf.ntriples import load_ntriples_file
from repro.rdf.turtle import parse_turtle
from repro.spark.context import SparkContext
from repro.spark.faults import FaultScheduler
from repro.spark.parallel import BackendConfigError


class RuntimeConfigError(ValueError):
    """A runtime construction input (path, engine name) is unusable."""


class GraphLoadError(RuntimeConfigError):
    """An RDF data file could not be read or parsed."""


class UnknownEngineError(RuntimeConfigError):
    """No engine matches the requested name."""


def load_graph(path: str) -> RDFGraph:
    """Load an RDF file by extension (.nt or .ttl).

    Raises :class:`GraphLoadError` for unreadable files and syntax
    errors, carrying the path and the underlying cause.
    """
    try:
        if path.endswith((".ttl", ".turtle")):
            with open(path, "r", encoding="utf-8") as handle:
                return parse_turtle(handle.read())
        return load_ntriples_file(path)
    except OSError as exc:
        raise GraphLoadError(
            "cannot read RDF file %r: %s" % (path, exc)
        ) from exc
    except ValueError as exc:
        raise GraphLoadError(
            "cannot parse RDF file %r: %s" % (path, exc)
        ) from exc


def resolve_engine(name: str):
    """Engine name -> engine class (case-insensitive, ``Naive`` included).

    Raises :class:`UnknownEngineError` whose message lists every valid
    choice, suitable for printing verbatim.
    """
    from repro.explain import engine_class

    try:
        return engine_class(name)
    except KeyError as exc:
        raise UnknownEngineError(
            str(exc.args[0]) if exc.args else str(exc)
        ) from exc


def build_context(
    parallelism: int = 4,
    faults: Union[None, str, FaultScheduler] = None,
    max_task_attempts: int = 4,
    speculation: bool = False,
    backend: str = "inprocess",
    workers: Optional[int] = None,
    verify_closures: bool = False,
) -> SparkContext:
    """A SparkContext from the knob set shared by every entry point.

    ``backend``/``workers`` select the executor backend (see
    :mod:`repro.spark.parallel`); bad combinations raise
    :class:`RuntimeConfigError` so the CLI reports them as configuration
    errors rather than tracebacks.  ``verify_closures`` opts into
    worker-boundary enforcement at job submission (see
    :mod:`repro.analysis.closures`).
    """
    try:
        return SparkContext(
            default_parallelism=parallelism,
            faults=faults,
            max_task_attempts=max_task_attempts,
            speculation=speculation,
            backend=backend,
            workers=workers,
            verify_closures=verify_closures,
        )
    except BackendConfigError as exc:
        raise RuntimeConfigError(str(exc)) from exc


def build_engine(
    engine: str,
    graph: RDFGraph,
    parallelism: int = 4,
    faults: Union[None, str, FaultScheduler] = None,
    max_task_attempts: int = 4,
    speculation: bool = False,
    ctx: Optional[SparkContext] = None,
    backend: str = "inprocess",
    workers: Optional[int] = None,
    verify_closures: bool = False,
):
    """Resolve, construct, and warm one engine on *graph*.

    The returned engine has its store built (graph ingested, encoded,
    partitioned) and is ready for any number of ``execute`` calls --
    engines are reusable across queries; only the store build is
    per-instance.
    """
    cls = resolve_engine(engine)
    if ctx is None:
        ctx = build_context(
            parallelism=parallelism,
            faults=faults,
            max_task_attempts=max_task_attempts,
            speculation=speculation,
            backend=backend,
            workers=workers,
            verify_closures=verify_closures,
        )
    return cls(ctx).load(graph)
