"""GraphFrames: graphs over DataFrames with motif-finding queries.

The paper notes GraphFrames as the newest Spark graph API -- DataFrame
scalability plus, unlike GraphX, direct *queries over graphs*.  The motif
language implemented here (``(a)-[e]->(b); (b)-[f]->(c)``) is what the
Bahrami et al. system compiles SPARQL BGPs into.
"""

from repro.spark.graphframes.graphframe import GraphFrame
from repro.spark.graphframes.motif import MotifPattern, MotifSyntaxError, parse_motif

__all__ = ["GraphFrame", "MotifPattern", "MotifSyntaxError", "parse_motif"]
