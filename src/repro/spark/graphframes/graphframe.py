"""GraphFrame: a graph represented as two DataFrames plus motif finding."""

from __future__ import annotations

from typing import List, Optional

from repro.spark.column import Expression
from repro.spark.dataframe import DataFrame
from repro.spark.graphframes.motif import MotifPattern, parse_motif


class GraphFrame:
    """A graph whose vertices and edges are DataFrames.

    *vertices* must have an ``id`` column; *edges* must have ``src`` and
    ``dst`` columns.  Additional columns are vertex/edge properties -- RDF
    systems typically store the predicate in an edge column named
    ``relationship`` or ``label``.
    """

    def __init__(self, vertices: DataFrame, edges: DataFrame) -> None:
        if "id" not in vertices.columns:
            raise ValueError("vertices DataFrame needs an 'id' column")
        if "src" not in edges.columns or "dst" not in edges.columns:
            raise ValueError("edges DataFrame needs 'src' and 'dst' columns")
        self.vertices = vertices
        self.edges = edges
        self.session = vertices.session

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------

    def inDegrees(self) -> DataFrame:
        return (
            self.edges.groupBy("dst")
            .agg(("count", "*", "inDegree"))
            .withColumnRenamed("dst", "id")
        )

    def outDegrees(self) -> DataFrame:
        return (
            self.edges.groupBy("src")
            .agg(("count", "*", "outDegree"))
            .withColumnRenamed("src", "id")
        )

    def degrees(self) -> DataFrame:
        ends = self.edges.select("src").union(
            self.edges.select("dst")
        )
        renamed = DataFrame(self.session, ends.rdd, ["id"])
        return renamed.groupBy("id").agg(("count", "*", "degree"))

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------

    def filterVertices(self, condition: Expression) -> "GraphFrame":
        """Keep matching vertices; drop edges with a removed endpoint."""
        vertices = self.vertices.where(condition)
        keep_ids = {row["id"] for row in vertices.select("id").collect()}
        bcast = self.session.ctx.broadcast(keep_ids)
        src_idx = self.edges.columns.index("src")
        dst_idx = self.edges.columns.index("dst")
        edges_rdd = self.edges.rdd.filter(
            lambda values: values[src_idx] in bcast.value
            and values[dst_idx] in bcast.value
        )
        return GraphFrame(
            vertices, DataFrame(self.session, edges_rdd, self.edges.columns)
        )

    def filterEdges(self, condition: Expression) -> "GraphFrame":
        """Keep matching edges (vertices are untouched, like GraphFrames)."""
        return GraphFrame(self.vertices, self.edges.where(condition))

    def dropIsolatedVertices(self) -> "GraphFrame":
        used = {row["src"] for row in self.edges.select("src").collect()}
        used |= {row["dst"] for row in self.edges.select("dst").collect()}
        bcast = self.session.ctx.broadcast(used)
        id_idx = self.vertices.columns.index("id")
        vertices_rdd = self.vertices.rdd.filter(
            lambda values: values[id_idx] in bcast.value
        )
        return GraphFrame(
            DataFrame(self.session, vertices_rdd, self.vertices.columns),
            self.edges,
        )

    # ------------------------------------------------------------------
    # Motif finding
    # ------------------------------------------------------------------

    def find(self, motif: str) -> DataFrame:
        """Structural pattern matching.

        Each named vertex variable ``a`` contributes columns ``a.id`` plus
        one ``a.<attr>`` per vertex property; each named edge variable
        ``e`` contributes ``e.<attr>`` per edge property (``src``/``dst``
        excluded -- they are exposed through the endpoint variables).
        Anonymous elements constrain the match but produce no columns.
        """
        patterns = parse_motif(motif)
        anon_counter = [0]

        def fresh(prefix: str) -> str:
            anon_counter[0] += 1
            return "__%s%d" % (prefix, anon_counter[0])

        result: Optional[DataFrame] = None
        hidden: List[str] = []
        for pattern in patterns:
            term_df, term_hidden = self._pattern_frame(pattern, fresh)
            hidden.extend(term_hidden)
            if result is None:
                result = term_df
            else:
                shared = [c for c in term_df.columns if c in result.columns]
                if shared:
                    result = result.join(term_df, on=shared, how="inner")
                else:
                    result = result.crossJoin(term_df)

        assert result is not None
        result = self._attach_vertex_attrs(result, patterns)
        existing_hidden = [c for c in hidden if c in result.columns]
        if existing_hidden:
            result = result.drop(*existing_hidden)
        return result

    def _pattern_frame(self, pattern: MotifPattern, fresh) -> tuple:
        """One edge pattern as a DataFrame with variable-qualified columns."""
        src_var = pattern.src or fresh("src")
        dst_var = pattern.dst or fresh("dst")
        hidden = []
        if pattern.src is None:
            hidden.append("%s.id" % src_var)
        if pattern.dst is None:
            hidden.append("%s.id" % dst_var)

        df = self.edges
        if src_var == dst_var:
            # Self-loop: keep matching edges, expose the endpoint once.
            src_idx = df.columns.index("src")
            dst_idx = df.columns.index("dst")
            loops = df.rdd.filter(lambda v: v[src_idx] == v[dst_idx])
            df = DataFrame(self.session, loops, df.columns).drop("dst")
            renames = {"src": "%s.id" % src_var}
        else:
            renames = {"src": "%s.id" % src_var, "dst": "%s.id" % dst_var}
        extra = [c for c in df.columns if c not in ("src", "dst")]
        if pattern.edge is not None:
            for column in extra:
                renames[column] = "%s.%s" % (pattern.edge, column)
        for old, new in renames.items():
            df = df.withColumnRenamed(old, new)
        if pattern.edge is None and extra:
            df = df.drop(*extra)
        return df, hidden

    def _attach_vertex_attrs(
        self, result: DataFrame, patterns: List[MotifPattern]
    ) -> DataFrame:
        """Join per-variable vertex properties (and enforce membership)."""
        attrs = [c for c in self.vertices.columns if c != "id"]
        named = []
        for pattern in patterns:
            for var in (pattern.src, pattern.dst):
                if var is not None and var not in named:
                    named.append(var)
        for var in named:
            key = "%s.id" % var
            if key not in result.columns:
                continue
            vdf = self.vertices
            vdf = vdf.withColumnRenamed("id", key)
            for attr in attrs:
                vdf = vdf.withColumnRenamed(attr, "%s.%s" % (var, attr))
            result = result.join(vdf, on=key, how="inner")
        return result

    def __repr__(self) -> str:
        return "GraphFrame(v=%r, e=%r)" % (
            self.vertices.columns,
            self.edges.columns,
        )
