"""The GraphFrames motif language: parsing ``(a)-[e]->(b); ...`` patterns."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional


class MotifSyntaxError(ValueError):
    """Raised for malformed motif strings."""


@dataclass(frozen=True)
class MotifPattern:
    """One ``(src)-[edge]->(dst)`` term; names are None when anonymous."""

    src: Optional[str]
    edge: Optional[str]
    dst: Optional[str]


_TERM_RE = re.compile(
    r"^\(\s*(?P<src>[A-Za-z_][A-Za-z0-9_]*)?\s*\)"
    r"\s*-\s*\[\s*(?P<edge>[A-Za-z_][A-Za-z0-9_]*)?\s*\]\s*->"
    r"\s*\(\s*(?P<dst>[A-Za-z_][A-Za-z0-9_]*)?\s*\)$"
)


def parse_motif(motif: str) -> List[MotifPattern]:
    """Parse a semicolon-separated motif into patterns.

    >>> parse_motif("(a)-[e]->(b); (b)-[]->(c)")
    [MotifPattern(src='a', edge='e', dst='b'), MotifPattern(src='b', edge=None, dst='c')]
    """
    patterns: List[MotifPattern] = []
    seen_edges = set()
    for raw_term in motif.split(";"):
        term = raw_term.strip()
        if not term:
            continue
        match = _TERM_RE.match(term)
        if match is None:
            raise MotifSyntaxError("cannot parse motif term %r" % term)
        edge = match.group("edge")
        if edge is not None:
            if edge in seen_edges:
                raise MotifSyntaxError(
                    "edge variable %r used more than once" % edge
                )
            seen_edges.add(edge)
        patterns.append(
            MotifPattern(match.group("src"), edge, match.group("dst"))
        )
    if not patterns:
        raise MotifSyntaxError("empty motif")
    return patterns
