"""Column expressions: the tiny expression language DataFrames evaluate.

``col("price") > lit(10)`` builds an expression tree; DataFrames and the
SQL executor evaluate trees against rows.  The Catalyst-style optimizer in
:mod:`repro.spark.sql.catalyst` rewrites these same trees (constant folding,
predicate splitting), so the node set is deliberately small and closed.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional, Sequence


class Expression:
    """Base class for column expression nodes."""

    def eval(self, row: Dict[str, Any]) -> Any:
        """Evaluate against a mapping of column name -> value."""
        raise NotImplementedError

    def references(self) -> FrozenSet[str]:
        """Column names this expression reads."""
        raise NotImplementedError

    def children(self) -> Sequence["Expression"]:
        return ()

    # -- operator sugar -------------------------------------------------

    def _binary(self, op: str, other: object) -> "BinaryOp":
        return BinaryOp(op, self, _wrap(other))

    def __eq__(self, other: object):  # type: ignore[override]
        return self._binary("=", other)

    def __ne__(self, other: object):  # type: ignore[override]
        return self._binary("!=", other)

    def __lt__(self, other: object) -> "BinaryOp":
        return self._binary("<", other)

    def __le__(self, other: object) -> "BinaryOp":
        return self._binary("<=", other)

    def __gt__(self, other: object) -> "BinaryOp":
        return self._binary(">", other)

    def __ge__(self, other: object) -> "BinaryOp":
        return self._binary(">=", other)

    def __and__(self, other: object) -> "BinaryOp":
        return self._binary("and", other)

    def __or__(self, other: object) -> "BinaryOp":
        return self._binary("or", other)

    def __add__(self, other: object) -> "BinaryOp":
        return self._binary("+", other)

    def __sub__(self, other: object) -> "BinaryOp":
        return self._binary("-", other)

    def __mul__(self, other: object) -> "BinaryOp":
        return self._binary("*", other)

    def __truediv__(self, other: object) -> "BinaryOp":
        return self._binary("/", other)

    def __invert__(self) -> "UnaryOp":
        return UnaryOp("not", self)

    def isNull(self) -> "UnaryOp":
        return UnaryOp("isnull", self)

    def isNotNull(self) -> "UnaryOp":
        return UnaryOp("isnotnull", self)

    def isin(self, *values: object) -> "InList":
        flat = values[0] if len(values) == 1 and isinstance(values[0], (list, tuple, set)) else values
        return InList(self, [_wrap(v) for v in flat])

    def alias(self, name: str) -> "Alias":
        return Alias(self, name)

    def __hash__(self) -> int:  # expression trees are used in sets/dicts
        return hash(repr(self))

    def same_as(self, other: "Expression") -> bool:
        """Structural equality (``==`` is overloaded to build BinaryOp)."""
        return repr(self) == repr(other)


def _wrap(value: object) -> Expression:
    return value if isinstance(value, Expression) else Literal(value)


class ColumnRef(Expression):
    """Reference to a named column."""

    def __init__(self, name: str) -> None:
        self.name = name

    def eval(self, row: Dict[str, Any]) -> Any:
        if self.name not in row:
            raise KeyError(
                "unknown column %r; available: %s"
                % (self.name, sorted(row.keys()))
            )
        return row[self.name]

    def references(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return "col(%r)" % self.name


class Literal(Expression):
    """A constant."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def eval(self, row: Dict[str, Any]) -> Any:
        return self.value

    def references(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "lit(%r)" % (self.value,)


_BINARY_IMPLS: Dict[str, Callable[[Any, Any], Any]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class BinaryOp(Expression):
    """Binary operator; ``and``/``or`` short-circuit and are null-tolerant."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _BINARY_IMPLS and op not in ("and", "or"):
            raise ValueError("unknown binary operator %r" % op)
        self.op = op
        self.left = left
        self.right = right

    def eval(self, row: Dict[str, Any]) -> Any:
        if self.op == "and":
            return bool(self.left.eval(row)) and bool(self.right.eval(row))
        if self.op == "or":
            return bool(self.left.eval(row)) or bool(self.right.eval(row))
        left = self.left.eval(row)
        right = self.right.eval(row)
        if left is None or right is None:
            # SQL three-valued logic collapsed to "unknown is false/None".
            return None if self.op in ("+", "-", "*", "/") else False
        return _BINARY_IMPLS[self.op](left, right)

    def references(self) -> FrozenSet[str]:
        return self.left.references() | self.right.references()

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def __repr__(self) -> str:
        return "(%r %s %r)" % (self.left, self.op, self.right)


class UnaryOp(Expression):
    """``not``, ``isnull`` and ``isnotnull``."""

    def __init__(self, op: str, child: Expression) -> None:
        if op not in ("not", "isnull", "isnotnull", "neg"):
            raise ValueError("unknown unary operator %r" % op)
        self.op = op
        self.child = child

    def eval(self, row: Dict[str, Any]) -> Any:
        value = self.child.eval(row)
        if self.op == "not":
            return not bool(value)
        if self.op == "isnull":
            return value is None
        if self.op == "isnotnull":
            return value is not None
        return -value

    def references(self) -> FrozenSet[str]:
        return self.child.references()

    def children(self) -> Sequence[Expression]:
        return (self.child,)

    def __repr__(self) -> str:
        return "%s(%r)" % (self.op, self.child)


class InList(Expression):
    """``expr IN (v1, v2, ...)``."""

    def __init__(self, needle: Expression, options: Sequence[Expression]) -> None:
        self.needle = needle
        self.options = list(options)

    def eval(self, row: Dict[str, Any]) -> Any:
        value = self.needle.eval(row)
        return any(value == option.eval(row) for option in self.options)

    def references(self) -> FrozenSet[str]:
        refs = self.needle.references()
        for option in self.options:
            refs |= option.references()
        return refs

    def children(self) -> Sequence[Expression]:
        return (self.needle, *self.options)

    def __repr__(self) -> str:
        return "in(%r, %r)" % (self.needle, self.options)


class LikeExpr(Expression):
    """SQL LIKE with ``%`` (any run) and ``_`` (one char) wildcards."""

    def __init__(self, child: Expression, pattern: str) -> None:
        import re

        self.child = child
        self.pattern = pattern
        regex = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in pattern
        )
        self._regex = re.compile("^%s$" % regex)

    def eval(self, row: Dict[str, Any]) -> Any:
        value = self.child.eval(row)
        if value is None:
            return False
        return self._regex.match(str(value)) is not None

    def references(self) -> FrozenSet[str]:
        return self.child.references()

    def children(self) -> Sequence[Expression]:
        return (self.child,)

    def __repr__(self) -> str:
        return "like(%r, %r)" % (self.child, self.pattern)


class Alias(Expression):
    """Renames the value an expression produces in a projection."""

    def __init__(self, child: Expression, name: str) -> None:
        self.child = child
        self.name = name

    def eval(self, row: Dict[str, Any]) -> Any:
        return self.child.eval(row)

    def references(self) -> FrozenSet[str]:
        return self.child.references()

    def children(self) -> Sequence[Expression]:
        return (self.child,)

    def __repr__(self) -> str:
        return "alias(%r, %r)" % (self.child, self.name)


def col(name: str) -> ColumnRef:
    """Build a column reference, mirroring ``pyspark.sql.functions.col``."""
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    """Build a literal, mirroring ``pyspark.sql.functions.lit``."""
    return Literal(value)


def output_name(expr: Expression, default: Optional[str] = None) -> str:
    """The column name a projection of *expr* produces."""
    if isinstance(expr, Alias):
        return expr.name
    if isinstance(expr, ColumnRef):
        return expr.name
    if default is not None:
        return default
    return repr(expr)


def split_conjuncts(expr: Expression) -> list:
    """Flatten nested ANDs into a list of conjuncts (for pushdown)."""
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Rebuild a single predicate from a list of conjuncts."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("and", result, conjunct)
    return result
