"""Executor backends: serial in-process oracle vs. multi-process parallel.

The mini-Spark in :mod:`repro.spark.rdd` evaluates partition-parallel
stages with a plain Python loop -- perfect for determinism, useless for
wall-clock speed.  This module makes the loop pluggable.  Every
:class:`~repro.spark.context.SparkContext` owns an *executor backend*
with one entry point, ``materialize(rdd)``, and two implementations:

:class:`InProcessBackend`
    The original serial loop, byte-for-byte.  It stays the **oracle**:
    the differential suites compare every engine's canonical output and
    metrics under the parallel backend against this one.

:class:`ParallelBackend`
    Runs partition tasks on forked worker processes (``fork`` start
    method, so RDD lineage and closures are inherited copy-on-write and
    never pickled).  Execution is staged like real Spark:

    1. **Shuffle map stages.**  Pending :class:`~repro.spark.rdd.ShuffledRDD`
       barriers in the lineage are resolved deepest-first.  Each map
       task computes the bucket *fragments* of one parent partition
       (scan -> combine -> route, the same per-partition pipeline the
       serial shuffle runs) and streams them to the driver over a pipe.
    2. **Final stage.**  The target RDD's partitions are computed by the
       pool and streamed back the same way.

    The driver is the reduce end of the queue pipeline: it merges task
    messages **in ascending task order regardless of arrival order**, so
    bucket contents, metric counters, accumulators, fault-scheduler
    state and cache installs are identical no matter how the workers
    interleave.  That ordering discipline -- not luck -- is what makes
    the canonical wire output byte-identical to the oracle.

Determinism contract (see ``docs/PARALLEL.md`` for the full statement):

* Canonical results are byte-identical to the in-process backend for
  every engine; driver-side merged metrics are invariant to the worker
  count for shuffle/scan/join work without cross-task cache reuse.
* Traces still satisfy conservation (per-span ``self_metrics`` sum to
  the flat totals).  Two fields are concurrency-nondeterministic and
  normalized before comparison: span ``seq`` numbers and the order of
  sibling spans merged from different tasks
  (:func:`repro.spark.tracing.normalize_spans`).
* Deadlines are driver-authoritative: workers run with the deadline
  disarmed and the driver polls after each merged task, so the abort
  point is deterministic; the overshoot bound grows from one task's
  charges to one task *subtree*'s charges.

Known, documented divergences from the oracle (results stay identical;
only cost accounting differs): cross-task reuse of a partition cached
*during* the same stage (e.g. a cached cartesian build side) is
per-worker rather than global, and untargeted ``times=N`` fault rules
fire in task order, which is interleaving-dependent under concurrency.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.spark import accumulator as accumulator_module
from repro.spark.rdd import RDD, ShuffledRDD
from repro.spark.tracing import Span

#: Backend names accepted by every ``backend=`` knob.
BACKEND_NAMES = ("inprocess", "parallel")

#: Default worker-pool size when ``workers`` is not given.  Two keeps the
#: default deterministic across machines (results never depend on the
#: worker count anyway; this only caps default concurrency).
DEFAULT_WORKERS = 2

#: Seconds between liveness checks while waiting on worker pipes.
_POLL_INTERVAL = 0.25

#: Process-wide flag: true inside a forked worker.  Any nested
#: materialization in a worker falls back to the serial loop -- the
#: oracle semantics are always safe.
_WORKER_STATE = {"active": False}


class BackendConfigError(ValueError):
    """A ``backend=``/``workers=`` knob combination is unusable."""


class WorkerCrashError(RuntimeError):
    """A parallel worker process died without completing its protocol."""


def parallel_available() -> bool:
    """Whether this platform can run the parallel backend (needs ``fork``)."""
    return "fork" in multiprocessing.get_all_start_methods()


def build_backend(backend: str = "inprocess", workers: Optional[int] = None):
    """Construct an executor backend from the shared knob pair."""
    if backend == "inprocess":
        return InProcessBackend()
    if backend == "parallel":
        return ParallelBackend(workers)
    raise BackendConfigError(
        "unknown executor backend %r (expected one of %s)"
        % (backend, ", ".join(BACKEND_NAMES))
    )


def _serial_materialize(rdd: RDD) -> List[List[Any]]:
    """The oracle loop: evaluate every partition in index order."""
    return [rdd._iterate(i) for i in range(rdd.num_partitions)]


def _maybe_verify(rdd: RDD) -> None:
    """Opt-in closure verification at job submission.

    When the context was built with ``verify_closures=True``, every
    closure in the lineage is checked against the worker-boundary
    rules (CL000..CL007) before any partition computes; a violating
    closure raises :exc:`repro.analysis.closures.ClosureAnalysisError`
    instead of silently diverging between backends.  Never runs inside
    a worker (the driver already cleared the lineage), and already-
    verified code objects are memoized on the context.
    """
    if _WORKER_STATE["active"]:
        return
    if not getattr(rdd.ctx, "verify_closures", False):
        return
    # Imported lazily: repro.analysis pulls in the optimizer/sparql
    # stack, which must not load during repro.spark's own import.
    from repro.analysis.closures import verify_rdd

    verify_rdd(rdd)


class InProcessBackend:
    """The serial, single-process oracle backend."""

    name = "inprocess"
    workers = 1

    def materialize(self, rdd: RDD) -> List[List[Any]]:
        _maybe_verify(rdd)
        return _serial_materialize(rdd)

    def __repr__(self) -> str:
        return "InProcessBackend()"


# ----------------------------------------------------------------------
# Lineage inspection
# ----------------------------------------------------------------------


def lineage(rdd: RDD) -> List[RDD]:
    """Every distinct RDD reachable from *rdd*, parents before children.

    Narrow and wide dependencies are both followed (``parent`` /
    ``left`` / ``right`` attributes cover every RDD kind in
    :mod:`repro.spark.rdd`); shared sub-lineages are visited once.
    """
    seen: Dict[int, RDD] = {}
    order: List[RDD] = []
    stack: List[Tuple[RDD, bool]] = [(rdd, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen[id(node)] = node
        stack.append((node, True))
        for attr in ("right", "left", "parent"):
            child = getattr(node, attr, None)
            if isinstance(child, RDD) and id(child) not in seen:
                stack.append((child, False))
    return order


def pending_shuffles(nodes: List[RDD]) -> List[ShuffledRDD]:
    """Unresolved shuffle barriers in *nodes*, deepest first."""
    return [
        node
        for node in nodes
        if isinstance(node, ShuffledRDD) and node._buckets is None
    ]


# ----------------------------------------------------------------------
# Worker-side protocol helpers
# ----------------------------------------------------------------------


def _encode_error(exc: BaseException):
    """A picklable description of a worker-task exception.

    Typed substrate errors round-trip exactly (they define
    ``__reduce__``); anything else falls back to an opaque summary that
    the driver re-raises as :class:`WorkerCrashError`.
    """
    try:
        blob = pickle.dumps(exc)
        pickle.loads(blob)  # some exceptions pickle but cannot unpickle
        return ("pickled", blob)
    except Exception:
        return (
            "opaque",
            (type(exc).__name__, str(exc), traceback.format_exc()),
        )


def _decode_error(spec) -> BaseException:
    form, payload = spec
    if form == "pickled":
        return pickle.loads(payload)
    name, message, trace = payload
    return WorkerCrashError(
        "worker task raised %s: %s\n%s" % (name, message, trace)
    )


def _fault_state(faults):
    """Copy of the mutable scheduler state, for delta computation."""
    if faults is None:
        return None
    return (
        [rule.fired for rule in faults.rules],
        dict(faults._loss_draws),
        dict(faults._losses_fired),
    )


def _fault_delta(faults, base):
    """What this worker's tasks added to the scheduler state."""
    if faults is None or base is None:
        return None
    fired = [rule.fired - before for rule, before in zip(faults.rules, base[0])]
    draws = {
        key: count - base[1].get(key, 0)
        for key, count in faults._loss_draws.items()
        if count - base[1].get(key, 0)
    }
    losses = {
        key: count - base[2].get(key, 0)
        for key, count in faults._losses_fired.items()
        if count - base[2].get(key, 0)
    }
    return (fired, sorted(draws.items()), sorted(losses.items()))


def merge_fault_delta(faults, delta) -> None:
    """Fold one worker's scheduler-state delta into the driver scheduler."""
    if faults is None or delta is None:
        return
    fired, draws, losses = delta
    for rule, increment in zip(faults.rules, fired):
        rule.fired += increment
    for key, count in draws:
        faults._loss_draws[key] = faults._loss_draws.get(key, 0) + count
    for key, count in losses:
        faults._losses_fired[key] = faults._losses_fired.get(key, 0) + count


def _cache_bases(nodes: List[RDD]) -> Dict[int, frozenset]:
    """Which partitions of each lineage RDD were cached before the fork."""
    return {
        node.id: frozenset(node._cached or ())
        for node in nodes
    }


def _cache_delta(nodes: List[RDD], bases: Dict[int, frozenset]):
    """Partitions this worker cached that the driver does not have yet."""
    out = []
    for node in nodes:
        if node._cached is None:
            continue
        base = bases.get(node.id, frozenset())
        fresh = sorted(
            (index, data)
            for index, data in node._cached.items()
            if index not in base
        )
        if fresh:
            out.append((node.id, fresh))
    return out


def merge_cache_delta(nodes: List[RDD], delta) -> None:
    """Install worker-cached partitions on the driver's RDD objects.

    ``setdefault`` keeps the first installed copy; partition data is a
    deterministic function of the pre-fork state, so any worker's copy
    is identical.
    """
    by_id = {node.id: node for node in nodes}
    for rdd_id, items in delta:
        node = by_id.get(rdd_id)
        if node is None:
            continue
        if node._cached is None:
            node._cached = {}
        for index, data in items:
            node._cached.setdefault(index, data)


def _worker_main(worker_id, task_indices, ctx, nodes, run_one, conn):
    """Body of one forked worker: run assigned tasks, stream results.

    Everything the driver must merge rides in per-task messages:
    partition data, the marginal metrics delta, completed trace spans,
    and the accumulator journal.  Scheduler-state and cache deltas are
    batched into the final ``done`` message (they are commutative /
    idempotent, unlike the per-task streams).
    """
    try:
        _WORKER_STATE["active"] = True
        # The driver is the only deadline authority under this backend.
        ctx.deadline = None
        tracer = ctx.tracer
        faults = ctx.faults
        fault_base = _fault_state(faults)
        cache_base = _cache_bases(nodes)
        journal: List[Tuple[int, Any]] = []
        accumulator_module._WORKER_JOURNAL = journal
        for index in task_indices:
            if tracer.enabled:
                # Worker spans root at task level; the driver reattaches
                # them under its currently open span and renumbers seq.
                tracer.roots = []
                tracer._stack = []
            del journal[:]
            before = ctx.metrics.snapshot()
            data = None
            error = None
            try:
                data = run_one(index)
            except Exception as exc:  # shipped to the driver, re-raised there
                error = _encode_error(exc)
            delta = ctx.metrics.snapshot() - before
            payload = {
                "data": data,
                "metrics": [(name, value) for name, value in delta if value],
                "spans": (
                    [span.to_dict() for span in tracer.roots]
                    if tracer.enabled
                    else []
                ),
                "accums": list(journal),
                "error": error,
            }
            conn.send(("task", index, payload))
            if error is not None:
                # Mirror the serial loop: no work past a failed task.
                break
        conn.send(
            (
                "done",
                worker_id,
                _cache_delta(nodes, cache_base),
                _fault_delta(faults, fault_base),
            )
        )
    except BaseException:
        try:
            conn.send(("fatal", worker_id, traceback.format_exc()))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
        # Skip atexit/teardown inherited from the forked driver image.
        os._exit(0)


# ----------------------------------------------------------------------
# The parallel backend
# ----------------------------------------------------------------------


class ParallelBackend:
    """Multi-process executor: forked workers, deterministic driver merge."""

    name = "parallel"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is None:
            workers = DEFAULT_WORKERS
        if workers < 1:
            raise BackendConfigError(
                "workers must be >= 1, got %d" % workers
            )
        if not parallel_available():
            raise BackendConfigError(
                "the parallel backend needs the 'fork' start method, "
                "which this platform does not provide"
            )
        self.workers = workers
        self._in_flight = False

    def __repr__(self) -> str:
        return "ParallelBackend(workers=%d)" % self.workers

    # -- entry point ----------------------------------------------------

    def materialize(self, rdd: RDD) -> List[List[Any]]:
        _maybe_verify(rdd)
        if _WORKER_STATE["active"] or self._in_flight:
            # Nested materialization (inside a worker task or a stage
            # already being driven) always takes the oracle path.
            return _serial_materialize(rdd)
        self._in_flight = True
        try:
            nodes = lineage(rdd)
            for shuffled in pending_shuffles(nodes):
                self._resolve_shuffle(shuffled, nodes)
            if isinstance(rdd, ShuffledRDD):
                # Buckets are resolved; reading them is trivial driver
                # work and keeps the task charges on the oracle path.
                return _serial_materialize(rdd)
            return self._final_stage(rdd, nodes)
        finally:
            self._in_flight = False

    # -- stages ---------------------------------------------------------

    def _resolve_shuffle(self, shuffled: ShuffledRDD, nodes: List[RDD]) -> None:
        """Resolve one shuffle barrier with a parallel map stage.

        Mirrors ``ShuffledRDD._ensure_shuffled`` exactly: same span, same
        bucket construction order, same single ``record_shuffle`` charge.
        """
        ctx = shuffled.ctx
        if ctx.tracer.enabled:
            with ctx.tracer.span(
                "shuffle",
                name="rdd%d" % shuffled.id,
                partitions=shuffled.partitioner.num_partitions,
                aggregated=shuffled.aggregator is not None,
            ) as span:
                buckets = self._shuffle_buckets(shuffled, nodes, span)
        else:
            buckets = self._shuffle_buckets(shuffled, nodes, None)
        shuffled._buckets = buckets

    def _shuffle_buckets(
        self, shuffled: ShuffledRDD, nodes: List[RDD], span
    ) -> List[List[Any]]:
        num_out = shuffled.partitioner.num_partitions
        buckets: List[List[Any]] = [[] for _ in range(num_out)]
        records = remote = nbytes = 0
        fragments = self._run_stage(
            shuffled.ctx,
            nodes,
            shuffled._map_fragments,
            shuffled.parent.num_partitions,
        )
        # Ascending map-index concatenation reproduces the serial bucket
        # order byte-for-byte.
        for task_fragments, task_records, task_remote, task_bytes in fragments:
            for reduce_index, fragment in enumerate(task_fragments):
                buckets[reduce_index].extend(fragment)
            records += task_records
            remote += task_remote
            nbytes += task_bytes
        shuffled._finish_shuffle(buckets, records, remote, nbytes, span)
        return buckets

    def _final_stage(self, rdd: RDD, nodes: List[RDD]) -> List[List[Any]]:
        results = self._run_stage(rdd.ctx, nodes, rdd._iterate, rdd.num_partitions)
        if rdd._cache_requested:
            if rdd._cached is None:
                rdd._cached = {}
            for index, data in enumerate(results):
                rdd._cached.setdefault(index, data)
        return results

    # -- the stage engine -----------------------------------------------

    def _run_stage(
        self,
        ctx,
        nodes: List[RDD],
        run_one: Callable[[int], Any],
        num_tasks: int,
    ) -> List[Any]:
        """Run tasks ``0..num_tasks-1`` on the pool; merge in task order.

        A single-task stage runs on the driver directly -- that is the
        oracle path, so it is always semantically safe and skips a
        pointless fork.
        """
        if num_tasks <= 0:
            return []
        ctx.check_deadline()
        if num_tasks == 1:
            return [run_one(0)]
        workers = min(self.workers, num_tasks)
        if workers == 1 and self.workers == 1:
            # One worker still forks: the workers=1 configuration is the
            # honest single-worker baseline of the parallel backend.
            pass
        assigned = [list(range(w, num_tasks, workers)) for w in range(workers)]
        mp_ctx = multiprocessing.get_context("fork")
        conns = []
        procs = []
        for worker_id in range(workers):
            recv_end, send_end = mp_ctx.Pipe(duplex=False)
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(worker_id, assigned[worker_id], ctx, nodes, run_one, send_end),
            )
            proc.daemon = True
            proc.start()
            send_end.close()
            conns.append(recv_end)
            procs.append(proc)
        results: List[Any] = [None] * num_tasks
        buffered: Dict[int, Dict[str, Any]] = {}
        done_msgs: Dict[int, Tuple[Any, Any]] = {}
        next_merge = 0
        try:
            live = list(conns)
            finished = set()
            while live:
                ready = mp_connection.wait(live, timeout=_POLL_INTERVAL)
                if not ready:
                    self._check_liveness(procs, conns, live, finished)
                    continue
                for conn in ready:
                    try:
                        message = conn.recv()
                    except EOFError:
                        live.remove(conn)
                        worker_id = conns.index(conn)
                        if worker_id not in finished:
                            raise WorkerCrashError(
                                "parallel worker %d exited before "
                                "completing its tasks (exit code %s)"
                                % (worker_id, procs[worker_id].exitcode)
                            )
                        continue
                    kind = message[0]
                    if kind == "task":
                        _, index, payload = message
                        buffered[index] = payload
                        next_merge = self._merge_ready(
                            ctx, results, buffered, next_merge
                        )
                    elif kind == "done":
                        _, worker_id, cache_delta, fault_delta = message
                        finished.add(worker_id)
                        done_msgs[worker_id] = (cache_delta, fault_delta)
                    else:  # fatal
                        _, worker_id, trace = message
                        raise WorkerCrashError(
                            "parallel worker %d crashed:\n%s" % (worker_id, trace)
                        )
            if next_merge != num_tasks:
                raise WorkerCrashError(
                    "parallel stage lost tasks: merged %d of %d"
                    % (next_merge, num_tasks)
                )
            # Batched, commutative state: merged only on full success, in
            # worker-id order for determinism.
            for worker_id in sorted(done_msgs):
                cache_delta, fault_delta = done_msgs[worker_id]
                merge_cache_delta(nodes, cache_delta)
                merge_fault_delta(ctx.faults, fault_delta)
            return results
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=2.0)
            for conn in conns:
                try:
                    conn.close()
                except Exception:
                    pass

    def _merge_ready(self, ctx, results, buffered, next_merge) -> int:
        """Merge buffered payloads while the next task index is present.

        This is the determinism keystone: metric deltas, spans,
        accumulator journals, errors and deadline polls are applied in
        ascending task order no matter which worker finished first.
        """
        while next_merge in buffered:
            payload = buffered.pop(next_merge)
            ctx.metrics.merge_delta(payload["metrics"])
            if ctx.tracer.enabled and payload["spans"]:
                self._attach_spans(ctx.tracer, payload["spans"])
            for uid, amount in payload["accums"]:
                accumulator = ctx._accumulators.get(uid)
                if accumulator is not None:
                    accumulator.add(amount)
            if payload["error"] is not None:
                raise _decode_error(payload["error"])
            results[next_merge] = payload["data"]
            next_merge += 1
            # The driver poll mirrors the serial per-task kill point:
            # checking after merging task i equals the oracle's check on
            # entry to task i+1.
            ctx.check_deadline()
        return next_merge

    def _attach_spans(self, tracer, span_dicts) -> None:
        """Reattach worker spans under the driver's open span.

        ``seq`` is renumbered from the driver's counter in depth-first
        order -- one of the two documented concurrency-normalized trace
        fields (the other is sibling order across tasks).
        """
        parent = tracer.current
        for data in span_dicts:
            span = Span.from_dict(data)
            for node in span.walk():
                node.seq = tracer._seq
                tracer._seq += 1
            if parent is not None:
                parent.children.append(span)
            else:
                tracer.roots.append(span)

    def _check_liveness(self, procs, conns, live, finished) -> None:
        """Detect workers that died without closing their pipe cleanly."""
        for worker_id, proc in enumerate(procs):
            if (
                conns[worker_id] in live
                and worker_id not in finished
                and not proc.is_alive()
                and proc.exitcode not in (0, None)
            ):
                raise WorkerCrashError(
                    "parallel worker %d died (exit code %s)"
                    % (worker_id, proc.exitcode)
                )
