"""Accumulators: write-only shared counters, like Spark's.

Tasks add to an accumulator while computing partitions; only the driver
reads the total.  Engines use them to report side statistics (patterns
matched, candidates pruned) without threading values through RDD lineage.
"""

from __future__ import annotations

from typing import Callable, Generic, Optional, TypeVar

T = TypeVar("T")


class Accumulator(Generic[T]):
    """A driver-readable, task-writable aggregate value."""

    def __init__(
        self,
        zero: T,
        add: Optional[Callable[[T, T], T]] = None,
        name: Optional[str] = None,
    ) -> None:
        self._zero = zero
        self._value = zero
        self._add = add or (lambda a, b: a + b)
        self.name = name

    def add(self, amount: T) -> None:
        """Fold *amount* into the running value (task side)."""
        self._value = self._add(self._value, amount)

    def __iadd__(self, amount: T) -> "Accumulator[T]":
        self.add(amount)
        return self

    @property
    def value(self) -> T:
        """The accumulated value (driver side)."""
        return self._value

    def reset(self) -> None:
        self._value = self._zero

    def __repr__(self) -> str:
        label = " %r" % self.name if self.name else ""
        return "Accumulator%s(value=%r)" % (label, self._value)
