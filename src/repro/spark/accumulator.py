"""Accumulators: write-only shared counters, like Spark's.

Tasks add to an accumulator while computing partitions; only the driver
reads the total.  Engines use them to report side statistics (patterns
matched, candidates pruned) without threading values through RDD lineage.
"""

from __future__ import annotations

from typing import Any, Callable, Generic, List, Optional, Tuple, TypeVar

T = TypeVar("T")

#: Set by a parallel-backend worker to its per-task journal; every add()
#: is then recorded as ``(uid, amount)`` so the driver can *replay* the
#: adds in ascending task order.  Replay (not state shipping) is what
#: keeps non-commutative fold functions deterministic under concurrency.
_WORKER_JOURNAL: Optional[List[Tuple[int, Any]]] = None

#: Driver-side uid source; uids are assigned before any fork, so they
#: agree between the driver and every worker.
_UID_COUNTER = [0]


class Accumulator(Generic[T]):
    """A driver-readable, task-writable aggregate value."""

    def __init__(
        self,
        zero: T,
        add: Optional[Callable[[T, T], T]] = None,
        name: Optional[str] = None,
    ) -> None:
        self._zero = zero
        self._value = zero
        self._add = add or (lambda a, b: a + b)
        self.name = name
        _UID_COUNTER[0] += 1
        self.uid = _UID_COUNTER[0]

    def add(self, amount: T) -> None:
        """Fold *amount* into the running value (task side)."""
        self._value = self._add(self._value, amount)
        if _WORKER_JOURNAL is not None:
            _WORKER_JOURNAL.append((self.uid, amount))

    def __iadd__(self, amount: T) -> "Accumulator[T]":
        self.add(amount)
        return self

    @property
    def value(self) -> T:
        """The accumulated value (driver side)."""
        return self._value

    def reset(self) -> None:
        self._value = self._zero

    def __repr__(self) -> str:
        label = " %r" % self.name if self.name else ""
        return "Accumulator%s(value=%r)" % (label, self._value)
