"""SparkContext: entry point to the simulated cluster."""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Union

from repro.spark.broadcast import Broadcast
from repro.spark.deadline import Deadline
from repro.spark.faults import FaultScheduler, as_fault_scheduler
from repro.spark.metrics import MetricsCollector
from repro.spark.parallel import build_backend
from repro.spark.partitioner import Partitioner
from repro.spark.rdd import ParallelCollectionRDD, PrePartitionedRDD, RDD
from repro.spark.tracing import Tracer


class SparkContext:
    """Owns the virtual cluster: executors, metrics, tracing, and RDD creation.

    Parameters
    ----------
    default_parallelism:
        How many partitions :meth:`parallelize` produces by default.
    num_executors:
        How many virtual machines partitions are spread over.  Partition
        *i* lives on executor ``i % num_executors``; shuffle records that
        change executor are charged as remote traffic.
    faults:
        Optional adversarial schedule: a
        :class:`~repro.spark.faults.FaultScheduler` or a spec string
        (``"fail:p=0.2;lose:p=0.5;seed=7"``) injecting task failures,
        partition-loss events, and stragglers.  ``None`` (the default)
        keeps the perfect-cluster behaviour.
    max_task_attempts:
        How many times a task may run before a persistent failure raises
        :class:`~repro.spark.faults.TaskFailedError` (Spark's
        ``spark.task.maxFailures``, default 4).
    speculation:
        When true, straggling tasks launch a speculative backup copy
        (charged as an extra task plus ``speculative_launches``).
    backend:
        Executor backend running partition-parallel stages:
        ``"inprocess"`` (the default serial oracle) or ``"parallel"``
        (a forked ``multiprocessing`` worker pool; see
        :mod:`repro.spark.parallel` and ``docs/PARALLEL.md``).  Both
        produce byte-identical canonical results.
    workers:
        Worker-pool size for the parallel backend (default 2); ignored
        by the in-process backend.
    verify_closures:
        Opt-in worker-boundary enforcement: every closure in a job's
        lineage is analyzed at submission time (rules CL000..CL007,
        see :mod:`repro.analysis.closures`) and a violating one raises
        :exc:`repro.analysis.closures.ClosureAnalysisError` instead of
        silently diverging from the oracle.  Off by default.
    """

    def __init__(
        self,
        default_parallelism: int = 4,
        num_executors: Optional[int] = None,
        faults: Union[None, str, FaultScheduler] = None,
        max_task_attempts: int = 4,
        speculation: bool = False,
        backend: str = "inprocess",
        workers: Optional[int] = None,
        verify_closures: bool = False,
    ) -> None:
        if default_parallelism <= 0:
            raise ValueError("default_parallelism must be positive")
        self.default_parallelism = default_parallelism
        self.num_executors = (
            default_parallelism if num_executors is None else num_executors
        )
        if self.num_executors <= 0:
            raise ValueError("num_executors must be positive")
        if max_task_attempts < 1:
            raise ValueError("max_task_attempts must be >= 1")
        self.metrics = MetricsCollector()
        #: Span recorder for per-stage cost attribution; disabled by default.
        self.tracer = Tracer(self.metrics)
        #: Fault schedule applied to every task of this context, or None.
        self.faults = as_fault_scheduler(faults)
        self.max_task_attempts = max_task_attempts
        self.speculation = speculation
        #: True while a lost partition is being rebuilt (guards nested
        #: recovery from double-charging ``recompute_comparisons``).
        self._recovering = False
        #: Armed cost-unit budget for the running query, or None.  The
        #: task loop polls it via :meth:`check_deadline` once per
        #: partition computation (see :mod:`repro.spark.deadline`).
        self.deadline: Optional[Deadline] = None
        #: Executor backend evaluating partition-parallel stages; see
        #: :mod:`repro.spark.parallel`.
        self.executor_backend = build_backend(backend, workers)
        self.backend = self.executor_backend.name
        self.workers = self.executor_backend.workers
        #: Opt-in job-submission closure verification (CL000..CL007);
        #: see :mod:`repro.analysis.closures` and docs/PARALLEL.md.
        self.verify_closures = bool(verify_closures)
        #: Closures already cleared by the verifier (id -> function, the
        #: reference pins the id), so repeated materializations of the
        #: same lineage re-check nothing.
        self._verified_closures: dict = {}
        #: Accumulators created through :meth:`accumulator`, by uid, so
        #: the parallel backend can replay worker-side adds in task order.
        self._accumulators: dict = {}
        self._rdd_counter = 0
        self._broadcast_counter = 0

    def _next_rdd_id(self) -> int:
        self._rdd_counter += 1
        return self._rdd_counter

    def set_deadline(
        self, budget: Optional[int], query: Optional[str] = None
    ) -> Optional[Deadline]:
        """Arm (or, with ``None``, disarm) a cost-unit deadline.

        The budget counts from the collector's *current* state, so work
        already charged -- store builds, earlier queries on a pooled
        engine -- is not billed against this query.  Returns the armed
        :class:`~repro.spark.deadline.Deadline` (or None).
        """
        if budget is None:
            self.deadline = None
        else:
            self.deadline = Deadline(budget, self.metrics, query)
        return self.deadline

    def check_deadline(self) -> None:
        """Poll the armed deadline, if any (called once per task)."""
        if self.deadline is not None:
            self.deadline.check()

    def executor_for(self, partition_index: int) -> int:
        """The virtual executor hosting *partition_index*."""
        return partition_index % self.num_executors

    def parallelize(
        self, data: Iterable[Any], num_partitions: Optional[int] = None
    ) -> RDD:
        """Distribute a local collection into an RDD."""
        return ParallelCollectionRDD(
            self, data, num_partitions or self.default_parallelism
        )

    def fromPartitions(
        self,
        partitions: List[List[Any]],
        partitioner: Optional[Partitioner] = None,
    ) -> RDD:
        """Create an RDD whose partition placement the caller chose.

        Used by engines that maintain their own stores (vertical partitions,
        MESG indexes) to declare where each record already lives.
        """
        return PrePartitionedRDD(self, partitions, partitioner)

    def emptyRDD(self) -> RDD:
        return ParallelCollectionRDD(self, [], 1)

    def textFile(self, path: str, num_partitions: Optional[int] = None) -> RDD:
        """Read a local file into an RDD of lines."""
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line.rstrip("\n") for line in handle]
        return self.parallelize(lines, num_partitions)

    def broadcast(self, value: Any) -> Broadcast:
        """Ship a read-only value to every executor (cost is charged)."""
        self._broadcast_counter += 1
        if not self.tracer.enabled:
            return Broadcast(self, value, self._broadcast_counter)
        with self.tracer.span(
            "broadcast", name="b%d" % self._broadcast_counter
        ):
            return Broadcast(self, value, self._broadcast_counter)

    def accumulator(self, zero: Any = 0, add=None, name: str = None):
        """Create a write-only shared counter (see
        :class:`repro.spark.accumulator.Accumulator`)."""
        from repro.spark.accumulator import Accumulator

        accumulator = Accumulator(zero, add, name)
        self._accumulators[accumulator.uid] = accumulator
        return accumulator

    def __repr__(self) -> str:
        return "SparkContext(parallelism=%d, executors=%d)" % (
            self.default_parallelism,
            self.num_executors,
        )
