"""Deterministic fault injection for the simulated cluster.

The paper's framework-level argument for Spark over MapReduce rests on
lineage-based fault tolerance: RDDs record how each partition was derived,
so a lost partition is *recomputed* from its dependency graph instead of
restarting the job, and failed tasks are simply retried (Section III).
Until now the simulated cluster assumed a perfect machine, so that claim
was untested metadata.  This module makes it executable: a
:class:`FaultScheduler`, attached to a
:class:`~repro.spark.context.SparkContext`, injects three kinds of event
into task execution, keyed by ``(stage, partition, attempt)``:

``fail``
    The task attempt dies before producing output.  The scheduler retries
    it (charging ``tasks_failed`` / ``tasks_retried``) up to the context's
    ``max_task_attempts``; exhaustion raises :class:`TaskFailedError`.
``lose``
    A cached partition is evicted after materialization -- the simulated
    analogue of losing an executor's memory.  The owning RDD rebuilds it
    from lineage, charging ``partitions_recomputed`` and the recovery work
    to ``recompute_comparisons``.  Checkpointed RDDs
    (:meth:`~repro.spark.rdd.RDD.checkpoint`) are immune: their partitions
    live on reliable storage.
``straggle``
    The task is slow.  ``straggler_delay_units`` is charged, and when the
    context enables speculation a backup copy is launched
    (``speculative_launches``), mirroring Spark's speculative execution.

Every decision is a pure function of ``(seed, kind, stage, partition,
draw)``, so a given schedule is byte-reproducible: the same seed yields
the same failures, the same retries, and the same trace JSON.

Schedules are built programmatically from :class:`FaultRule` objects or
parsed from the compact spec grammar used by the CLI's ``--faults``::

    SPEC   := clause (';' clause)*
    clause := 'seed' '=' INT
            | KIND [':' param (',' param)*]
    KIND   := 'fail' | 'lose' | 'straggle'
    param  := 'p' '=' FLOAT          -- firing probability per decision
            | 'stage' '=' INT        -- restrict to one stage (RDD id)
            | 'partition' '=' INT    -- restrict to one partition index
            | 'times' '=' INT        -- cap total firings of this rule
            | 'delay' '=' INT        -- straggler delay units (straggle only)

Examples: ``fail:p=0.2``, ``lose:p=0.5;seed=7``,
``fail:stage=12,partition=0;straggle:p=0.1,delay=3``.  A targeted clause
(one naming a stage or partition) with neither ``p`` nor ``times`` fires
exactly once.  See ``docs/FAULTS.md`` for the full failure model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

#: The fault kinds a rule may inject.
FAULT_KINDS = ("fail", "lose", "straggle")


class FaultSpecError(ValueError):
    """A ``--faults`` spec string does not follow the grammar."""


class TaskFailedError(RuntimeError):
    """A task exhausted ``max_task_attempts`` under the fault schedule.

    Carries the failing coordinates so callers (and the CLI) can report
    *which* task died rather than a bare exception.
    """

    def __init__(
        self,
        stage: int,
        partition: int,
        attempts: int,
        engine: Optional[str] = None,
    ) -> None:
        self.stage = stage
        self.partition = partition
        self.attempts = attempts
        #: Engine name, filled in by the systems driver when known.
        self.engine = engine
        super().__init__()

    def __reduce__(self):
        # Exceptions with custom __init__ signatures need an explicit
        # recipe to cross the parallel backend's worker pipes.
        return (
            TaskFailedError,
            (self.stage, self.partition, self.attempts, self.engine),
        )

    def __str__(self) -> str:
        message = (
            "task failed permanently: stage=%d partition=%d after %d "
            "attempt(s)" % (self.stage, self.partition, self.attempts)
        )
        if self.engine:
            message += " [engine %s]" % self.engine
        return message

    def __repr__(self) -> str:
        return (
            "TaskFailedError(stage=%d, partition=%d, attempts=%d)"
            % (self.stage, self.partition, self.attempts)
        )


@dataclass
class FaultRule:
    """One injection rule: which kind, where it applies, how often.

    ``p`` is the firing probability per decision point (1.0 = always);
    ``stage``/``partition`` restrict the rule to matching tasks (``None``
    matches everything); ``times`` caps the rule's total firings
    (``None`` = unlimited); ``delay`` is the straggler cost in delay
    units.  ``fired`` counts firings so far (scheduler state).
    """

    kind: str
    p: float = 1.0
    stage: Optional[int] = None
    partition: Optional[int] = None
    times: Optional[int] = None
    delay: int = 1
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(
                "unknown fault kind %r (expected one of %s)"
                % (self.kind, ", ".join(FAULT_KINDS))
            )
        if not 0.0 <= self.p <= 1.0:
            raise FaultSpecError(
                "probability must be in [0, 1], got %r" % (self.p,)
            )
        if self.delay < 1:
            raise FaultSpecError("delay must be >= 1, got %d" % self.delay)

    def matches(self, stage: int, partition: int) -> bool:
        if self.stage is not None and self.stage != stage:
            return False
        if self.partition is not None and self.partition != partition:
            return False
        return True

    @property
    def exhausted(self) -> bool:
        return self.times is not None and self.fired >= self.times


class FaultScheduler:
    """Decides, deterministically, which task executions suffer faults.

    One scheduler belongs to one :class:`SparkContext`; rule firing
    counters are per-run state, so reuse across contexts goes through
    :meth:`fork` (same rules and seed, counters reset).

    Parameters
    ----------
    rules:
        The :class:`FaultRule` list, consulted in order (first match
        fires).  ``fail`` rules take precedence over ``straggle`` for the
        same task attempt.
    seed:
        Root of every probabilistic decision; two schedulers with equal
        rules and seed make identical decisions.
    max_losses_per_partition:
        Safety cap on how often one ``(stage, partition)`` can be lost,
        so ``lose:p=1`` cannot livelock a query in an eviction loop.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule] = (),
        seed: int = 17,
        max_losses_per_partition: int = 2,
    ) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self.max_losses_per_partition = max_losses_per_partition
        self._loss_draws: Dict[Tuple[int, int], int] = {}
        self._losses_fired: Dict[Tuple[int, int], int] = {}
        self._spec: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_spec(cls, text: str) -> "FaultScheduler":
        """Parse the ``--faults`` grammar (see the module docstring)."""
        rules: List[FaultRule] = []
        seed = 17
        for raw in text.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if clause.startswith("seed"):
                key, eq, value = clause.partition("=")
                if key.strip() != "seed" or not eq:
                    raise FaultSpecError("malformed clause %r" % clause)
                seed = _parse_int(value, "seed")
                continue
            kind, _, params = clause.partition(":")
            kind = kind.strip()
            if kind not in FAULT_KINDS:
                raise FaultSpecError(
                    "unknown fault kind %r in clause %r (expected one of "
                    "%s, or seed=N)" % (kind, clause, ", ".join(FAULT_KINDS))
                )
            kwargs: Dict[str, Union[int, float]] = {}
            for param in params.split(",") if params.strip() else []:
                key, eq, value = param.partition("=")
                key = key.strip()
                if not eq:
                    raise FaultSpecError(
                        "malformed parameter %r in clause %r (expected "
                        "key=value)" % (param.strip(), clause)
                    )
                if key == "p":
                    kwargs["p"] = _parse_float(value, "p")
                elif key in ("stage", "partition", "times", "delay"):
                    kwargs[key] = _parse_int(value, key)
                else:
                    raise FaultSpecError(
                        "unknown parameter %r in clause %r" % (key, clause)
                    )
            targeted = "stage" in kwargs or "partition" in kwargs
            if targeted and "p" not in kwargs and "times" not in kwargs:
                kwargs["times"] = 1  # a bare targeted clause fires once
            rules.append(FaultRule(kind=kind, **kwargs))
        if not rules:
            raise FaultSpecError("fault spec %r declares no rules" % text)
        scheduler = cls(rules, seed=seed)
        scheduler._spec = text
        return scheduler

    def fork(self) -> "FaultScheduler":
        """A fresh scheduler with the same rules/seed and zeroed state."""
        forked = FaultScheduler(
            [replace(rule, fired=0) for rule in self.rules],
            seed=self.seed,
            max_losses_per_partition=self.max_losses_per_partition,
        )
        forked._spec = self._spec
        return forked

    def add_rule(self, rule: FaultRule) -> "FaultScheduler":
        self.rules.append(rule)
        return self

    @property
    def active(self) -> bool:
        return bool(self.rules)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _chance(self, kind: str, stage: int, partition: int, draw: int) -> float:
        """A deterministic uniform draw for one decision point.

        Seeding :class:`random.Random` with a string hashes it (stable
        across processes and Python versions), unlike built-in ``hash``.
        """
        return random.Random(
            "%d|%s|%d|%d|%d" % (self.seed, kind, stage, partition, draw)
        ).random()

    def _fire(self, kind: str, stage: int, partition: int, draw: int):
        for rule in self.rules:
            if (
                rule.kind != kind
                or rule.exhausted
                or not rule.matches(stage, partition)
            ):
                continue
            if rule.p >= 1.0 or self._chance(kind, stage, partition, draw) < rule.p:
                rule.fired += 1
                return rule
        return None

    def decide_task(
        self, stage: int, partition: int, attempt: int
    ) -> Optional[FaultRule]:
        """The fault (if any) hitting this task attempt.

        ``fail`` is checked before ``straggle``: a dead attempt cannot
        also be slow.  Returns the firing rule so the caller can read its
        ``kind`` and ``delay``.
        """
        for kind in ("fail", "straggle"):
            rule = self._fire(kind, stage, partition, attempt)
            if rule is not None:
                return rule
        return None

    def decide_loss(self, stage: int, partition: int) -> bool:
        """Whether this cached partition is lost on the current read."""
        key = (stage, partition)
        draw = self._loss_draws.get(key, 0)
        self._loss_draws[key] = draw + 1
        if self._losses_fired.get(key, 0) >= self.max_losses_per_partition:
            return False
        if self._fire("lose", stage, partition, draw) is None:
            return False
        self._losses_fired[key] = self._losses_fired.get(key, 0) + 1
        return True

    def __repr__(self) -> str:
        if self._spec is not None:
            return "FaultScheduler(spec=%r, seed=%d)" % (self._spec, self.seed)
        return "FaultScheduler(rules=%d, seed=%d)" % (len(self.rules), self.seed)


def as_fault_scheduler(
    faults: Union[None, str, FaultScheduler]
) -> Optional[FaultScheduler]:
    """Normalize a faults argument: None, a spec string, or a scheduler."""
    if faults is None or isinstance(faults, FaultScheduler):
        return faults
    if isinstance(faults, str):
        return FaultScheduler.from_spec(faults)
    raise TypeError(
        "faults must be None, a spec string, or a FaultScheduler, "
        "not %r" % type(faults).__name__
    )


def _parse_int(text: str, name: str) -> int:
    try:
        return int(text.strip())
    except ValueError:
        raise FaultSpecError("%s expects an integer, got %r" % (name, text.strip()))


def _parse_float(text: str, name: str) -> float:
    try:
        return float(text.strip())
    except ValueError:
        raise FaultSpecError("%s expects a number, got %r" % (name, text.strip()))
