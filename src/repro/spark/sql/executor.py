"""Physical execution: lowers an optimized logical plan onto DataFrames."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.spark.column import (
    Alias,
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    LikeExpr,
    Literal,
    UnaryOp,
    conjoin,
    split_conjuncts,
)
from repro.spark.dataframe import DataFrame
from repro.spark.sql.ast import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    Union,
)
from repro.spark.sql.catalyst import _matches


class SqlAnalysisError(ValueError):
    """Raised when a name cannot be resolved against the plan's schema."""


def resolve_name(name: str, available: List[str]) -> str:
    """Resolve a (possibly qualified) reference to one output column."""
    hits = _matches(available, name)
    if len(hits) == 1:
        return hits[0]
    if not hits:
        raise SqlAnalysisError(
            "cannot resolve column %r; available: %r" % (name, available)
        )
    raise SqlAnalysisError(
        "ambiguous column %r; candidates: %r" % (name, hits)
    )


def resolve_expr(expr: Expression, available: List[str]) -> Expression:
    """Rewrite ColumnRefs in *expr* to exact output-column names."""
    if isinstance(expr, ColumnRef):
        return ColumnRef(resolve_name(expr.name, available))
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            resolve_expr(expr.left, available),
            resolve_expr(expr.right, available),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, resolve_expr(expr.child, available))
    if isinstance(expr, InList):
        return InList(
            resolve_expr(expr.needle, available),
            [resolve_expr(option, available) for option in expr.options],
        )
    if isinstance(expr, LikeExpr):
        return LikeExpr(resolve_expr(expr.child, available), expr.pattern)
    if isinstance(expr, Alias):
        return Alias(resolve_expr(expr.child, available), expr.name)
    return expr


def _split_join_condition(
    condition: Optional[Expression],
    left_columns: List[str],
    right_columns: List[str],
) -> Tuple[List[Tuple[Expression, Expression]], Optional[Expression]]:
    """Separate equi-join pairs from residual predicates.

    Returns (pairs, residual) where each pair is (left-side expression,
    right-side expression) already resolved against its input.
    """
    if condition is None:
        return [], None
    pairs: List[Tuple[Expression, Expression]] = []
    residual: List[Expression] = []
    for conjunct in split_conjuncts(condition):
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            sides = (conjunct.left, conjunct.right)
            resolved = None
            for a, b in (sides, sides[::-1]):
                try:
                    left_resolved = resolve_expr(a, left_columns)
                    right_resolved = resolve_expr(b, right_columns)
                except SqlAnalysisError:
                    continue
                resolved = (left_resolved, right_resolved)
                break
            if resolved is not None:
                pairs.append(resolved)
                continue
        residual.append(conjunct)
    return pairs, conjoin(residual)


def _plan_attrs(plan: LogicalPlan) -> Dict[str, object]:
    """Small, JSON-safe span attributes describing one plan node."""
    if isinstance(plan, Scan):
        attrs: Dict[str, object] = {"table": plan.table}
        if plan.alias:
            attrs["alias"] = plan.alias
        return attrs
    if isinstance(plan, Join):
        return {"how": plan.how}
    if isinstance(plan, Aggregate):
        return {"group_by": list(plan.group_by)}
    if isinstance(plan, Limit):
        return {"count": plan.count, "offset": plan.offset}
    return {}


def execute(plan: LogicalPlan, session) -> DataFrame:
    """Evaluate *plan* against the session catalog.

    When the context's tracer is enabled, each plan node gets a ``sql``
    span and its output is materialized (cached and counted) inside that
    span, so the lazily charged costs land on the operator that caused
    them -- the physical-plan half of ``repro explain``.
    """
    tracer = session.ctx.tracer
    if not tracer.enabled:
        return _execute_node(plan, session)
    from repro.spark.sql.catalyst import estimated_rows

    attrs = _plan_attrs(plan)
    attrs["est_rows"] = estimated_rows(plan, session)
    with tracer.span("sql", name=type(plan).__name__, **attrs):
        df = _execute_node(plan, session)
        df.rdd.cache()
        df.rdd.count()
        return df


def _execute_node(plan: LogicalPlan, session) -> DataFrame:
    if isinstance(plan, Scan):
        df = session.table(plan.table)
        columns = plan.required_columns
        if columns is not None:
            df = df.select(*columns)
        prefix = plan.alias or plan.table
        renamed = df
        for column in df.columns:
            renamed = renamed.withColumnRenamed(column, "%s.%s" % (prefix, column))
        return renamed

    if isinstance(plan, Filter):
        child = execute(plan.child, session)
        condition = resolve_expr(plan.condition, child.columns)
        return child.where(condition)

    if isinstance(plan, Join):
        return _execute_join(plan, session)

    if isinstance(plan, Project):
        child = execute(plan.child, session)
        exprs = [
            Alias(resolve_expr(expr, child.columns), name)
            for expr, name in plan.items
        ]
        return child.select(*exprs)

    if isinstance(plan, Aggregate):
        child = execute(plan.child, session)
        keys = [resolve_name(name, child.columns) for name in plan.group_by]
        specs = [
            (
                func,
                "*" if arg == "*" else resolve_name(arg, child.columns),
                alias,
            )
            for func, arg, alias in plan.aggregates
        ]
        result = child.groupBy(*keys).agg(*specs)
        # Strip qualification from group keys so downstream projections see
        # the names the query wrote.
        for original, resolved in zip(plan.group_by, keys):
            bare = original.split(".")[-1]
            if resolved != bare and bare not in result.columns:
                result = result.withColumnRenamed(resolved, bare)
        return result

    if isinstance(plan, Distinct):
        return execute(plan.child, session).distinct()

    if isinstance(plan, Sort):
        child = execute(plan.child, session)
        columns = [resolve_name(name, child.columns) for name, _asc in plan.orders]
        ascending = [asc for _name, asc in plan.orders]
        return child.orderBy(*columns, ascending=ascending)

    if isinstance(plan, Limit):
        child = execute(plan.child, session)
        rows = child.rdd.take(plan.offset + plan.count)[plan.offset :]
        return DataFrame(
            session, session.ctx.parallelize(rows, 1), child.columns
        )

    if isinstance(plan, Union):
        left = execute(plan.left, session)
        right = execute(plan.right, session)
        merged = left.union(
            DataFrame(session, right.rdd, left.columns)
        )
        return merged.distinct() if plan.dedup else merged

    raise TypeError("cannot execute plan node %r" % plan)


def _execute_join(plan: Join, session) -> DataFrame:
    left = execute(plan.left, session)
    right = execute(plan.right, session)
    pairs, residual = _split_join_condition(
        plan.condition, left.columns, right.columns
    )

    if plan.how == "semi":
        return _execute_semi_join(left, right, pairs, residual, session)

    if not pairs:
        # No equi component: fall back to a cartesian product plus filter --
        # the very inefficiency Section IV-A3 calls out for naive SQL
        # translations of multi-pattern queries.
        result = left.crossJoin(right)
        if residual is not None:
            result = result.where(resolve_expr(residual, result.columns))
        elif plan.how not in ("cross", "inner"):
            raise SqlAnalysisError(
                "outer join without an equi condition is unsupported"
            )
        return result

    key_names = []
    for index, (left_expr, right_expr) in enumerate(pairs):
        key = "__jk%d" % index
        key_names.append(key)
        left = left.withColumn(key, left_expr)
        right = right.withColumn(key, right_expr)
    joined = left.join(right, on=key_names, how=plan.how)
    if residual is not None:
        joined = joined.where(resolve_expr(residual, joined.columns))
    return joined.drop(*key_names)


def _execute_semi_join(
    left: DataFrame,
    right: DataFrame,
    pairs: List[Tuple[Expression, Expression]],
    residual: Optional[Expression],
    session,
) -> DataFrame:
    """LEFT SEMI JOIN: keep left rows with at least one right match.

    Implemented as a broadcast of the right side's key set -- the primitive
    with which S2RDF materializes its ExtVP semi-join reductions.
    """
    if not pairs:
        raise SqlAnalysisError("semi join requires at least one equi condition")
    if residual is not None:
        raise SqlAnalysisError("semi join supports only equi conditions")
    right_key_exprs = [expr for _l, expr in pairs]
    right_columns = right.columns

    key_rows = set()
    for values in right.rdd.collect():
        row = dict(zip(right_columns, values))
        key_rows.add(tuple(expr.eval(row) for expr in right_key_exprs))
    bcast = session.ctx.broadcast(key_rows)

    left_key_exprs = [expr for expr, _r in pairs]
    left_columns = left.columns

    def keep(values) -> bool:
        row = dict(zip(left_columns, values))
        key = tuple(expr.eval(row) for expr in left_key_exprs)
        return key in bcast.value

    return DataFrame(session, left.rdd.filter(keep), left.columns)
