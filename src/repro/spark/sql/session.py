"""SparkSession: catalog of named tables plus the ``sql()`` entry point."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.spark.context import SparkContext
from repro.spark.dataframe import DataFrame
from repro.spark.row import Row
from repro.spark.sql.catalyst import Catalog, optimize
from repro.spark.sql.executor import execute
from repro.spark.sql.parser import parse_sql


class SparkSession(Catalog):
    """Entry point for DataFrame and SQL work on the simulated cluster.

    Parameters
    ----------
    ctx:
        An existing :class:`SparkContext`; one is created when omitted.
    autoBroadcastJoinThreshold:
        Build sides whose estimated size (bytes) is at or below this are
        broadcast instead of shuffled; ``None`` disables automatic
        broadcasting (Spark's ``-1``).
    faults / max_task_attempts / speculation:
        Fault-injection knobs forwarded to the :class:`SparkContext`
        created when ``ctx`` is omitted (see
        :mod:`repro.spark.faults`); DataFrame and SQL execution then run
        under the same adversarial schedule as raw RDD code.  Passing
        them together with an explicit ``ctx`` is an error -- configure
        the context instead.
    backend / workers:
        Executor-backend knobs forwarded the same way (see
        :mod:`repro.spark.parallel`): ``"inprocess"`` (serial oracle,
        the default) or ``"parallel"`` (forked worker pool).  Like
        ``faults``, selecting a non-default backend together with an
        explicit ``ctx`` is an error.
    """

    def __init__(
        self,
        ctx: Optional[SparkContext] = None,
        default_parallelism: int = 4,
        autoBroadcastJoinThreshold: Optional[int] = 10 * 1024,
        faults=None,
        max_task_attempts: int = 4,
        speculation: bool = False,
        backend: str = "inprocess",
        workers: Optional[int] = None,
    ) -> None:
        if ctx is not None and faults is not None:
            raise ValueError(
                "pass faults either to the SparkContext or to the "
                "SparkSession, not both"
            )
        if ctx is not None and backend != "inprocess":
            raise ValueError(
                "pass the executor backend either to the SparkContext or "
                "to the SparkSession, not both"
            )
        self.ctx = ctx or SparkContext(
            default_parallelism,
            faults=faults,
            max_task_attempts=max_task_attempts,
            speculation=speculation,
            backend=backend,
            workers=workers,
        )
        self.autoBroadcastJoinThreshold = autoBroadcastJoinThreshold
        self._tables: Dict[str, DataFrame] = {}

    # ------------------------------------------------------------------
    # DataFrame construction
    # ------------------------------------------------------------------

    def createDataFrame(
        self,
        data: Iterable[Any],
        columns: Sequence[str],
        num_partitions: Optional[int] = None,
    ) -> DataFrame:
        """Build a DataFrame from rows (tuples, lists, dicts or Rows)."""
        normalized: List[tuple] = []
        for record in data:
            if isinstance(record, Row):
                normalized.append(tuple(record[c] for c in columns))
            elif isinstance(record, dict):
                normalized.append(tuple(record.get(c) for c in columns))
            else:
                values = tuple(record)
                if len(values) != len(columns):
                    raise ValueError(
                        "row %r does not match columns %r" % (record, columns)
                    )
                normalized.append(values)
        rdd = self.ctx.parallelize(normalized, num_partitions)
        return DataFrame(self, rdd, columns)

    def emptyDataFrame(self, columns: Sequence[str]) -> DataFrame:
        return DataFrame(self, self.ctx.emptyRDD(), columns)

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------

    def createOrReplaceTempView(self, name: str, df: DataFrame) -> None:
        """Register *df* under *name* for use in SQL queries."""
        self._tables[name] = df

    def dropTempView(self, name: str) -> None:
        self._tables.pop(name, None)

    def table(self, name: str) -> DataFrame:
        if name not in self._tables:
            raise KeyError(
                "unknown table %r; registered: %s"
                % (name, sorted(self._tables))
            )
        return self._tables[name]

    def tableNames(self) -> List[str]:
        return sorted(self._tables)

    def table_columns(self, name: str) -> List[str]:
        return list(self.table(name).columns)

    def table_rows(self, name: str) -> int:
        return self.table(name).count()

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------

    def sql(self, query: str, optimized: bool = True) -> DataFrame:
        """Parse, optimize and execute a SQL query against the catalog."""
        plan = parse_sql(query)
        if optimized:
            plan = optimize(plan, self)
        return execute(plan, self)

    def explain(self, query: str, optimized: bool = True) -> str:
        """The (optimized) logical plan as an indented tree."""
        plan = parse_sql(query)
        if optimized:
            plan = optimize(plan, self)
        return plan.pretty()

    def __repr__(self) -> str:
        return "SparkSession(tables=%d)" % len(self._tables)
