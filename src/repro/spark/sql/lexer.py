"""SQL lexer: turns query text into a token stream."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List


class SqlSyntaxError(ValueError):
    """Raised on malformed SQL text."""


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "ORDER",
    "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER",
    "CROSS", "ON", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL",
    "UNION", "ALL", "ASC", "DESC", "TRUE", "FALSE", "COUNT", "SUM",
    "MIN", "MAX", "AVG", "SEMI", "HAVING", "BETWEEN", "LIKE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*(\.[A-Za-z_][A-Za-z0-9_$]*)*)
  | (?P<quoted>`[^`]+`)
  | (?P<op><=|>=|<>|!=|=|<|>|\(|\)|,|\*|\+|-|/|\.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # keyword | ident | number | string | op | eof
    value: str
    position: int

    def __repr__(self) -> str:
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(text: str) -> List[Token]:
    """Lex *text* into tokens, raising :class:`SqlSyntaxError` on garbage."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SqlSyntaxError(
                "cannot lex SQL at position %d: %r"
                % (position, text[position : position + 20])
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        if match.lastgroup == "ident":
            upper = value.upper()
            if upper in KEYWORDS and "." not in value:
                tokens.append(Token("keyword", upper, match.start()))
            else:
                tokens.append(Token("ident", value, match.start()))
        elif match.lastgroup == "quoted":
            tokens.append(Token("ident", value[1:-1], match.start()))
        elif match.lastgroup == "number":
            tokens.append(Token("number", value, match.start()))
        elif match.lastgroup == "string":
            body = value[1:-1].replace("\\'", "'").replace("\\\\", "\\")
            tokens.append(Token("string", body, match.start()))
        else:
            tokens.append(Token("op", value, match.start()))
    tokens.append(Token("eof", "", len(text)))
    return tokens


class TokenStream:
    """Cursor over a token list with peek/expect helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self._index += 1
        return token

    def accept(self, kind: str, value: str = None) -> bool:
        token = self.peek()
        if token.kind != kind:
            return False
        if value is not None and token.value != value:
            return False
        self.next()
        return True

    def expect(self, kind: str, value: str = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            raise SqlSyntaxError(
                "expected %s%s at position %d, found %r"
                % (
                    kind,
                    " %r" % value if value else "",
                    token.position,
                    token.value,
                )
            )
        return self.next()

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token.kind == "keyword" and token.value in keywords

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens[self._index :])
