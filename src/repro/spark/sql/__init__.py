"""Spark SQL: a SQL engine over DataFrames with a Catalyst-style optimizer.

S2RDF (Section IV-A2 of the paper) compiles SPARQL into SQL executed by
Spark SQL; this subpackage provides the target of that compilation: a
lexer/parser producing a logical plan, rule-based optimization (constant
folding, predicate pushdown, projection pruning, size-based join ordering)
and execution against the session catalog's DataFrames.
"""

from repro.spark.sql.session import SparkSession

__all__ = ["SparkSession"]
