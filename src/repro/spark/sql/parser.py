"""SQL parser: token stream -> logical plan."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union as TypingUnion

from repro.spark.column import (
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    LikeExpr,
    Literal,
    UnaryOp,
)
from repro.spark.sql.ast import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    Union,
)
from repro.spark.sql.lexer import SqlSyntaxError, TokenStream, tokenize

_AGG_KEYWORDS = ("COUNT", "SUM", "MIN", "MAX", "AVG")


@dataclass
class _AggregateCall:
    """A parsed aggregate function application in a select list."""

    func: str  # count | sum | min | max | avg | count_distinct
    argument: str  # column name or "*"


_SelectItem = Tuple[TypingUnion[Expression, _AggregateCall], Optional[str]]


def parse_sql(text: str) -> LogicalPlan:
    """Parse one SQL query (SELECT, optionally UNION-ed) into a plan."""
    stream = TokenStream(tokenize(text))
    plan = _parse_query(stream)
    stream.expect("eof")
    return plan


def _parse_query(stream: TokenStream) -> LogicalPlan:
    plan = _parse_select(stream)
    while stream.at_keyword("UNION"):
        stream.next()
        dedup = not stream.accept("keyword", "ALL")
        right = _parse_select(stream)
        plan = Union(plan, right, dedup=dedup)
        if dedup:
            plan = Distinct(plan)
    return plan


def _parse_select(stream: TokenStream) -> LogicalPlan:
    stream.expect("keyword", "SELECT")
    distinct = stream.accept("keyword", "DISTINCT")
    items = _parse_select_list(stream)

    stream.expect("keyword", "FROM")
    plan = _parse_table_ref(stream)
    while stream.at_keyword(
        "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS"
    ):
        plan = _parse_join(stream, plan)

    if stream.accept("keyword", "WHERE"):
        plan = Filter(_parse_expr(stream), plan)

    group_by: List[str] = []
    if stream.accept("keyword", "GROUP"):
        stream.expect("keyword", "BY")
        group_by.append(stream.expect("ident").value)
        while stream.accept("op", ","):
            group_by.append(stream.expect("ident").value)

    plan = _apply_select_items(plan, items, group_by)

    if stream.accept("keyword", "HAVING"):
        if not group_by and not isinstance(plan, Project):
            raise SqlSyntaxError("HAVING requires GROUP BY")
        # HAVING filters the aggregated (projected) rows.
        plan = Filter(_parse_expr(stream), plan)

    if distinct:
        plan = Distinct(plan)

    if stream.accept("keyword", "ORDER"):
        stream.expect("keyword", "BY")
        orders: List[Tuple[str, bool]] = []
        while True:
            name = stream.expect("ident").value
            ascending = True
            if stream.accept("keyword", "DESC"):
                ascending = False
            else:
                stream.accept("keyword", "ASC")
            orders.append((name, ascending))
            if not stream.accept("op", ","):
                break
        plan = Sort(orders, plan)

    if stream.accept("keyword", "LIMIT"):
        count = int(stream.expect("number").value)
        offset = 0
        if stream.accept("keyword", "OFFSET"):
            offset = int(stream.expect("number").value)
        plan = Limit(count, offset, plan)

    return plan


def _parse_select_list(stream: TokenStream) -> Optional[List[_SelectItem]]:
    """Returns None for ``SELECT *``."""
    if stream.accept("op", "*"):
        return None
    items: List[_SelectItem] = []
    while True:
        item = _parse_select_item(stream)
        items.append(item)
        if not stream.accept("op", ","):
            break
    return items


def _parse_select_item(stream: TokenStream) -> _SelectItem:
    if stream.at_keyword(*_AGG_KEYWORDS):
        call = _parse_aggregate(stream)
        alias = _parse_alias(stream)
        return call, alias
    expr = _parse_expr(stream)
    alias = _parse_alias(stream)
    return expr, alias


def _parse_alias(stream: TokenStream) -> Optional[str]:
    if stream.accept("keyword", "AS"):
        return stream.expect("ident").value
    if stream.peek().kind == "ident" and not stream.at_keyword():
        # Bare alias: `SELECT x name FROM ...` -- allowed, like SQL.
        return stream.next().value
    return None


def _parse_aggregate(stream: TokenStream) -> _AggregateCall:
    func = stream.next().value.lower()
    stream.expect("op", "(")
    if stream.accept("op", "*"):
        argument = "*"
    else:
        if stream.accept("keyword", "DISTINCT"):
            if func != "count":
                raise SqlSyntaxError("DISTINCT only supported inside COUNT")
            func = "count_distinct"
        argument = stream.expect("ident").value
    stream.expect("op", ")")
    return _AggregateCall(func, argument)


def _parse_table_ref(stream: TokenStream) -> Scan:
    table = stream.expect("ident").value
    alias = None
    if stream.accept("keyword", "AS"):
        alias = stream.expect("ident").value
    elif stream.peek().kind == "ident":
        alias = stream.next().value
    return Scan(table, alias)


def _parse_join(stream: TokenStream, left: LogicalPlan) -> LogicalPlan:
    how = "inner"
    if stream.accept("keyword", "INNER"):
        how = "inner"
    elif stream.accept("keyword", "LEFT"):
        stream.accept("keyword", "OUTER")
        how = "left"
        if stream.accept("keyword", "SEMI"):
            how = "semi"
    elif stream.accept("keyword", "RIGHT"):
        stream.accept("keyword", "OUTER")
        how = "right"
    elif stream.accept("keyword", "FULL"):
        stream.accept("keyword", "OUTER")
        how = "outer"
    elif stream.accept("keyword", "CROSS"):
        how = "cross"
    stream.expect("keyword", "JOIN")
    right = _parse_table_ref(stream)
    condition = None
    if stream.accept("keyword", "ON"):
        condition = _parse_expr(stream)
    elif how != "cross":
        raise SqlSyntaxError("non-cross JOIN requires an ON clause")
    return Join(left, right, condition, how)


def _apply_select_items(
    plan: LogicalPlan,
    items: Optional[List[_SelectItem]],
    group_by: List[str],
) -> LogicalPlan:
    if items is None:
        if group_by:
            raise SqlSyntaxError("SELECT * cannot be combined with GROUP BY")
        return plan

    agg_specs: List[Tuple[str, str, str]] = []
    outputs: List[Tuple[Expression, str]] = []
    has_aggregate = any(isinstance(item, _AggregateCall) for item, _a in items)

    if has_aggregate or group_by:
        for position, (item, alias) in enumerate(items):
            if isinstance(item, _AggregateCall):
                name = alias or "%s_%s" % (
                    item.func,
                    item.argument if item.argument != "*" else "all",
                )
                agg_specs.append((item.func, item.argument, name))
                outputs.append((ColumnRef(name), name))
            elif isinstance(item, ColumnRef):
                bare = item.name.split(".")[-1]
                if item.name not in group_by and bare not in {
                    g.split(".")[-1] for g in group_by
                }:
                    raise SqlSyntaxError(
                        "column %r must appear in GROUP BY" % item.name
                    )
                outputs.append((item, alias or bare))
            else:
                raise SqlSyntaxError(
                    "select item %d must be a column or aggregate when "
                    "grouping" % position
                )
        plan = Aggregate(group_by, agg_specs, plan)
        return Project(outputs, plan)

    for position, (item, alias) in enumerate(items):
        assert isinstance(item, Expression)
        if alias is None:
            alias = (
                item.name.split(".")[-1]
                if isinstance(item, ColumnRef)
                else "_c%d" % position
            )
        outputs.append((item, alias))
    return Project(outputs, plan)


# ----------------------------------------------------------------------
# Expressions (precedence climbing)
# ----------------------------------------------------------------------


def _parse_expr(stream: TokenStream) -> Expression:
    return _parse_or(stream)


def _parse_or(stream: TokenStream) -> Expression:
    left = _parse_and(stream)
    while stream.accept("keyword", "OR"):
        left = BinaryOp("or", left, _parse_and(stream))
    return left


def _parse_and(stream: TokenStream) -> Expression:
    left = _parse_not(stream)
    while stream.accept("keyword", "AND"):
        left = BinaryOp("and", left, _parse_not(stream))
    return left


def _parse_not(stream: TokenStream) -> Expression:
    if stream.accept("keyword", "NOT"):
        return UnaryOp("not", _parse_not(stream))
    return _parse_comparison(stream)


_COMPARISON_OPS = {"=": "=", "!=": "!=", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _parse_comparison(stream: TokenStream) -> Expression:
    left = _parse_additive(stream)
    token = stream.peek()
    if token.kind == "op" and token.value in _COMPARISON_OPS:
        stream.next()
        right = _parse_additive(stream)
        return BinaryOp(_COMPARISON_OPS[token.value], left, right)
    if stream.accept("keyword", "IS"):
        negate = stream.accept("keyword", "NOT")
        stream.expect("keyword", "NULL")
        op = "isnotnull" if negate else "isnull"
        return UnaryOp(op, left)
    negate = False
    if stream.at_keyword("NOT"):
        negate = True
        stream.next()
    if stream.accept("keyword", "BETWEEN"):
        low = _parse_additive(stream)
        stream.expect("keyword", "AND")
        high = _parse_additive(stream)
        expr: Expression = BinaryOp(
            "and",
            BinaryOp(">=", left, low),
            BinaryOp("<=", left, high),
        )
        if negate:
            expr = UnaryOp("not", expr)
        return expr
    if stream.accept("keyword", "LIKE"):
        pattern_token = stream.expect("string")
        expr = LikeExpr(left, pattern_token.value)
        if negate:
            expr = UnaryOp("not", expr)
        return expr
    if stream.accept("keyword", "IN"):
        stream.expect("op", "(")
        options = [_parse_additive(stream)]
        while stream.accept("op", ","):
            options.append(_parse_additive(stream))
        stream.expect("op", ")")
        expr: Expression = InList(left, options)
        if negate:
            expr = UnaryOp("not", expr)
        return expr
    if negate:
        raise SqlSyntaxError("dangling NOT at position %d" % stream.peek().position)
    return left


def _parse_additive(stream: TokenStream) -> Expression:
    left = _parse_multiplicative(stream)
    while True:
        token = stream.peek()
        if token.kind == "op" and token.value in ("+", "-"):
            stream.next()
            left = BinaryOp(token.value, left, _parse_multiplicative(stream))
        else:
            return left


def _parse_multiplicative(stream: TokenStream) -> Expression:
    left = _parse_primary(stream)
    while True:
        token = stream.peek()
        if token.kind == "op" and token.value in ("*", "/"):
            stream.next()
            left = BinaryOp(token.value, left, _parse_primary(stream))
        else:
            return left


def _parse_primary(stream: TokenStream) -> Expression:
    token = stream.peek()
    if token.kind == "number":
        stream.next()
        value = float(token.value) if "." in token.value else int(token.value)
        return Literal(value)
    if token.kind == "string":
        stream.next()
        return Literal(token.value)
    if stream.accept("keyword", "TRUE"):
        return Literal(True)
    if stream.accept("keyword", "FALSE"):
        return Literal(False)
    if stream.accept("keyword", "NULL"):
        return Literal(None)
    if token.kind == "ident":
        stream.next()
        return ColumnRef(token.value)
    if stream.accept("op", "("):
        expr = _parse_expr(stream)
        stream.expect("op", ")")
        return expr
    if stream.accept("op", "-"):
        return UnaryOp("neg", _parse_primary(stream))
    raise SqlSyntaxError(
        "unexpected token %r at position %d" % (token.value, token.position)
    )
