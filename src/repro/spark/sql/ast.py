"""Logical query plan nodes produced by the SQL parser.

The plan is a tree of relational operators; the Catalyst-style optimizer in
:mod:`repro.spark.sql.catalyst` rewrites it, and
:mod:`repro.spark.sql.executor` lowers it onto DataFrames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.spark.column import Expression


class LogicalPlan:
    """Base class for plan nodes."""

    def children(self) -> List["LogicalPlan"]:
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        """Indented tree rendering, for tests and EXPLAIN output."""
        pad = "  " * indent
        lines = [pad + self._describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:
        return type(self).__name__


@dataclass
class Scan(LogicalPlan):
    """Read a catalog table, optionally under an alias.

    ``required_columns`` is filled in by projection pruning: ``None`` means
    all columns.
    """

    table: str
    alias: Optional[str] = None
    required_columns: Optional[List[str]] = None

    def children(self) -> List[LogicalPlan]:
        return []

    def _describe(self) -> str:
        alias = " AS %s" % self.alias if self.alias else ""
        cols = (
            " [%s]" % ", ".join(self.required_columns)
            if self.required_columns is not None
            else ""
        )
        return "Scan(%s%s)%s" % (self.table, alias, cols)


@dataclass
class Filter(LogicalPlan):
    condition: Expression
    child: LogicalPlan

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def _describe(self) -> str:
        return "Filter(%r)" % self.condition


@dataclass
class Join(LogicalPlan):
    """Binary join; *condition* ``None`` means a cross join."""

    left: LogicalPlan
    right: LogicalPlan
    condition: Optional[Expression]
    how: str = "inner"  # inner | left | right | outer | cross | semi

    def children(self) -> List[LogicalPlan]:
        return [self.left, self.right]

    def _describe(self) -> str:
        return "Join(%s, on=%r)" % (self.how, self.condition)


@dataclass
class Project(LogicalPlan):
    """Projection; each item is (expression, output name)."""

    items: List[Tuple[Expression, str]]
    child: LogicalPlan

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def _describe(self) -> str:
        return "Project(%s)" % ", ".join(name for _e, name in self.items)


@dataclass
class Aggregate(LogicalPlan):
    """Grouped aggregation.

    *aggregates* holds (function name, argument column or "*", output name).
    """

    group_by: List[str]
    aggregates: List[Tuple[str, str, str]]
    child: LogicalPlan

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def _describe(self) -> str:
        return "Aggregate(keys=%r, aggs=%r)" % (self.group_by, self.aggregates)


@dataclass
class Distinct(LogicalPlan):
    child: LogicalPlan

    def children(self) -> List[LogicalPlan]:
        return [self.child]


@dataclass
class Sort(LogicalPlan):
    """ORDER BY; *orders* holds (column name, ascending)."""

    orders: List[Tuple[str, bool]]
    child: LogicalPlan

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def _describe(self) -> str:
        return "Sort(%r)" % (self.orders,)


@dataclass
class Limit(LogicalPlan):
    count: int
    offset: int
    child: LogicalPlan

    def children(self) -> List[LogicalPlan]:
        return [self.child]

    def _describe(self) -> str:
        return "Limit(%d, offset=%d)" % (self.count, self.offset)


@dataclass
class Union(LogicalPlan):
    """UNION (dedup=True) or UNION ALL (dedup=False)."""

    left: LogicalPlan
    right: LogicalPlan
    dedup: bool = False

    def children(self) -> List[LogicalPlan]:
        return [self.left, self.right]

    def _describe(self) -> str:
        return "Union(%s)" % ("DISTINCT" if self.dedup else "ALL")
