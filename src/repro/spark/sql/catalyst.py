"""Catalyst: the rule-based logical-plan optimizer.

Implements the optimizations the paper attributes to Spark SQL's Catalyst
(Section III): constant folding, predicate pushdown through joins,
projection pruning into scans, and a size-based choice of join build side
(which downstream becomes the broadcast side).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.spark.column import (
    Alias,
    BinaryOp,
    ColumnRef,
    Expression,
    InList,
    Literal,
    UnaryOp,
    conjoin,
    split_conjuncts,
)
from repro.spark.sql.ast import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Scan,
    Sort,
    Union,
)


class Catalog:
    """What the optimizer needs to know about tables.

    Implemented by :class:`repro.spark.sql.session.SparkSession`.
    """

    def table_columns(self, name: str) -> List[str]:
        raise NotImplementedError

    def table_rows(self, name: str) -> int:
        raise NotImplementedError


def output_columns(plan: LogicalPlan, catalog: Catalog) -> List[str]:
    """The (qualified) column names *plan* produces."""
    if isinstance(plan, Scan):
        prefix = plan.alias or plan.table
        columns = plan.required_columns
        if columns is None:
            columns = catalog.table_columns(plan.table)
        return ["%s.%s" % (prefix, c) for c in columns]
    if isinstance(plan, (Filter, Distinct, Sort, Limit)):
        return output_columns(plan.child, catalog)
    if isinstance(plan, Join):
        if plan.how == "semi":
            return output_columns(plan.left, catalog)
        return output_columns(plan.left, catalog) + output_columns(
            plan.right, catalog
        )
    if isinstance(plan, Project):
        return [name for _expr, name in plan.items]
    if isinstance(plan, Aggregate):
        return list(plan.group_by) + [name for _f, _a, name in plan.aggregates]
    if isinstance(plan, Union):
        return output_columns(plan.left, catalog)
    raise TypeError("unknown plan node %r" % plan)


def _matches(available: List[str], name: str) -> List[str]:
    """Columns in *available* a reference *name* could resolve to."""
    if name in available:
        return [name]
    suffix = "." + name.split(".")[-1] if "." not in name else "." + name
    hits = [c for c in available if c.endswith("." + name)]
    if hits:
        return hits
    # Bare name against qualified columns.
    if "." not in name:
        return [c for c in available if c.split(".")[-1] == name]
    # Qualified name against bare columns (e.g. after an aggregate strips
    # qualification from its group keys).
    last = name.split(".")[-1]
    return [c for c in available if "." not in c and c == last]


def references_resolve_in(
    refs: FrozenSet[str], available: List[str]
) -> bool:
    """True when every reference has at least one candidate in *available*."""
    return all(_matches(available, ref) for ref in refs)


# ----------------------------------------------------------------------
# Rule: constant folding
# ----------------------------------------------------------------------


def fold_constants(expr: Expression) -> Expression:
    """Collapse operator applications over literals into literals."""
    if isinstance(expr, BinaryOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        folded = BinaryOp(expr.op, left, right)
        if isinstance(left, Literal) and isinstance(right, Literal):
            return Literal(folded.eval({}))
        # Boolean short-circuits with one literal side.
        if expr.op == "and":
            if isinstance(left, Literal):
                return right if left.value else Literal(False)
            if isinstance(right, Literal):
                return left if right.value else Literal(False)
        if expr.op == "or":
            if isinstance(left, Literal):
                return Literal(True) if left.value else right
            if isinstance(right, Literal):
                return Literal(True) if right.value else left
        return folded
    if isinstance(expr, UnaryOp):
        child = fold_constants(expr.child)
        folded = UnaryOp(expr.op, child)
        if isinstance(child, Literal):
            return Literal(folded.eval({}))
        return folded
    if isinstance(expr, InList):
        return InList(
            fold_constants(expr.needle),
            [fold_constants(option) for option in expr.options],
        )
    if isinstance(expr, Alias):
        return Alias(fold_constants(expr.child), expr.name)
    return expr


def _fold_plan(plan: LogicalPlan) -> LogicalPlan:
    if isinstance(plan, Filter):
        return Filter(fold_constants(plan.condition), _fold_plan(plan.child))
    if isinstance(plan, Join):
        condition = (
            fold_constants(plan.condition) if plan.condition is not None else None
        )
        return Join(_fold_plan(plan.left), _fold_plan(plan.right), condition, plan.how)
    if isinstance(plan, Project):
        return Project(
            [(fold_constants(e), n) for e, n in plan.items],
            _fold_plan(plan.child),
        )
    if isinstance(plan, Aggregate):
        return Aggregate(plan.group_by, plan.aggregates, _fold_plan(plan.child))
    if isinstance(plan, Distinct):
        return Distinct(_fold_plan(plan.child))
    if isinstance(plan, Sort):
        return Sort(plan.orders, _fold_plan(plan.child))
    if isinstance(plan, Limit):
        return Limit(plan.count, plan.offset, _fold_plan(plan.child))
    if isinstance(plan, Union):
        return Union(_fold_plan(plan.left), _fold_plan(plan.right), plan.dedup)
    return plan


# ----------------------------------------------------------------------
# Rule: predicate pushdown
# ----------------------------------------------------------------------


def _push_filters(plan: LogicalPlan, catalog: Catalog) -> LogicalPlan:
    if isinstance(plan, Filter):
        child = _push_filters(plan.child, catalog)
        conjuncts = split_conjuncts(plan.condition)
        if isinstance(child, Join) and child.how in ("inner", "cross"):
            left_cols = output_columns(child.left, catalog)
            right_cols = output_columns(child.right, catalog)
            to_left: List[Expression] = []
            to_right: List[Expression] = []
            to_join: List[Expression] = []
            remainder: List[Expression] = []
            for conjunct in conjuncts:
                refs = conjunct.references()
                if refs and references_resolve_in(refs, left_cols) and not any(
                    _matches(right_cols, r) for r in refs
                ):
                    to_left.append(conjunct)
                elif refs and references_resolve_in(refs, right_cols) and not any(
                    _matches(left_cols, r) for r in refs
                ):
                    to_right.append(conjunct)
                elif references_resolve_in(refs, left_cols + right_cols):
                    to_join.append(conjunct)
                else:
                    remainder.append(conjunct)
            new_left = child.left
            new_right = child.right
            if to_left:
                new_left = Filter(conjoin(to_left), new_left)
            if to_right:
                new_right = Filter(conjoin(to_right), new_right)
            join_condition = child.condition
            if to_join:
                extra = conjoin(to_join)
                join_condition = (
                    extra
                    if join_condition is None
                    else BinaryOp("and", join_condition, extra)
                )
            how = "inner" if (child.how == "cross" and join_condition) else child.how
            new_join = Join(
                _push_filters(new_left, catalog),
                _push_filters(new_right, catalog),
                join_condition,
                how,
            )
            if remainder:
                return Filter(conjoin(remainder), new_join)
            return new_join
        return Filter(plan.condition, child)
    if isinstance(plan, Join):
        return Join(
            _push_filters(plan.left, catalog),
            _push_filters(plan.right, catalog),
            plan.condition,
            plan.how,
        )
    if isinstance(plan, Project):
        return Project(plan.items, _push_filters(plan.child, catalog))
    if isinstance(plan, Aggregate):
        return Aggregate(
            plan.group_by, plan.aggregates, _push_filters(plan.child, catalog)
        )
    if isinstance(plan, Distinct):
        return Distinct(_push_filters(plan.child, catalog))
    if isinstance(plan, Sort):
        return Sort(plan.orders, _push_filters(plan.child, catalog))
    if isinstance(plan, Limit):
        return Limit(plan.count, plan.offset, _push_filters(plan.child, catalog))
    if isinstance(plan, Union):
        return Union(
            _push_filters(plan.left, catalog),
            _push_filters(plan.right, catalog),
            plan.dedup,
        )
    return plan


# ----------------------------------------------------------------------
# Rule: projection pruning
# ----------------------------------------------------------------------


def _prune_columns(
    plan: LogicalPlan, required: Optional[FrozenSet[str]], catalog: Catalog
) -> LogicalPlan:
    """Push the set of needed (possibly qualified) names down to scans.

    ``required`` of None means "everything" (e.g. under SELECT *).
    """
    if isinstance(plan, Scan):
        if required is None:
            return plan
        prefix = plan.alias or plan.table
        all_columns = catalog.table_columns(plan.table)
        keep = [
            column
            for column in all_columns
            if any(
                _matches(["%s.%s" % (prefix, column)], name) for name in required
            )
        ]
        return Scan(plan.table, plan.alias, keep)
    if isinstance(plan, Filter):
        needed = (
            None
            if required is None
            else required | plan.condition.references()
        )
        return Filter(plan.condition, _prune_columns(plan.child, needed, catalog))
    if isinstance(plan, Join):
        needed = required
        if needed is not None and plan.condition is not None:
            needed = needed | plan.condition.references()
        return Join(
            _prune_columns(plan.left, needed, catalog),
            _prune_columns(plan.right, needed, catalog),
            plan.condition,
            plan.how,
        )
    if isinstance(plan, Project):
        needed: FrozenSet[str] = frozenset()
        for expr, _name in plan.items:
            needed |= expr.references()
        return Project(plan.items, _prune_columns(plan.child, needed, catalog))
    if isinstance(plan, Aggregate):
        needed = frozenset(plan.group_by) | frozenset(
            arg for _f, arg, _n in plan.aggregates if arg != "*"
        )
        return Aggregate(
            plan.group_by,
            plan.aggregates,
            _prune_columns(plan.child, needed, catalog),
        )
    if isinstance(plan, Distinct):
        return Distinct(_prune_columns(plan.child, required, catalog))
    if isinstance(plan, Sort):
        needed = (
            None
            if required is None
            else required | frozenset(name for name, _asc in plan.orders)
        )
        return Sort(plan.orders, _prune_columns(plan.child, needed, catalog))
    if isinstance(plan, Limit):
        return Limit(
            plan.count, plan.offset, _prune_columns(plan.child, required, catalog)
        )
    if isinstance(plan, Union):
        return Union(
            _prune_columns(plan.left, None, catalog),
            _prune_columns(plan.right, None, catalog),
            plan.dedup,
        )
    return plan


# ----------------------------------------------------------------------
# Rule: build-side selection (size-based)
# ----------------------------------------------------------------------


def estimated_rows(plan: LogicalPlan, catalog: Catalog) -> int:
    """Crude cardinality estimate driving build-side selection."""
    if isinstance(plan, Scan):
        return catalog.table_rows(plan.table)
    if isinstance(plan, Filter):
        return max(estimated_rows(plan.child, catalog) // 3, 1)
    if isinstance(plan, Join):
        if plan.how == "semi":
            return estimated_rows(plan.left, catalog)
        left = estimated_rows(plan.left, catalog)
        right = estimated_rows(plan.right, catalog)
        return max(left, right)
    if isinstance(plan, (Project, Distinct, Sort)):
        return estimated_rows(plan.child, catalog)
    if isinstance(plan, Aggregate):
        return max(estimated_rows(plan.child, catalog) // 2, 1)
    if isinstance(plan, Limit):
        return plan.count
    if isinstance(plan, Union):
        return estimated_rows(plan.left, catalog) + estimated_rows(
            plan.right, catalog
        )
    return 1


def _choose_build_sides(plan: LogicalPlan, catalog: Catalog) -> LogicalPlan:
    """Put the estimated-smaller input on the right of inner joins.

    The executor broadcasts the right side when it fits under the session
    threshold, so this rule is what turns size estimates into broadcast
    joins -- the Catalyst behaviour Section IV-A3 describes.
    """
    if isinstance(plan, Join):
        left = _choose_build_sides(plan.left, catalog)
        right = _choose_build_sides(plan.right, catalog)
        if plan.how == "inner" and estimated_rows(
            left, catalog
        ) < estimated_rows(right, catalog):
            return Join(right, left, plan.condition, plan.how)
        return Join(left, right, plan.condition, plan.how)
    if isinstance(plan, Filter):
        return Filter(plan.condition, _choose_build_sides(plan.child, catalog))
    if isinstance(plan, Project):
        return Project(plan.items, _choose_build_sides(plan.child, catalog))
    if isinstance(plan, Aggregate):
        return Aggregate(
            plan.group_by, plan.aggregates, _choose_build_sides(plan.child, catalog)
        )
    if isinstance(plan, Distinct):
        return Distinct(_choose_build_sides(plan.child, catalog))
    if isinstance(plan, Sort):
        return Sort(plan.orders, _choose_build_sides(plan.child, catalog))
    if isinstance(plan, Limit):
        return Limit(plan.count, plan.offset, _choose_build_sides(plan.child, catalog))
    if isinstance(plan, Union):
        return Union(
            _choose_build_sides(plan.left, catalog),
            _choose_build_sides(plan.right, catalog),
            plan.dedup,
        )
    return plan


def optimize(
    plan: LogicalPlan,
    catalog: Catalog,
    reorder_joins: bool = True,
) -> LogicalPlan:
    """Run all rules in order; returns a new plan."""
    plan = _fold_plan(plan)
    plan = _push_filters(plan, catalog)
    plan = _prune_columns(plan, None, catalog)
    if reorder_joins:
        plan = _choose_build_sides(plan, catalog)
    return plan
