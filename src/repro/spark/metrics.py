"""Execution metrics for the simulated cluster.

The paper's assessment of the surveyed systems rests on *cost* arguments:
how many records a shuffle moves between executors, how many comparisons a
join performs, how much data a broadcast ships, how many partitions a scan
touches.  Every operator in :mod:`repro.spark` reports those quantities to
the :class:`MetricsCollector` owned by its :class:`~repro.spark.context.SparkContext`,
and every benchmark in ``benchmarks/`` reads them back through
:class:`MetricsSnapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Tuple


def estimate_size(value: object) -> int:
    """Estimate the serialized size of *value* in bytes.

    A cheap, deterministic stand-in for Java serialization costs: strings
    cost their length, numbers a machine word, containers the sum of their
    elements plus a small per-element overhead.  The absolute numbers are
    arbitrary; the *ratios* between representations (which is what the
    paper's compression and encoding claims are about) are meaningful.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (tuple, list, set, frozenset)):
        return 8 + sum(estimate_size(item) + 4 for item in value)
    if isinstance(value, dict):
        return 8 + sum(
            estimate_size(k) + estimate_size(v) + 8 for k, v in value.items()
        )
    # Fall back to the repr for user-defined objects; stable and cheap.
    return len(repr(value))


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable copy of the collector's counters.

    Snapshots support subtraction, so benchmarks measure an operation with::

        before = sc.metrics.snapshot()
        ...  # run the query
        cost = sc.metrics.snapshot() - before
    """

    counters: Dict[str, int] = field(default_factory=dict)

    def __getitem__(self, name: str) -> int:
        return self.counters.get(name, 0)

    def get(self, name: str, default: int = 0) -> int:
        return self.counters.get(name, default)

    def __sub__(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        names = set(self.counters) | set(other.counters)
        return MetricsSnapshot(
            {name: self[name] - other[name] for name in sorted(names)}
        )

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self.counters.items()))

    # Convenience accessors for the counters benchmarks care about most.
    @property
    def shuffle_records(self) -> int:
        return self["shuffle_records"]

    @property
    def shuffle_remote_records(self) -> int:
        return self["shuffle_remote_records"]

    @property
    def shuffle_bytes(self) -> int:
        return self["shuffle_bytes"]

    @property
    def join_comparisons(self) -> int:
        return self["join_comparisons"]

    @property
    def records_scanned(self) -> int:
        return self["records_scanned"]

    @property
    def broadcast_bytes(self) -> int:
        return self["broadcast_bytes"]

    @property
    def tasks(self) -> int:
        return self["tasks"]

    @property
    def tasks_failed(self) -> int:
        return self["tasks_failed"]

    @property
    def tasks_retried(self) -> int:
        return self["tasks_retried"]

    @property
    def partitions_recomputed(self) -> int:
        return self["partitions_recomputed"]

    @property
    def recompute_comparisons(self) -> int:
        return self["recompute_comparisons"]

    @property
    def speculative_launches(self) -> int:
        return self["speculative_launches"]

    # Serving-layer counters (see repro.server and docs/SERVER.md).
    @property
    def queries_admitted(self) -> int:
        return self["queries_admitted"]

    @property
    def queries_rejected(self) -> int:
        return self["queries_rejected"]

    @property
    def queries_completed(self) -> int:
        return self["queries_completed"]

    @property
    def lint_rejections(self) -> int:
        return self["lint_rejections"]

    @property
    def deadline_aborts(self) -> int:
        return self["deadline_aborts"]

    @property
    def plan_cache_hits(self) -> int:
        return self["plan_cache_hits"]

    @property
    def plan_cache_misses(self) -> int:
        return self["plan_cache_misses"]

    @property
    def result_cache_hits(self) -> int:
        return self["result_cache_hits"]

    @property
    def result_cache_misses(self) -> int:
        return self["result_cache_misses"]

    @property
    def result_cache_invalidations(self) -> int:
        return self["result_cache_invalidations"]

    def result_cache_hit_rate(self) -> float:
        """Fraction of result-cache lookups answered from the cache."""
        lookups = self.result_cache_hits + self.result_cache_misses
        if lookups == 0:
            return 0.0
        return self.result_cache_hits / lookups

    def locality_fraction(self) -> float:
        """Fraction of shuffled records that stayed on their executor."""
        total = self.shuffle_records
        if total == 0:
            return 1.0
        return 1.0 - self.shuffle_remote_records / total


class MetricsCollector:
    """Mutable counter registry shared by all operators of one context.

    Counter names used by the substrate:

    ``tasks``
        Partition computations executed.
    ``records_scanned``
        Records read from a source RDD/DataFrame partition.
    ``shuffle_records`` / ``shuffle_remote_records`` / ``shuffle_bytes``
        Records (and estimated bytes) moved by shuffles; *remote* counts
        only records whose map and reduce partitions live on different
        virtual executors.
    ``join_comparisons`` / ``join_output_records`` / ``join_probe_lookups``
        Work performed by hash joins.
    ``broadcast_count`` / ``broadcast_records`` / ``broadcast_bytes``
        Data shipped to every executor by broadcast variables.
    ``partitions_scanned``
        Partitions touched by scans (vertical partitioning benchmarks).
    ``tasks_failed`` / ``tasks_retried``
        Injected task failures and the retries recovering from them.
    ``partitions_recomputed`` / ``recompute_comparisons``
        Cached partitions lost to injected faults and rebuilt from
        lineage, and the tasks re-executed to rebuild them (the recovery
        bill, proportional to uncached lineage depth).
    ``stragglers`` / ``straggler_delay_units`` / ``speculative_launches``
        Injected slow tasks, their simulated delay, and speculative
        backup copies launched when speculation is enabled.

    The serving layer (:mod:`repro.server`) keeps its own collector with
    these additional counters:

    ``queries_admitted`` / ``queries_rejected`` / ``queries_completed``
        Requests accepted by admission control, turned away by the
        bounded queue, and finished (any terminal status).
    ``lint_rejections``
        Queries the static plan linter rejected at admission
        (:mod:`repro.analysis.query`) before any service units were
        consumed.
    ``deadline_aborts``
        Queries killed by a cost-unit deadline
        (:class:`~repro.spark.deadline.DeadlineExceededError`).
    ``plan_cache_hits`` / ``plan_cache_misses``
        Parsed-plan reuse keyed on normalized query text.
    ``result_cache_hits`` / ``result_cache_misses`` /
    ``result_cache_invalidations`` / ``result_cache_evictions``
        Result-cache outcomes; invalidations count entries dropped by a
        graph-version bump, evictions count LRU capacity pressure.
    ``queue_wait_units`` / ``service_units``
        Virtual time spent waiting for a worker and executing, in cost
        units (see :mod:`repro.spark.deadline`).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        """Add *amount* to counter *name*, creating it at zero if absent."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def merge_delta(self, delta) -> None:
        """Fold a counter delta (mapping or (name, amount) pairs) in.

        Counters are applied in sorted-name order so the collector's
        internal insertion order -- which leaks into snapshot/JSON
        iteration for fresh counters -- is independent of the order in
        which concurrent workers happened to report.  Integer addition
        itself commutes; the *name ordering* is what needs pinning.
        """
        items = delta.items() if hasattr(delta, "items") else delta
        for name, amount in sorted(items):
            if amount:
                self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(dict(self._counters))

    def reset(self) -> None:
        self._counters.clear()

    # -- higher-level recording helpers -------------------------------

    def record_task(self) -> None:
        self.incr("tasks")

    def record_scan(self, num_records: int, partitions: int = 1) -> None:
        self.incr("records_scanned", num_records)
        self.incr("partitions_scanned", partitions)

    def record_shuffle(
        self, records: int, remote_records: int, nbytes: int
    ) -> None:
        self.incr("shuffle_records", records)
        self.incr("shuffle_remote_records", remote_records)
        self.incr("shuffle_bytes", nbytes)
        self.incr("shuffles")

    def record_join(
        self, comparisons: int, probe_lookups: int, output_records: int
    ) -> None:
        self.incr("join_comparisons", comparisons)
        self.incr("join_probe_lookups", probe_lookups)
        self.incr("join_output_records", output_records)

    def record_broadcast(self, records: int, nbytes: int) -> None:
        self.incr("broadcast_count")
        self.incr("broadcast_records", records)
        self.incr("broadcast_bytes", nbytes)

    # -- fault injection & recovery ------------------------------------

    def record_task_failure(self) -> None:
        self.incr("tasks_failed")

    def record_retry(self) -> None:
        self.incr("tasks_retried")

    def record_partition_recomputed(self) -> None:
        self.incr("partitions_recomputed")

    def record_recompute_work(self, tasks: int) -> None:
        self.incr("recompute_comparisons", tasks)

    def record_straggler(self, delay_units: int) -> None:
        self.incr("stragglers")
        self.incr("straggler_delay_units", delay_units)

    def record_speculative(self) -> None:
        """A speculative backup copy: its launch and its (duplicated) task."""
        self.incr("speculative_launches")
        self.incr("tasks")

    # -- serving layer --------------------------------------------------

    def record_admission(self, admitted: bool) -> None:
        self.incr("queries_admitted" if admitted else "queries_rejected")

    def record_completion(self, wait_units: int, service_units: int) -> None:
        self.incr("queries_completed")
        self.incr("queue_wait_units", wait_units)
        self.incr("service_units", service_units)

    def record_deadline_abort(self) -> None:
        self.incr("deadline_aborts")

    def record_lint_rejection(self) -> None:
        self.incr("lint_rejections")

    def record_plan_cache(self, hit: bool) -> None:
        self.incr("plan_cache_hits" if hit else "plan_cache_misses")

    def record_result_cache(self, hit: bool) -> None:
        self.incr("result_cache_hits" if hit else "result_cache_misses")

    def record_result_invalidations(self, dropped: int) -> None:
        self.incr("result_cache_invalidations", dropped)

    def record_result_eviction(self) -> None:
        self.incr("result_cache_evictions")
