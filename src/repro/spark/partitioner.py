"""Partitioners: the policy objects that place keyed records on partitions.

The paper identifies data partitioning as *the* neglected dimension of the
surveyed systems (Section V).  Everything the systems do about placement --
HAQWA's subject hashing, SPARQLGX's vertical partitioning, SparkRDF's
dynamic pre-partitioning -- is expressed here as a :class:`Partitioner`
subclass handed to :meth:`RDD.partitionBy`.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Callable, List, Optional, Sequence


def stable_hash(value: object) -> int:
    """A deterministic, process-independent hash.

    Python's builtin ``hash`` is salted per process for strings; a simulated
    cluster must place the same key on the same partition across runs so
    tests and benchmarks are reproducible.
    """
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8"))
    if isinstance(value, bytes):
        return zlib.crc32(value)
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value & 0xFFFFFFFF
    if isinstance(value, float):
        return zlib.crc32(repr(value).encode("utf-8"))
    if isinstance(value, tuple):
        acc = 0x811C9DC5
        for item in value:
            acc = (acc * 31 + stable_hash(item)) & 0xFFFFFFFF
        return acc
    if value is None:
        return 0
    return zlib.crc32(repr(value).encode("utf-8"))


class Partitioner:
    """Maps a record key to a partition index in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions <= 0:
            raise ValueError("num_partitions must be positive, got %d" % num_partitions)
        self.num_partitions = num_partitions

    def partition_for(self, key: object) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.num_partitions == other.num_partitions  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:
        return "%s(num_partitions=%d)" % (type(self).__name__, self.num_partitions)


class HashPartitioner(Partitioner):
    """Spark's default: ``stable_hash(key) mod num_partitions``."""

    def partition_for(self, key: object) -> int:
        return stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Places keys into contiguous sorted ranges; used by ``sortBy``.

    *bounds* are the (num_partitions - 1) upper split points, computed by
    sampling in :meth:`RDD.sortBy`.
    """

    def __init__(self, num_partitions: int, bounds: Sequence[object]) -> None:
        super().__init__(num_partitions)
        self.bounds: List[object] = list(bounds)

    def partition_for(self, key: object) -> int:
        index = bisect.bisect_right(self.bounds, key)
        return min(index, self.num_partitions - 1)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RangePartitioner)
            and self.num_partitions == other.num_partitions
            and self.bounds == other.bounds
        )

    def __hash__(self) -> int:
        return hash(("RangePartitioner", self.num_partitions, tuple(self.bounds)))


class FunctionPartitioner(Partitioner):
    """Wraps an arbitrary key→partition function.

    The escape hatch the paper credits the RDD API with: "gives the choice
    of implementing a custom partitioner".  *name* keeps two functionally
    distinct partitioners from comparing equal.
    """

    def __init__(
        self,
        num_partitions: int,
        func: Callable[[object], int],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(num_partitions)
        self._func = func
        self.name = name or getattr(func, "__name__", "custom")

    def partition_for(self, key: object) -> int:
        index = self._func(key)
        if not 0 <= index < self.num_partitions:
            raise ValueError(
                "partitioner %r returned %d for key %r; expected [0, %d)"
                % (self.name, index, key, self.num_partitions)
            )
        return index

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionPartitioner)
            and self.num_partitions == other.num_partitions
            and self.name == other.name
        )

    def __hash__(self) -> int:
        return hash(("FunctionPartitioner", self.num_partitions, self.name))
