"""Structured query tracing for the simulated cluster.

The paper's assessment is built from *cost arguments* -- shuffle volume,
join comparisons, broadcast size -- but flat end-of-run counters cannot say
*where inside a query* each engine paid its cost.  This module adds the
missing dimension: a :class:`Tracer`, owned by every
:class:`~repro.spark.context.SparkContext`, records a tree of
:class:`Span` events (algebra operators, BGP steps, shuffles, scans,
broadcasts) and attaches to each span the marginal
:class:`~repro.spark.metrics.MetricsSnapshot` delta accumulated while it
was open.  That reproduces the per-stage cost attribution style of the
S2RDF and Naacke et al. evaluations.

Design constraints:

* **Deterministic.**  Spans carry no wall-clock time, only a sequence
  number and metric deltas, so two runs of the same query produce
  byte-identical traces (and JSON exports).
* **Conservation.**  A span's ``metrics`` delta is *inclusive*: it counts
  everything charged while the span was open, including its children.
  ``self_metrics`` subtracts the children, so summing ``self_metrics``
  over a whole trace reproduces the flat end-of-run totals exactly.
* **Free when off.**  ``tracer.enabled`` is a plain attribute checked
  before any span bookkeeping; untraced runs pay one attribute read.

Span kinds emitted by the substrate and the shared driver:

``query``
    Root span around one :meth:`SparkRdfEngine.execute` call.
``bgp`` / ``join`` / ``leftjoin`` / ``union`` / ``filter``
    One per SPARQL algebra operator evaluated by the shared driver.
``optimize``
    Cost-based planning of one BGP (:mod:`repro.optimizer`); name is the
    ordering mode, attrs carry the chosen order, the per-step physical
    strategies and the final cardinality estimate.
``bgp_step``
    One incremental pattern join inside a BGP evaluation.  On the native
    path (:func:`repro.systems.base.join_binding_rdds`) the name is
    ``hash`` or ``cartesian``; on the optimized path the name is the
    physical strategy (``scan``/``broadcast``/``local``/``shuffle``/
    ``cartesian``) and attrs carry ``est_rows``/``actual_rows`` (the
    q-error inputs) plus ``est_build`` for join steps.
``sql``
    One per logical plan node executed by the Spark-SQL executor.
``shuffle``
    One per materialized shuffle (:class:`~repro.spark.rdd.ShuffledRDD`).
``scan``
    One per leaf partition read.
``broadcast``
    One per broadcast variable shipped.
``join`` (name ``broadcast``/``partitioned``)
    DataFrame join strategy selection.
``fault``
    One injected fault event (name ``fail``/``lose``/``straggle``; attrs
    carry stage/partition/attempt).  A ``lose`` span *contains* the
    lineage recomputation it triggered, so recovery cost is attributed
    to the failure that caused it.
``retry``
    One task re-launch after an injected failure (name ``attemptN``).

The serving layer (:mod:`repro.server`) runs a second tracer over its
own service-level collector and adds:

``request``
    Root span around one executed request (name = request id; attrs
    carry the tenant plus the cache tier and status that resolved it).
    Engine work is charged to the engine's own context, not this
    tracer, keeping the service and substrate clocks separable.
``commit``
    One graph-version bump, with the new version and the invalidation
    count it caused.
``lint``
    Static analysis of one request at admission
    (:mod:`repro.analysis.query`); attrs carry the error and warning
    counts and whether the request was rejected.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.spark.metrics import MetricsCollector, MetricsSnapshot

#: Bumped when the JSON trace layout changes incompatibly.
TRACE_FORMAT_VERSION = 1


class Span:
    """One node of an execution trace.

    Attributes
    ----------
    kind:
        The span's category (see the module docstring for the vocabulary).
    name:
        A short human label, e.g. the engine name or an RDD id.
    attrs:
        JSON-serializable details (pattern text, join keys, byte counts).
    metrics:
        Inclusive counter deltas charged while the span was open; only
        counters that changed appear.
    children:
        Nested spans, in completion order.
    seq:
        Deterministic creation order within one trace (root = 0 is not
        guaranteed; the counter is shared across all spans of a tracer).
    """

    __slots__ = ("kind", "name", "attrs", "metrics", "children", "seq")

    def __init__(
        self,
        kind: str,
        name: str = "",
        attrs: Optional[Dict[str, Any]] = None,
        metrics: Optional[Dict[str, int]] = None,
        children: Optional[List["Span"]] = None,
        seq: int = 0,
    ) -> None:
        self.kind = kind
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs or {})
        self.metrics: Dict[str, int] = dict(metrics or {})
        self.children: List[Span] = list(children or [])
        self.seq = seq

    # ------------------------------------------------------------------
    # Metric views
    # ------------------------------------------------------------------

    @property
    def inclusive(self) -> MetricsSnapshot:
        """Everything charged while this span was open (children included)."""
        return MetricsSnapshot(dict(self.metrics))

    @property
    def self_metrics(self) -> Dict[str, int]:
        """This span's own charges: inclusive minus the children's inclusive."""
        own = dict(self.metrics)
        for child in self.children:
            for name, value in child.metrics.items():
                own[name] = own.get(name, 0) - value
        return {name: value for name, value in own.items() if value}

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "seq": self.seq}
        if self.name:
            out["name"] = self.name
        if self.attrs:
            out["attrs"] = self.attrs
        if self.metrics:
            out["metrics"] = self.metrics
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        return cls(
            kind=data["kind"],
            name=data.get("name", ""),
            attrs=data.get("attrs"),
            metrics=data.get("metrics"),
            children=[
                cls.from_dict(child) for child in data.get("children", ())
            ],
            seq=data.get("seq", 0),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Span):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return "Span(kind=%r, name=%r, children=%d)" % (
            self.kind,
            self.name,
            len(self.children),
        )


class Tracer:
    """Records nested spans with metric deltas for one SparkContext.

    Disabled by default; enable around the region of interest::

        sc.tracer.enable()
        engine.execute(query)
        sc.tracer.disable()
        print(render_trace(sc.tracer.roots))
    """

    def __init__(self, metrics: MetricsCollector) -> None:
        self._metrics = metrics
        self.enabled = False
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._seq = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def clear(self) -> "Tracer":
        """Drop all recorded spans (keeps the enabled flag)."""
        self.roots = []
        self._stack = []
        self._seq = 0
        return self

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, kind: str, name: str = "", **attrs: Any):
        """Open a span; on exit its inclusive metric delta is attached.

        Yields the :class:`Span` (so callers may add attrs discovered
        mid-flight) or ``None`` when tracing is disabled.
        """
        if not self.enabled:
            yield None
            return
        span = Span(kind, name, attrs, seq=self._seq)
        self._seq += 1
        before = self._metrics.snapshot()
        self._stack.append(span)
        try:
            yield span
        finally:
            delta = self._metrics.snapshot() - before
            span.metrics = {
                counter: value for counter, value in delta if value
            }
            self._stack.pop()
            if self._stack:
                self._stack[-1].children.append(span)
            else:
                self.roots.append(span)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        return trace_payload(self.roots)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_payload(), indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# JSON round-trip helpers
# ----------------------------------------------------------------------


def trace_payload(roots: List[Span]) -> Dict[str, Any]:
    """The canonical JSON-ready structure for a list of root spans."""
    return {
        "version": TRACE_FORMAT_VERSION,
        "spans": [span.to_dict() for span in roots],
    }


def trace_to_json(roots: List[Span], indent: Optional[int] = 2) -> str:
    return json.dumps(trace_payload(roots), indent=indent, sort_keys=True)


def trace_from_json(text: str) -> List[Span]:
    """Inverse of :func:`trace_to_json`."""
    payload = json.loads(text)
    version = payload.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(
            "unsupported trace version %r (expected %d)"
            % (version, TRACE_FORMAT_VERSION)
        )
    return [Span.from_dict(data) for data in payload.get("spans", ())]


def normalize_spans(roots: List[Span]) -> List[Dict[str, Any]]:
    """A canonical form of a trace, modulo concurrency nondeterminism.

    The parallel backend (:mod:`repro.spark.parallel`) merges worker
    spans in ascending task order, so two fields -- and only these two --
    may differ from an in-process run of the same query: the global
    ``seq`` numbering, and the relative order of *sibling* spans that
    came from different tasks.  This pass drops ``seq`` and sorts each
    sibling list by its canonical JSON, producing a structure that is
    equal across backends whenever the traces agree on everything that
    matters (kinds, names, attrs, per-span metric deltas, nesting).
    """

    def normalize(data: Dict[str, Any]) -> Dict[str, Any]:
        out = {
            key: value for key, value in data.items() if key != "seq"
        }
        children = [normalize(child) for child in data.get("children", ())]
        if children:
            out["children"] = sorted(
                children, key=lambda child: json.dumps(child, sort_keys=True)
            )
        return out

    return sorted(
        (normalize(span.to_dict()) for span in roots),
        key=lambda span: json.dumps(span, sort_keys=True),
    )


def trace_totals(roots: List[Span]) -> MetricsSnapshot:
    """Sum of the root spans' inclusive deltas.

    Because spans nest and each parent's delta includes its children, the
    roots alone reproduce the flat end-of-run totals for the traced region.
    """
    totals: Dict[str, int] = {}
    for span in roots:
        for counter, value in span.metrics.items():
            totals[counter] = totals.get(counter, 0) + value
    return MetricsSnapshot(totals)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

#: (counter, short label) pairs shown after each span, in display order.
_DISPLAY_COUNTERS = (
    ("records_scanned", "scan"),
    ("shuffle_records", "shuf"),
    ("shuffle_remote_records", "remote"),
    ("shuffle_bytes", "shufB"),
    ("join_comparisons", "cmp"),
    ("join_output_records", "out"),
    ("broadcast_bytes", "bcastB"),
    ("tasks", "tasks"),
    ("tasks_failed", "failed"),
    ("tasks_retried", "retried"),
    ("partitions_recomputed", "recomp"),
    ("recompute_comparisons", "recompT"),
    ("speculative_launches", "spec"),
)


def _format_counters(metrics: Dict[str, int]) -> str:
    parts = [
        "%s=%d" % (label, metrics[counter])
        for counter, label in _DISPLAY_COUNTERS
        if metrics.get(counter)
    ]
    return " ".join(parts)


def _span_label(span: Span) -> str:
    label = span.kind
    if span.name:
        label += " %s" % span.name
    details = " ".join(
        "%s=%s" % (key, value) for key, value in sorted(span.attrs.items())
    )
    if details:
        label += " {%s}" % details
    return label


def render_trace(
    roots: List[Span],
    indent: str = "  ",
    collapse_scans: bool = True,
) -> str:
    """Render spans as an indented tree annotated with per-span costs.

    ``collapse_scans`` folds runs of sibling per-partition ``scan`` spans
    into one summary line, keeping deep traces readable; the JSON export
    always keeps the full tree.
    """
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        cost = _format_counters(span.metrics)
        lines.append(
            "%s%s%s"
            % (indent * depth, _span_label(span), "  [%s]" % cost if cost else "")
        )
        pending_scans: List[Span] = []

        def flush_scans() -> None:
            if not pending_scans:
                return
            if len(pending_scans) <= 2 or not collapse_scans:
                for scan in pending_scans:
                    emit(scan, depth + 1)
            else:
                merged: Dict[str, int] = {}
                for scan in pending_scans:
                    for counter, value in scan.metrics.items():
                        merged[counter] = merged.get(counter, 0) + value
                cost = _format_counters(merged)
                lines.append(
                    "%sscan x%d%s"
                    % (
                        indent * (depth + 1),
                        len(pending_scans),
                        "  [%s]" % cost if cost else "",
                    )
                )
            pending_scans.clear()

        for child in span.children:
            if child.kind == "scan" and not child.children:
                pending_scans.append(child)
            else:
                flush_scans()
                emit(child, depth + 1)
        flush_scans()

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)
