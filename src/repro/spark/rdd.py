"""Resilient Distributed Datasets: lazy, partitioned, lineage-tracked lists.

This mirrors the RDD programming model the paper's Section III describes:
an immutable distributed collection operated on through transformations
(lazy, returning new RDDs) and actions (eager, returning values).  Narrow
transformations run partition-by-partition; wide ones insert a shuffle whose
traffic is charged to the context's :class:`MetricsCollector`.

Partitions are plain lists and "distribution" is simulated: partition *i*
lives on virtual executor ``i % num_executors``.  That is enough to measure
the property the paper cares about -- whether a join's input records were
already co-located (local) or had to cross executors (remote).
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

from repro.spark.faults import TaskFailedError
from repro.spark.metrics import estimate_size
from repro.spark.partitioner import HashPartitioner, Partitioner, RangePartitioner

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K")
V = TypeVar("V")
W = TypeVar("W")


def _fault_event(
    ctx, name: str, stage: int, partition: int, charge, **attrs: Any
) -> None:
    """Charge one injected-fault's counters, inside a ``fault`` span when
    the tracer is on (so recovery costs stay conserved in the trace)."""
    if ctx.tracer.enabled:
        with ctx.tracer.span(
            "fault", name=name, stage=stage, partition=partition, **attrs
        ):
            charge()
    else:
        charge()


def _retry_event(ctx, stage: int, partition: int, attempt: int) -> None:
    """Charge one task retry, inside a ``retry`` span when tracing."""
    if ctx.tracer.enabled:
        with ctx.tracer.span(
            "retry",
            name="attempt%d" % attempt,
            stage=stage,
            partition=partition,
        ):
            ctx.metrics.record_retry()
    else:
        ctx.metrics.record_retry()


class RDD:
    """An immutable, lazily evaluated, partitioned collection.

    Subclasses implement :meth:`compute` to produce one partition.  User code
    never constructs RDDs directly; it starts from
    :meth:`SparkContext.parallelize` and derives new RDDs with the
    transformation methods below.
    """

    def __init__(
        self,
        ctx,
        num_partitions: int,
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        self.ctx = ctx
        self.num_partitions = num_partitions
        #: The partitioner whose placement this RDD's partitions satisfy, if
        #: any.  Joins between two RDDs sharing an equal partitioner skip
        #: the shuffle -- the basis of every locality claim in the paper.
        self.partitioner = partitioner
        self._cached: Optional[Dict[int, List[Any]]] = None
        self._cache_requested = False
        self._checkpoint_requested = False
        self.id = ctx._next_rdd_id()

    # ------------------------------------------------------------------
    # Evaluation machinery
    # ------------------------------------------------------------------

    def compute(self, index: int) -> List[Any]:
        """Produce partition *index*.  Overridden by each RDD kind."""
        raise NotImplementedError

    def _iterate(self, index: int) -> List[Any]:
        """Evaluate one partition, honouring the cache, charging one task.

        Caching is per partition on first computation, like Spark: once a
        partition of a cached RDD has been computed (by any descendant),
        it is never recomputed.  When the context carries a
        :class:`~repro.spark.faults.FaultScheduler`, cached reads may
        suffer partition-loss events (rebuilt from lineage) and task runs
        may fail or straggle (retried/speculated); see :meth:`_run_task`.
        """
        if self.ctx.deadline is not None:
            # Deadline poll: one check per partition computation, the
            # simulated analogue of Spark's per-task kill points.
            self.ctx.deadline.check()
        if self._cached is not None and index in self._cached:
            faults = self.ctx.faults
            if (
                faults is not None
                and faults.active
                and not self._checkpoint_requested
                and faults.decide_loss(self.id, index)
            ):
                self._recover_lost_partition(index)
            return self._cached[index]
        data = self._run_task(index)
        if self._cache_requested:
            if self._cached is None:
                self._cached = {}
            self._cached[index] = data
        return data

    def _run_task(self, index: int) -> List[Any]:
        """Execute the task computing partition *index* under the fault
        schedule: injected failures are retried up to the context's
        ``max_task_attempts`` (then :class:`TaskFailedError`), stragglers
        charge delay and may launch a speculative backup copy.

        Failed attempts do not charge ``tasks`` -- that counter keeps
        meaning *successful* partition computations; the damage shows up
        in ``tasks_failed``/``tasks_retried`` instead.
        """
        ctx = self.ctx
        faults = ctx.faults
        if faults is None or not faults.active:
            ctx.metrics.record_task()
            return self.compute(index)
        attempt = 1
        while True:
            rule = faults.decide_task(self.id, index, attempt)
            if rule is not None and rule.kind == "fail":
                _fault_event(
                    ctx,
                    "fail",
                    self.id,
                    index,
                    ctx.metrics.record_task_failure,
                    attempt=attempt,
                )
                if attempt >= ctx.max_task_attempts:
                    raise TaskFailedError(self.id, index, attempt)
                _retry_event(ctx, self.id, index, attempt + 1)
                attempt += 1
                continue
            if rule is not None and rule.kind == "straggle":
                delay = rule.delay

                def charge_straggler(delay=delay):
                    ctx.metrics.record_straggler(delay)
                    if ctx.speculation:
                        # The backup copy redoes the work; both its task
                        # and the launch are charged.
                        ctx.metrics.record_speculative()

                _fault_event(
                    ctx,
                    "straggle",
                    self.id,
                    index,
                    charge_straggler,
                    attempt=attempt,
                    delay=delay,
                )
            ctx.metrics.record_task()
            return self.compute(index)

    def _recover_lost_partition(self, index: int) -> None:
        """A loss event evicted this cached partition; rebuild it from
        lineage, charging the recovery (Spark's RDD fault tolerance)."""
        ctx = self.ctx
        assert self._cached is not None
        del self._cached[index]
        if ctx.tracer.enabled:
            with ctx.tracer.span(
                "fault", name="lose", stage=self.id, partition=index
            ):
                self._rebuild_partition(index)
        else:
            self._rebuild_partition(index)

    def _rebuild_partition(self, index: int) -> None:
        """Recompute one lost partition from its parents.

        Only the *outermost* recovery charges ``recompute_comparisons``
        (the tasks re-executed on its behalf), so nested losses hit while
        walking the lineage are not double-billed.
        """
        ctx = self.ctx
        ctx.metrics.record_partition_recomputed()
        outermost = not ctx._recovering
        if outermost:
            ctx._recovering = True
            tasks_before = ctx.metrics.get("tasks")
        try:
            data = self._run_task(index)
        finally:
            if outermost:
                ctx._recovering = False
        if outermost:
            ctx.metrics.record_recompute_work(
                ctx.metrics.get("tasks") - tasks_before
            )
        assert self._cached is not None
        self._cached[index] = data

    def _materialize(self) -> List[List[Any]]:
        """Evaluate every partition (filling the cache when requested).

        Dispatches to the context's executor backend: the serial
        in-process oracle or the multi-process pool (see
        :mod:`repro.spark.parallel`).  Both produce identical data.
        """
        return self.ctx.executor_backend.materialize(self)

    def cache(self) -> "RDD":
        """Keep computed partitions in memory for reuse (like ``persist``)."""
        self._cache_requested = True
        return self

    persist = cache

    def unpersist(self) -> "RDD":
        self._cache_requested = False
        self._checkpoint_requested = False
        self._cached = None
        return self

    @property
    def is_cached(self) -> bool:
        return self._cached is not None

    def checkpoint(self) -> "RDD":
        """Persist to (simulated) reliable storage, truncating lineage.

        Like :meth:`cache`, but checkpointed partitions are immune to
        injected partition-loss events: in Spark terms they live on
        stable storage rather than executor memory, so recovery never
        needs to walk past them.  The lineage-depth claim in
        ``repro.core.claims`` measures exactly this difference.
        """
        self._cache_requested = True
        self._checkpoint_requested = True
        return self

    localCheckpoint = checkpoint

    @property
    def is_checkpointed(self) -> bool:
        return self._checkpoint_requested

    # ------------------------------------------------------------------
    # Narrow transformations
    # ------------------------------------------------------------------

    def mapPartitionsWithIndex(
        self,
        func: Callable[[int, List[Any]], Iterable[Any]],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        return MapPartitionsRDD(self, func, preserves_partitioning)

    def mapPartitions(
        self,
        func: Callable[[List[Any]], Iterable[Any]],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        return self.mapPartitionsWithIndex(
            lambda _, part: func(part), preserves_partitioning
        )

    def map(self, func: Callable[[Any], Any]) -> "RDD":
        return self.mapPartitions(lambda part: [func(x) for x in part])

    def flatMap(self, func: Callable[[Any], Iterable[Any]]) -> "RDD":
        return self.mapPartitions(
            lambda part: [y for x in part for y in func(x)]
        )

    def filter(self, predicate: Callable[[Any], bool]) -> "RDD":
        return self.mapPartitions(
            lambda part: [x for x in part if predicate(x)],
            preserves_partitioning=True,
        )

    def keyBy(self, func: Callable[[Any], Any]) -> "RDD":
        """Pair each element with ``func(element)`` as its key."""
        return self.map(lambda x: (func(x), x))

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def mapValues(self, func: Callable[[Any], Any]) -> "RDD":
        return self.mapPartitions(
            lambda part: [(k, func(v)) for k, v in part],
            preserves_partitioning=True,
        )

    def flatMapValues(self, func: Callable[[Any], Iterable[Any]]) -> "RDD":
        return self.mapPartitions(
            lambda part: [(k, u) for k, v in part for u in func(v)],
            preserves_partitioning=True,
        )

    def glom(self) -> "RDD":
        """Turn each partition into a single list element."""
        return self.mapPartitions(lambda part: [list(part)])

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self, other)

    def sample(self, fraction: float, seed: int = 17) -> "RDD":
        """Deterministic Bernoulli sample of each partition."""

        def sample_partition(index: int, part: List[Any]) -> List[Any]:
            rng = random.Random(seed * 1000003 + index)
            return [x for x in part if rng.random() < fraction]

        return self.mapPartitionsWithIndex(sample_partition)

    def zipWithIndex(self) -> "RDD":
        """Pair each element with its global position (eagerly sizes partitions)."""
        sizes = [len(self._iterate(i)) for i in range(self.num_partitions)]
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)

        def zip_partition(index: int, part: List[Any]) -> List[Any]:
            start = offsets[index]
            return [(x, start + pos) for pos, x in enumerate(part)]

        return self.mapPartitionsWithIndex(zip_partition)

    # ------------------------------------------------------------------
    # Wide transformations (shuffles)
    # ------------------------------------------------------------------

    def partitionBy(self, partitioner: Partitioner) -> "RDD":
        """Shuffle (key, value) pairs so placement satisfies *partitioner*.

        A no-op (no shuffle, no traffic) when this RDD already satisfies an
        equal partitioner -- exactly Spark's behaviour, and the mechanism
        behind "star-shaped queries are performed locally" in HAQWA.
        """
        if self.partitioner == partitioner:
            return self
        return ShuffledRDD(self, partitioner)

    def repartition(self, num_partitions: int) -> "RDD":
        """Redistribute elements round-robin into *num_partitions* parts."""
        indexed = self.zipWithIndex().map(lambda xi: (xi[1], xi[0]))
        shuffled = indexed.partitionBy(HashPartitioner(num_partitions))
        return shuffled.values()

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce partition count without a shuffle by merging neighbours."""
        if num_partitions >= self.num_partitions:
            return self
        return CoalescedRDD(self, num_partitions)

    def distinct(self, num_partitions: Optional[int] = None) -> "RDD":
        n = num_partitions or self.num_partitions
        return (
            self.map(lambda x: (x, None))
            .reduceByKey(lambda a, _b: a, n)
            .keys()
        )

    def combineByKey(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        """The general shuffle-with-aggregation primitive.

        Map-side combining runs before the shuffle, so e.g. ``reduceByKey``
        ships one record per (map partition, key) instead of one per input
        record -- observable in the shuffle counters.
        """
        part = partitioner or HashPartitioner(
            num_partitions or self.num_partitions
        )
        return ShuffledRDD(
            self,
            part,
            aggregator=(create_combiner, merge_value, merge_combiners),
        )

    def reduceByKey(
        self,
        func: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        return self.combineByKey(
            lambda v: v, func, func, num_partitions, partitioner
        )

    def groupByKey(
        self,
        num_partitions: Optional[int] = None,
        partitioner: Optional[Partitioner] = None,
    ) -> "RDD":
        return self.combineByKey(
            lambda v: [v],
            lambda acc, v: acc + [v],
            lambda a, b: a + b,
            num_partitions,
            partitioner,
        )

    def aggregateByKey(
        self,
        zero: Any,
        seq_func: Callable[[Any, Any], Any],
        comb_func: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Aggregate values per key with a zero value and two functions.

        *seq_func* folds a value into an accumulator (map side);
        *comb_func* merges accumulators (reduce side).  *zero* must be
        immutable or treated as such.
        """
        return self.combineByKey(
            lambda v: seq_func(zero, v),
            seq_func,
            comb_func,
            num_partitions,
        )

    def foldByKey(
        self,
        zero: Any,
        func: Callable[[Any, Any], Any],
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        return self.aggregateByKey(zero, func, func, num_partitions)

    def cogroup(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        """Group both RDDs by key: ``(key, (values_here, values_there))``.

        Reuses an existing common partitioner when both sides have one, in
        which case no data moves at all.
        """
        if (
            self.partitioner is not None
            and self.partitioner == other.partitioner
        ):
            partitioner = self.partitioner
        else:
            partitioner = HashPartitioner(
                num_partitions
                or max(self.num_partitions, other.num_partitions)
            )
        left = self.partitionBy(partitioner)
        right = other.partitionBy(partitioner)
        return CoGroupedRDD(left, right, partitioner)

    def _join_with(
        self,
        other: "RDD",
        join_type: str,
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        grouped = self.cogroup(other, num_partitions)
        metrics = self.ctx.metrics

        def emit(part: List[Any]) -> List[Any]:
            out: List[Any] = []
            comparisons = 0
            for key, (lefts, rights) in part:
                comparisons += max(len(lefts), 1) * max(len(rights), 1)
                if lefts and rights:
                    for lv in lefts:
                        for rv in rights:
                            out.append((key, (lv, rv)))
                elif lefts and join_type in ("left", "full"):
                    for lv in lefts:
                        out.append((key, (lv, None)))
                elif rights and join_type in ("right", "full"):
                    for rv in rights:
                        out.append((key, (None, rv)))
            metrics.record_join(comparisons, len(part), len(out))
            return out

        return grouped.mapPartitions(emit, preserves_partitioning=True)

    def join(self, other: "RDD", num_partitions: Optional[int] = None) -> "RDD":
        """Inner hash join on keys (a *partitioned join* in the paper's terms)."""
        return self._join_with(other, "inner", num_partitions)

    def leftOuterJoin(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        return self._join_with(other, "left", num_partitions)

    def rightOuterJoin(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        return self._join_with(other, "right", num_partitions)

    def fullOuterJoin(
        self, other: "RDD", num_partitions: Optional[int] = None
    ) -> "RDD":
        return self._join_with(other, "full", num_partitions)

    def broadcastJoin(self, other: "RDD") -> "RDD":
        """Inner join shipping *other* whole to every executor (map-side join).

        No shuffle of this RDD; the cost is the broadcast of the build side.
        This is the second distributed join algorithm studied by the hybrid
        approach (Section IV-A3).
        """
        build: Dict[Any, List[Any]] = defaultdict(list)
        for part in other._materialize():
            for key, value in part:
                build[key].append(value)
        bcast = self.ctx.broadcast(dict(build))
        metrics = self.ctx.metrics

        def probe(part: List[Any]) -> List[Any]:
            table = bcast.value
            out = []
            comparisons = 0
            for key, value in part:
                matches = table.get(key)
                if matches:
                    comparisons += len(matches)
                    for build_value in matches:
                        out.append((key, (value, build_value)))
                else:
                    comparisons += 1
            metrics.record_join(comparisons, len(part), len(out))
            return out

        return self.mapPartitions(probe, preserves_partitioning=True)

    def subtractByKey(self, other: "RDD") -> "RDD":
        grouped = self.cogroup(other)
        return grouped.flatMap(
            lambda item: [(item[0], v) for v in item[1][0]]
            if not item[1][1]
            else []
        )

    def subtract(self, other: "RDD") -> "RDD":
        left = self.map(lambda x: (x, None))
        right = other.map(lambda x: (x, None))
        return left.subtractByKey(right).keys()

    def intersection(self, other: "RDD") -> "RDD":
        left = self.map(lambda x: (x, None))
        right = other.map(lambda x: (x, None))
        return (
            left.cogroup(right)
            .filter(lambda item: bool(item[1][0]) and bool(item[1][1]))
            .keys()
        )

    def cartesian(self, other: "RDD") -> "RDD":
        """All pairs; charges the full nested-loop comparison count."""
        return CartesianRDD(self, other)

    def sortBy(
        self,
        keyfunc: Callable[[Any], Any],
        ascending: bool = True,
        num_partitions: Optional[int] = None,
    ) -> "RDD":
        """Total sort via sampled range partitioning, like Spark's sortBy."""
        n = num_partitions or self.num_partitions
        sample = [
            keyfunc(x)
            for part in self._materialize()
            for x in part
        ]
        sample.sort()
        if n > 1 and sample:
            step = max(len(sample) // n, 1)
            bounds = sample[step::step][: n - 1]
        else:
            bounds = []
        partitioner = RangePartitioner(n, bounds)
        keyed = self.keyBy(keyfunc)
        shuffled = keyed.partitionBy(partitioner)

        def sort_partition(part: List[Any]) -> List[Any]:
            ordered = sorted(part, key=lambda kv: kv[0], reverse=not ascending)
            return [v for _k, v in ordered]

        result = shuffled.mapPartitions(sort_partition)
        if not ascending:
            return ReversedPartitionsRDD(result)
        return result

    def sortByKey(
        self, ascending: bool = True, num_partitions: Optional[int] = None
    ) -> "RDD":
        return (
            self.map(lambda kv: kv)
            .sortBy(lambda kv: kv[0], ascending, num_partitions)
        )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def collect(self) -> List[Any]:
        return [x for part in self._materialize() for x in part]

    def count(self) -> int:
        return sum(len(part) for part in self._materialize())

    def isEmpty(self) -> bool:
        return all(not self._iterate(i) for i in range(self.num_partitions))

    def first(self) -> Any:
        for i in range(self.num_partitions):
            part = self._iterate(i)
            if part:
                return part[0]
        raise ValueError("RDD is empty")

    def take(self, n: int) -> List[Any]:
        out: List[Any] = []
        for i in range(self.num_partitions):
            if len(out) >= n:
                break
            out.extend(self._iterate(i)[: n - len(out)])
        return out

    def top(self, n: int, key: Optional[Callable[[Any], Any]] = None) -> List[Any]:
        return sorted(self.collect(), key=key, reverse=True)[:n]

    def takeOrdered(
        self, n: int, key: Optional[Callable[[Any], Any]] = None
    ) -> List[Any]:
        """The *n* smallest elements (by *key*), like Spark's takeOrdered."""
        return sorted(self.collect(), key=key)[:n]

    def zip(self, other: "RDD") -> "RDD":
        """Pair elements positionally; lengths must match."""
        left = self.collect()
        right = other.collect()
        if len(left) != len(right):
            raise ValueError(
                "cannot zip RDDs of different lengths: %d vs %d"
                % (len(left), len(right))
            )
        return self.ctx.parallelize(
            list(zip(left, right)), self.num_partitions
        )

    def reduce(self, func: Callable[[Any, Any], Any]) -> Any:
        items = self.collect()
        if not items:
            raise ValueError("cannot reduce an empty RDD")
        acc = items[0]
        for item in items[1:]:
            acc = func(acc, item)
        return acc

    def fold(self, zero: Any, func: Callable[[Any, Any], Any]) -> Any:
        acc = zero
        for item in self.collect():
            acc = func(acc, item)
        return acc

    def sum(self) -> Any:
        return sum(self.collect())

    def max(self, key: Optional[Callable[[Any], Any]] = None) -> Any:
        return max(self.collect(), key=key) if key else max(self.collect())

    def min(self, key: Optional[Callable[[Any], Any]] = None) -> Any:
        return min(self.collect(), key=key) if key else min(self.collect())

    def countByKey(self) -> Dict[Any, int]:
        counts: Dict[Any, int] = defaultdict(int)
        for key, _value in self.collect():
            counts[key] += 1
        return dict(counts)

    def countByValue(self) -> Dict[Any, int]:
        counts: Dict[Any, int] = defaultdict(int)
        for item in self.collect():
            counts[item] += 1
        return dict(counts)

    def lookup(self, key: Any) -> List[Any]:
        """Values for *key*; scans only its partition when a partitioner is set."""
        if self.partitioner is not None:
            index = self.partitioner.partition_for(key)
            return [v for k, v in self._iterate(index) if k == key]
        return [v for k, v in self.collect() if k == key]

    def foreach(self, func: Callable[[Any], None]) -> None:
        for item in self.collect():
            func(item)

    def collectPartitions(self) -> List[List[Any]]:
        """Materialized partitions, for tests asserting placement."""
        return [list(part) for part in self._materialize()]

    def __repr__(self) -> str:
        return "%s(id=%d, partitions=%d)" % (
            type(self).__name__,
            self.id,
            self.num_partitions,
        )


class ParallelCollectionRDD(RDD):
    """Leaf RDD over an in-memory collection split into even slices."""

    def __init__(self, ctx, data: Iterable[Any], num_partitions: int) -> None:
        items = list(data)
        num_partitions = max(1, min(num_partitions, max(len(items), 1)))
        super().__init__(ctx, num_partitions)
        self._slices: List[List[Any]] = [[] for _ in range(num_partitions)]
        for i, item in enumerate(items):
            self._slices[i * num_partitions // max(len(items), 1)].append(item)

    def compute(self, index: int) -> List[Any]:
        part = self._slices[index]
        if self.ctx.tracer.enabled:
            with self.ctx.tracer.span(
                "scan", name="rdd%d" % self.id, partition=index
            ):
                self.ctx.metrics.record_scan(len(part))
        else:
            self.ctx.metrics.record_scan(len(part))
        return list(part)


class PrePartitionedRDD(RDD):
    """Leaf RDD whose partitions were placed by the caller.

    Systems that build bespoke stores (SPARQLGX's vertical partitions,
    SparkRDF's MESG) use this to declare both the placement and the
    partitioner it satisfies.
    """

    def __init__(
        self,
        ctx,
        partitions: List[List[Any]],
        partitioner: Optional[Partitioner] = None,
    ) -> None:
        super().__init__(ctx, max(len(partitions), 1), partitioner)
        self._parts = [list(p) for p in partitions] or [[]]

    def compute(self, index: int) -> List[Any]:
        part = self._parts[index]
        if self.ctx.tracer.enabled:
            with self.ctx.tracer.span(
                "scan", name="rdd%d" % self.id, partition=index
            ):
                self.ctx.metrics.record_scan(len(part))
        else:
            self.ctx.metrics.record_scan(len(part))
        return list(part)


class MapPartitionsRDD(RDD):
    """Narrow transformation applying a function to each parent partition."""

    def __init__(
        self,
        parent: RDD,
        func: Callable[[int, List[Any]], Iterable[Any]],
        preserves_partitioning: bool,
    ) -> None:
        super().__init__(
            parent.ctx,
            parent.num_partitions,
            parent.partitioner if preserves_partitioning else None,
        )
        self.parent = parent
        self.func = func

    def compute(self, index: int) -> List[Any]:
        return list(self.func(index, self.parent._iterate(index)))


class UnionRDD(RDD):
    """Concatenation of two RDDs' partitions (narrow, no shuffle)."""

    def __init__(self, left: RDD, right: RDD) -> None:
        if left.ctx is not right.ctx:
            raise ValueError("cannot union RDDs from different contexts")
        super().__init__(
            left.ctx, left.num_partitions + right.num_partitions
        )
        self.left = left
        self.right = right

    def compute(self, index: int) -> List[Any]:
        if index < self.left.num_partitions:
            return self.left._iterate(index)
        return self.right._iterate(index - self.left.num_partitions)


class CoalescedRDD(RDD):
    """Merges contiguous parent partitions without shuffling."""

    def __init__(self, parent: RDD, num_partitions: int) -> None:
        super().__init__(parent.ctx, num_partitions)
        self.parent = parent
        self._groups: List[List[int]] = [[] for _ in range(num_partitions)]
        for i in range(parent.num_partitions):
            self._groups[i * num_partitions // parent.num_partitions].append(i)

    def compute(self, index: int) -> List[Any]:
        out: List[Any] = []
        for parent_index in self._groups[index]:
            out.extend(self.parent._iterate(parent_index))
        return out


class ReversedPartitionsRDD(RDD):
    """Presents the parent's partitions in reverse order (descending sorts)."""

    def __init__(self, parent: RDD) -> None:
        super().__init__(parent.ctx, parent.num_partitions)
        self.parent = parent

    def compute(self, index: int) -> List[Any]:
        return self.parent._iterate(self.num_partitions - 1 - index)


class ShuffledRDD(RDD):
    """Wide dependency: repartitions (key, value) records by *partitioner*.

    The shuffle is simulated in one pass on first access and its traffic
    recorded: every record is charged, and records whose map partition and
    reduce partition live on different virtual executors count as remote.
    """

    def __init__(
        self,
        parent: RDD,
        partitioner: Partitioner,
        aggregator: Optional[
            Tuple[
                Callable[[Any], Any],
                Callable[[Any, Any], Any],
                Callable[[Any, Any], Any],
            ]
        ] = None,
    ) -> None:
        super().__init__(parent.ctx, partitioner.num_partitions, partitioner)
        self.parent = parent
        self.aggregator = aggregator
        self._buckets: Optional[List[List[Any]]] = None

    def _ensure_shuffled(self) -> List[List[Any]]:
        if self._buckets is not None:
            return self._buckets
        ctx = self.ctx
        if ctx.tracer.enabled:
            with ctx.tracer.span(
                "shuffle",
                name="rdd%d" % self.id,
                partitions=self.partitioner.num_partitions,
                aggregated=self.aggregator is not None,
            ) as span:
                buckets = self._do_shuffle(span)
        else:
            buckets = self._do_shuffle(None)
        self._buckets = buckets
        return buckets

    def _do_shuffle(self, span) -> List[List[Any]]:
        """Run the simulated shuffle, charging and (optionally) tracing it."""
        num_out = self.partitioner.num_partitions
        buckets: List[List[Any]] = [[] for _ in range(num_out)]
        records = remote = nbytes = 0
        for map_index in range(self.parent.num_partitions):
            fragments, map_records, map_remote, map_bytes = (
                self._map_fragments(map_index)
            )
            for reduce_index, fragment in enumerate(fragments):
                buckets[reduce_index].extend(fragment)
            records += map_records
            remote += map_remote
            nbytes += map_bytes
        self._finish_shuffle(buckets, records, remote, nbytes, span)
        return buckets

    def _map_fragments(
        self, map_index: int
    ) -> Tuple[List[List[Any]], int, int, int]:
        """One shuffle map task: route one parent partition into per-reduce
        bucket fragments (with optional map-side combining), counting the
        records/remote/bytes it contributes.  This is the unit the
        parallel backend distributes; the serial path concatenates the
        fragments in map order, so both produce identical buckets.
        """
        ctx = self.ctx
        num_out = self.partitioner.num_partitions
        fragments: List[List[Any]] = [[] for _ in range(num_out)]
        records = remote = nbytes = 0
        part = self.parent._iterate(map_index)
        if self.aggregator is not None:
            create, merge_value, _merge_combiners = self.aggregator
            combined: Dict[Any, Any] = {}
            for key, value in part:
                if key in combined:
                    combined[key] = merge_value(combined[key], value)
                else:
                    combined[key] = create(value)
            outgoing: Iterable[Tuple[Any, Any]] = combined.items()
        else:
            outgoing = part
        for key, value in outgoing:
            reduce_index = self.partitioner.partition_for(key)
            fragments[reduce_index].append((key, value))
            records += 1
            nbytes += estimate_size((key, value))
            if ctx.executor_for(map_index) != ctx.executor_for(reduce_index):
                remote += 1
        return fragments, records, remote, nbytes

    def _finish_shuffle(
        self,
        buckets: List[List[Any]],
        records: int,
        remote: int,
        nbytes: int,
        span,
    ) -> None:
        """Reduce-side combining plus the one-shot shuffle charge."""
        if self.aggregator is not None:
            _create, _merge_value, merge_combiners = self.aggregator
            for i, bucket in enumerate(buckets):
                merged: Dict[Any, Any] = {}
                for key, value in bucket:
                    if key in merged:
                        merged[key] = merge_combiners(merged[key], value)
                    else:
                        merged[key] = value
                buckets[i] = list(merged.items())
        self.ctx.metrics.record_shuffle(records, remote, nbytes)
        if span is not None:
            span.attrs["records"] = records
            span.attrs["remote"] = remote
            span.attrs["bytes"] = nbytes

    def compute(self, index: int) -> List[Any]:
        return list(self._ensure_shuffled()[index])


class CoGroupedRDD(RDD):
    """Per-partition grouping of two equally partitioned pair-RDDs."""

    def __init__(self, left: RDD, right: RDD, partitioner: Partitioner) -> None:
        super().__init__(left.ctx, partitioner.num_partitions, partitioner)
        self.left = left
        self.right = right

    def compute(self, index: int) -> List[Any]:
        groups: Dict[Any, Tuple[List[Any], List[Any]]] = {}
        for key, value in self.left._iterate(index):
            groups.setdefault(key, ([], []))[0].append(value)
        for key, value in self.right._iterate(index):
            groups.setdefault(key, ([], []))[1].append(value)
        return list(groups.items())


class CartesianRDD(RDD):
    """All pairs of two RDDs; the nested-loop cost is charged as comparisons.

    The paper singles out cartesian products as the failure mode of naive
    SPARQL-on-Spark-SQL translation (Section IV-A3) and as SPARQLGX's
    fallback for disjoint triple patterns.
    """

    def __init__(self, left: RDD, right: RDD) -> None:
        super().__init__(
            left.ctx, left.num_partitions * right.num_partitions
        )
        self.left = left
        self.right = right

    def compute(self, index: int) -> List[Any]:
        left_index = index // self.right.num_partitions
        right_index = index % self.right.num_partitions
        left_part = self.left._iterate(left_index)
        right_part = self.right._iterate(right_index)
        out = [(l, r) for l in left_part for r in right_part]
        self.ctx.metrics.record_join(
            comparisons=len(left_part) * len(right_part),
            probe_lookups=len(left_part),
            output_records=len(out),
        )
        return out
