"""Per-query deadlines over deterministic virtual time.

The simulated cluster has no wall clock -- determinism is the whole point
-- so a "deadline" cannot be a number of seconds.  Instead the serving
layer measures *virtual time* in **cost units**: a weighted sum of the
work counters every operator already charges to its context's
:class:`~repro.spark.metrics.MetricsCollector`.  A deadline is a budget
of cost units a query may spend; the task-execution loop polls it once
per partition computation (:meth:`repro.spark.rdd.RDD._iterate`), which
is exactly where real Spark's task kill/interruption points live.

Two consequences of charging deadlines in virtual time:

* **Byte-determinism.**  The same query on the same graph aborts at the
  same task with the same accounting, every run, on any machine.
* **Honest semantics.**  A deadline bounds *work admitted*, not time
  elapsed; an over-deadline query has already spent close to its budget
  when it is killed (the overshoot is at most one task's charges, since
  the poll is per task).

:func:`cost_units` defines the virtual clock; keep it in sync with the
``VIRTUAL_COST_COUNTERS`` list documented in ``docs/SERVER.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.spark.metrics import MetricsCollector, MetricsSnapshot

#: Counters whose sum defines virtual time.  One scanned record, one
#: shuffled record, one join comparison, and one executed task each cost
#: one unit; straggler delay is charged at its injected weight so slow
#: tasks consume deadline budget the way they consume wall-clock time.
VIRTUAL_COST_COUNTERS = (
    "tasks",
    "records_scanned",
    "shuffle_records",
    "join_comparisons",
    "straggler_delay_units",
)


def cost_units(snapshot: MetricsSnapshot) -> int:
    """The virtual-time reading of a metrics snapshot, in cost units."""
    return sum(snapshot.get(name) for name in VIRTUAL_COST_COUNTERS)


class DeadlineExceededError(RuntimeError):
    """A query spent its cost-unit budget before completing.

    Typed like :class:`~repro.spark.faults.TaskFailedError` so service
    callers can distinguish "the cluster gave up" from "the query was too
    expensive for its deadline".  Carries the budget and the units
    actually spent when the poll fired.
    """

    def __init__(
        self,
        budget: int,
        spent: int,
        query: Optional[str] = None,
    ) -> None:
        self.budget = budget
        self.spent = spent
        #: Request/query label, filled in by the serving layer when known.
        self.query = query
        super().__init__()

    def __reduce__(self):
        # Explicit recipe so the error survives the parallel backend's
        # worker pipes (the default reduce replays empty args).
        return (DeadlineExceededError, (self.budget, self.spent, self.query))

    def __str__(self) -> str:
        message = (
            "deadline exceeded: spent %d cost unit(s) of a %d-unit budget"
            % (self.spent, self.budget)
        )
        if self.query:
            message += " [query %s]" % self.query
        return message

    def __repr__(self) -> str:
        return "DeadlineExceededError(budget=%d, spent=%d)" % (
            self.budget,
            self.spent,
        )


class Deadline:
    """A cost-unit budget armed against one collector.

    Created by :meth:`SparkContext.set_deadline`; the task loop calls
    :meth:`check` once per partition computation.  The budget is measured
    from the collector's state at arm time, so warm-up work done before
    the query started is not billed against it.
    """

    __slots__ = ("budget", "_metrics", "_start", "query")

    def __init__(
        self,
        budget: int,
        metrics: MetricsCollector,
        query: Optional[str] = None,
    ) -> None:
        if budget <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget = budget
        self._metrics = metrics
        self._start = self._reading()
        self.query = query

    def _reading(self) -> int:
        return sum(
            self._metrics.get(name) for name in VIRTUAL_COST_COUNTERS
        )

    def spent(self) -> int:
        """Cost units charged since the deadline was armed."""
        return self._reading() - self._start

    def remaining(self) -> int:
        return self.budget - self.spent()

    def check(self) -> None:
        """Raise :class:`DeadlineExceededError` when the budget is spent."""
        spent = self.spent()
        if spent > self.budget:
            raise DeadlineExceededError(self.budget, spent, self.query)

    def __repr__(self) -> str:
        return "Deadline(budget=%d, spent=%d)" % (self.budget, self.spent())
