"""The property graph: vertex and edge RDDs plus graph-parallel operators.

A ``Graph`` pairs an RDD of ``(vertex_id, attribute)`` with an RDD of
:class:`Edge`.  ``aggregateMessages`` is the workhorse the surveyed systems
use for BGP matching: a *send* function inspects each edge triplet and may
message either endpoint; a *merge* function combines messages per vertex.
All data movement runs through the underlying RDDs, so shuffle and join
costs land in the context metrics like any other workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.spark.partitioner import HashPartitioner
from repro.spark.rdd import RDD


@dataclass(frozen=True)
class Edge:
    """A directed edge with an attribute (for RDF: the predicate)."""

    src: Any
    dst: Any
    attr: Any = None


@dataclass(frozen=True)
class EdgeTriplet:
    """An edge together with both endpoint attributes."""

    src: Any
    src_attr: Any
    dst: Any
    dst_attr: Any
    attr: Any

    def edge(self) -> Edge:
        return Edge(self.src, self.dst, self.attr)


class EdgeContext:
    """Handed to the send function of :meth:`Graph.aggregateMessages`."""

    __slots__ = ("triplet", "_messages")

    def __init__(self, triplet: EdgeTriplet) -> None:
        self.triplet = triplet
        self._messages: List[Tuple[Any, Any]] = []

    @property
    def src(self) -> Any:
        return self.triplet.src

    @property
    def dst(self) -> Any:
        return self.triplet.dst

    @property
    def src_attr(self) -> Any:
        return self.triplet.src_attr

    @property
    def dst_attr(self) -> Any:
        return self.triplet.dst_attr

    @property
    def attr(self) -> Any:
        return self.triplet.attr

    def send_to_src(self, message: Any) -> None:
        self._messages.append((self.triplet.src, message))

    def send_to_dst(self, message: Any) -> None:
        self._messages.append((self.triplet.dst, message))


class Graph:
    """A property graph distributed as vertex and edge RDDs."""

    def __init__(self, vertices: RDD, edges: RDD) -> None:
        self.ctx = vertices.ctx
        partitioner = HashPartitioner(vertices.ctx.default_parallelism)
        #: RDD of (vertex_id, attribute), hash partitioned by id.
        self.vertices = vertices.partitionBy(partitioner).cache()
        #: RDD of Edge, partitioned by source vertex (edge-cut strategy).
        self.edges = (
            edges.keyBy(lambda e: e.src).partitionBy(partitioner).values().cache()
        )
        self._partitioner = partitioner

    @classmethod
    def from_edge_tuples(
        cls,
        ctx,
        edge_tuples: List[Tuple[Any, Any, Any]],
        default_vertex_attr: Any = None,
    ) -> "Graph":
        """Build a graph from (src, dst, attr) tuples, deriving vertices."""
        vertex_ids = sorted(
            {s for s, _d, _a in edge_tuples} | {d for _s, d, _a in edge_tuples},
            key=repr,
        )
        vertices = ctx.parallelize(
            [(vid, default_vertex_attr) for vid in vertex_ids]
        )
        edges = ctx.parallelize([Edge(s, d, a) for s, d, a in edge_tuples])
        return cls(vertices, edges)

    # ------------------------------------------------------------------
    # Structural operators
    # ------------------------------------------------------------------

    def num_vertices(self) -> int:
        return self.vertices.count()

    def num_edges(self) -> int:
        return self.edges.count()

    def mapVertices(self, func: Callable[[Any, Any], Any]) -> "Graph":
        """Transform each vertex attribute with ``func(id, attr)``."""
        return Graph(
            self.vertices.mapPartitions(
                lambda part: [(vid, func(vid, attr)) for vid, attr in part],
                preserves_partitioning=True,
            ),
            self.edges,
        )

    def mapEdges(self, func: Callable[[Edge], Any]) -> "Graph":
        """Transform each edge attribute."""
        return Graph(
            self.vertices,
            self.edges.map(lambda e: Edge(e.src, e.dst, func(e))),
        )

    def reverse(self) -> "Graph":
        return Graph(
            self.vertices,
            self.edges.map(lambda e: Edge(e.dst, e.src, e.attr)),
        )

    def subgraph(
        self,
        epred: Optional[Callable[[EdgeTriplet], bool]] = None,
        vpred: Optional[Callable[[Any, Any], bool]] = None,
    ) -> "Graph":
        """Restrict to vertices/edges passing the predicates.

        Edges survive only when both endpoints survive, like GraphX.
        """
        vertices = self.vertices
        if vpred is not None:
            vertices = vertices.filter(lambda va: vpred(va[0], va[1]))
        vertex_set = set(vid for vid, _a in vertices.collect())
        triplets = self.triplets()
        kept = triplets.filter(
            lambda t: t.src in vertex_set
            and t.dst in vertex_set
            and (epred is None or epred(t))
        )
        edges = kept.map(lambda t: Edge(t.src, t.dst, t.attr))
        return Graph(vertices, edges)

    def triplets(self) -> RDD:
        """RDD of :class:`EdgeTriplet` (edges joined with both endpoints)."""
        by_src = self.edges.keyBy(lambda e: e.src)
        with_src = by_src.join(self.vertices)
        by_dst = with_src.map(
            lambda kv: (kv[1][0].dst, (kv[1][0], kv[1][1]))
        )
        with_both = by_dst.join(self.vertices)
        return with_both.map(
            lambda kv: EdgeTriplet(
                src=kv[1][0][0].src,
                src_attr=kv[1][0][1],
                dst=kv[1][0][0].dst,
                dst_attr=kv[1][1],
                attr=kv[1][0][0].attr,
            )
        )

    # ------------------------------------------------------------------
    # Degrees
    # ------------------------------------------------------------------

    def out_degrees(self) -> RDD:
        return self.edges.map(lambda e: (e.src, 1)).reduceByKey(lambda a, b: a + b)

    def in_degrees(self) -> RDD:
        return self.edges.map(lambda e: (e.dst, 1)).reduceByKey(lambda a, b: a + b)

    def degrees(self) -> RDD:
        return (
            self.edges.flatMap(lambda e: [(e.src, 1), (e.dst, 1)])
            .reduceByKey(lambda a, b: a + b)
        )

    # ------------------------------------------------------------------
    # Vertex joins
    # ------------------------------------------------------------------

    def outerJoinVertices(
        self, other: RDD, func: Callable[[Any, Any, Optional[Any]], Any]
    ) -> "Graph":
        """Join vertex attributes with another keyed RDD.

        ``func(id, attr, other_value_or_None)`` produces the new attribute.
        """
        joined = self.vertices.leftOuterJoin(other)
        vertices = joined.map(
            lambda kv: (kv[0], func(kv[0], kv[1][0], kv[1][1]))
        )
        return Graph(vertices, self.edges)

    def joinVertices(
        self, other: RDD, func: Callable[[Any, Any, Any], Any]
    ) -> "Graph":
        """Like :meth:`outerJoinVertices` but keeps attributes unmatched."""
        return self.outerJoinVertices(
            other,
            lambda vid, attr, opt: attr if opt is None else func(vid, attr, opt),
        )

    # ------------------------------------------------------------------
    # Graph-parallel aggregation
    # ------------------------------------------------------------------

    def aggregateMessages(
        self,
        send: Callable[[EdgeContext], None],
        merge: Callable[[Any, Any], Any],
    ) -> RDD:
        """Run *send* over every triplet; merge per-vertex messages.

        Returns an RDD of ``(vertex_id, merged_message)`` containing only
        vertices that received at least one message -- GraphX semantics.
        """

        def emit(part: List[EdgeTriplet]) -> List[Tuple[Any, Any]]:
            out: List[Tuple[Any, Any]] = []
            for triplet in part:
                context = EdgeContext(triplet)
                send(context)
                out.extend(context._messages)
            return out

        messages = self.triplets().mapPartitions(emit)
        return messages.reduceByKey(merge)

    def __repr__(self) -> str:
        return "Graph(vertices=%d, edges=%d)" % (
            self.num_vertices(),
            self.num_edges(),
        )
