"""GraphX: graph-parallel processing over RDDs.

Implements the abstraction the paper's graph-processing systems (S2X,
Kassaie's subgraph matcher, Spar(k)ql) are built on: a property graph of
vertex and edge RDDs, triplets, ``aggregateMessages`` with send/merge
functions, Pregel supersteps, and the stock algorithms the paper mentions
GraphX shipping with (PageRank, connected components, triangle counting,
shortest paths).
"""

from repro.spark.graphx.graph import Edge, EdgeContext, EdgeTriplet, Graph
from repro.spark.graphx.pregel import pregel
from repro.spark.graphx.lib import (
    connected_components,
    connected_components_pregel,
    pagerank,
    shortest_paths,
    shortest_paths_pregel,
    triangle_count,
)

__all__ = [
    "Edge",
    "EdgeContext",
    "EdgeTriplet",
    "Graph",
    "connected_components",
    "connected_components_pregel",
    "pagerank",
    "pregel",
    "shortest_paths",
    "shortest_paths_pregel",
    "triangle_count",
]
