"""The stock graph algorithms the paper credits GraphX with shipping:
PageRank, triangle counting, shortest paths, plus connected components.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.spark.graphx.graph import Graph


def pagerank(
    graph: Graph,
    num_iterations: int = 10,
    reset_probability: float = 0.15,
    handle_dangling: bool = False,
) -> Dict[Any, float]:
    """Iterative PageRank; returns {vertex_id: rank}.

    Ranks are normalized so they sum to the number of vertices, matching
    GraphX's convention (each rank starts at 1.0).  By default dangling
    vertices (no out-edges) leak their rank mass, exactly like GraphX's
    classic implementation; with ``handle_dangling`` the mass is
    redistributed uniformly, matching the textbook (and networkx) model.
    """
    out_degrees = dict(graph.out_degrees().collect())
    vertex_ids = [vid for vid, _attr in graph.vertices.collect()]
    n = len(vertex_ids)
    if n == 0:
        return {}
    ranks = {vid: 1.0 for vid in vertex_ids}
    edges = graph.edges.collect()
    for _iteration in range(num_iterations):
        contributions: Dict[Any, float] = {vid: 0.0 for vid in vertex_ids}
        for edge in edges:
            degree = out_degrees.get(edge.src, 0)
            if degree:
                contributions[edge.dst] += ranks[edge.src] / degree
        dangling_share = 0.0
        if handle_dangling:
            dangling_mass = sum(
                ranks[vid]
                for vid in vertex_ids
                if not out_degrees.get(vid)
            )
            dangling_share = dangling_mass / n
        ranks = {
            vid: reset_probability
            + (1.0 - reset_probability)
            * (contributions[vid] + dangling_share)
            for vid in vertex_ids
        }
    return ranks


def connected_components_pregel(
    graph: Graph, max_iterations: int = 50
) -> Dict[Any, Any]:
    """Connected components as a true Pregel computation.

    Vertices propagate the minimum id they have seen along (undirected)
    edges until no label changes -- the message-passing formulation GraphX
    itself uses.  Results match :func:`connected_components`.
    """
    from repro.spark.graphx.pregel import pregel

    # Make edges bidirectional so components ignore direction.
    both_ways = graph.edges.flatMap(
        lambda e: [e, type(e)(e.dst, e.src, e.attr)]
    )
    undirected = Graph(graph.vertices, both_ways)
    labelled = undirected.mapVertices(lambda vid, attr: vid)

    def vprog(vid, attr, message):
        if message is None:
            return attr
        return min(attr, message)

    def send(ctx):
        if ctx.src_attr < ctx.dst_attr:
            ctx.send_to_dst(ctx.src_attr)

    result = pregel(
        labelled,
        initial_message=None,
        vprog=vprog,
        send=send,
        merge=min,
        max_iterations=max_iterations,
    )
    return dict(result.vertices.collect())


def shortest_paths_pregel(
    graph: Graph, landmarks: List[Any], max_iterations: int = 50
) -> Dict[Any, Dict[Any, int]]:
    """Landmark hop distances as a Pregel computation (directed).

    Vertex state maps landmark -> best-known distance; distances flow
    against edge direction (a vertex is close to a landmark when its
    successor is).  Results match :func:`shortest_paths`.
    """
    from repro.spark.graphx.pregel import pregel

    landmark_set = set(landmarks)
    reverse = graph.reverse()
    seeded = reverse.mapVertices(
        lambda vid, attr: {vid: 0} if vid in landmark_set else {}
    )

    def merge(a, b):
        out = dict(a)
        for landmark, distance in b.items():
            if landmark not in out or distance < out[landmark]:
                out[landmark] = distance
        return out

    def vprog(vid, attr, message):
        if message is None:
            return attr
        return merge(attr, message)

    def send(ctx):
        candidate = {
            landmark: distance + 1
            for landmark, distance in ctx.src_attr.items()
        }
        improved = {
            landmark: distance
            for landmark, distance in candidate.items()
            if landmark not in ctx.dst_attr
            or distance < ctx.dst_attr[landmark]
        }
        if improved:
            ctx.send_to_dst(improved)

    result = pregel(
        seeded,
        initial_message=None,
        vprog=vprog,
        send=send,
        merge=merge,
        max_iterations=max_iterations,
    )
    return dict(result.vertices.collect())


def connected_components(graph: Graph) -> Dict[Any, Any]:
    """Label propagation of the minimum reachable vertex id (undirected).

    Vertex ids must be mutually comparable; returns {vertex_id: component}.
    """
    labels = {vid: vid for vid, _attr in graph.vertices.collect()}
    edges = [(e.src, e.dst) for e in graph.edges.collect()]
    changed = True
    while changed:
        changed = False
        for src, dst in edges:
            low = min(labels[src], labels[dst])
            if labels[src] != low:
                labels[src] = low
                changed = True
            if labels[dst] != low:
                labels[dst] = low
                changed = True
    return labels


def triangle_count(graph: Graph) -> Dict[Any, int]:
    """Number of triangles through each vertex (undirected, deduplicated)."""
    neighbours: Dict[Any, set] = {}
    for edge in graph.edges.collect():
        if edge.src == edge.dst:
            continue
        neighbours.setdefault(edge.src, set()).add(edge.dst)
        neighbours.setdefault(edge.dst, set()).add(edge.src)
    counts = {vid: 0 for vid, _attr in graph.vertices.collect()}
    for vertex, adjacent in neighbours.items():
        for other in adjacent:
            if repr(other) <= repr(vertex):
                continue
            common = adjacent & neighbours.get(other, set())
            for third in common:
                if repr(third) > repr(other):
                    counts[vertex] += 1
                    counts[other] += 1
                    counts[third] += 1
    return counts


def shortest_paths(
    graph: Graph, landmarks: List[Any], max_iterations: int = 50
) -> Dict[Any, Dict[Any, int]]:
    """Hop distances from every vertex to each landmark (directed).

    Returns {vertex_id: {landmark: distance}} with unreachable landmarks
    absent, mirroring GraphX's ShortestPaths.
    """
    landmark_set = set(landmarks)
    distances: Dict[Any, Dict[Any, int]] = {
        vid: ({vid: 0} if vid in landmark_set else {})
        for vid, _attr in graph.vertices.collect()
    }
    reverse_edges = [(e.dst, e.src) for e in graph.edges.collect()]
    for _iteration in range(max_iterations):
        changed = False
        for dst, src in reverse_edges:
            for landmark, distance in distances[dst].items():
                candidate = distance + 1
                best = distances[src].get(landmark)
                if best is None or candidate < best:
                    distances[src][landmark] = candidate
                    changed = True
        if not changed:
            break
    return distances
