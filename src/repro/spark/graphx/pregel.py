"""Pregel: bulk-synchronous vertex programs on top of aggregateMessages.

The iterative "exchange messages until match sets stop changing" loops of
S2X and Spar(k)ql are Pregel computations; this module provides the loop.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.spark.graphx.graph import EdgeContext, Graph


def pregel(
    graph: Graph,
    initial_message: Any,
    vprog: Callable[[Any, Any, Any], Any],
    send: Callable[[EdgeContext], None],
    merge: Callable[[Any, Any], Any],
    max_iterations: int = 20,
) -> Graph:
    """Run a Pregel computation and return the final graph.

    Semantics follow GraphX:

    1. Every vertex first runs ``vprog(id, attr, initial_message)``.
    2. Each superstep evaluates *send* on every triplet (the send function
       sees current attributes and may message either endpoint), merges
       messages per vertex with *merge*, then applies *vprog* to the
       vertices that received messages.
    3. The loop stops when no messages were produced or after
       *max_iterations* supersteps.
    """
    current = graph.mapVertices(
        lambda vid, attr: vprog(vid, attr, initial_message)
    )
    for _superstep in range(max_iterations):
        messages = current.aggregateMessages(send, merge).cache()
        if messages.isEmpty():
            break
        current = current.joinVertices(
            messages, lambda vid, attr, msg: vprog(vid, attr, msg)
        )
        current.vertices.cache()
    return current


def iterate_until_fixpoint(
    graph: Graph,
    step: Callable[[Graph], Optional[Graph]],
    max_iterations: int = 50,
) -> Graph:
    """Apply *step* until it returns ``None`` (converged) or the cap hits.

    A convenience wrapper for systems whose iteration doesn't fit the strict
    Pregel mold (e.g. S2X's validation rounds, which inspect global change
    counts between supersteps).
    """
    current = graph
    for _iteration in range(max_iterations):
        next_graph = step(current)
        if next_graph is None:
            return current
        current = next_graph
    return current
