"""Broadcast variables.

A broadcast ships one read-only value to every virtual executor.  The cost
model charges ``num_executors`` copies of the value's estimated size, which
is what makes the broadcast-vs-partitioned join trade-off studied by the
hybrid system (Naacke et al., Section IV-A3 of the paper) measurable.
"""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.spark.metrics import estimate_size

T = TypeVar("T")


class Broadcast(Generic[T]):
    """A read-only value replicated to every executor.

    Access the payload through :attr:`value`, mirroring PySpark.
    """

    def __init__(self, ctx, value: T, broadcast_id: int) -> None:
        self._value = value
        self.id = broadcast_id
        num_records = len(value) if hasattr(value, "__len__") else 1
        nbytes = estimate_size(value) * ctx.num_executors
        ctx.metrics.record_broadcast(num_records, nbytes)

    @property
    def value(self) -> T:
        return self._value

    def __repr__(self) -> str:
        return "Broadcast(id=%d)" % self.id
