"""A deterministic, in-process reimplementation of the Apache Spark data model.

This package provides the substrate every surveyed system in the paper runs
on: RDDs with lineage and custom partitioners, shuffles with traffic
accounting, DataFrames with columnar partitions, a Spark-SQL engine with a
Catalyst-style optimizer, a GraphX-style Pregel engine, and a
GraphFrames-style motif matcher.

It is *not* a distributed system: partitions are plain Python lists and the
"cluster" is simulated by mapping partitions onto virtual executors.  What it
does preserve is everything the paper's assessment depends on -- which
records move across executors during a shuffle, how many comparisons a join
performs, how much data a broadcast ships, and how partition placement
interacts with query shape.
"""

from repro.spark.broadcast import Broadcast
from repro.spark.context import SparkContext
from repro.spark.dataframe import DataFrame
from repro.spark.faults import (
    FaultRule,
    FaultScheduler,
    FaultSpecError,
    TaskFailedError,
)
from repro.spark.metrics import MetricsCollector, MetricsSnapshot
from repro.spark.partitioner import (
    HashPartitioner,
    Partitioner,
    RangePartitioner,
)
from repro.spark.rdd import RDD
from repro.spark.row import Row
from repro.spark.sql.session import SparkSession
from repro.spark.tracing import (
    Span,
    Tracer,
    render_trace,
    trace_from_json,
    trace_to_json,
    trace_totals,
)

__all__ = [
    "Broadcast",
    "DataFrame",
    "FaultRule",
    "FaultScheduler",
    "FaultSpecError",
    "HashPartitioner",
    "MetricsCollector",
    "MetricsSnapshot",
    "Partitioner",
    "RDD",
    "RangePartitioner",
    "Row",
    "Span",
    "SparkContext",
    "SparkSession",
    "TaskFailedError",
    "Tracer",
    "render_trace",
    "trace_from_json",
    "trace_to_json",
    "trace_totals",
]
