"""DataFrames: distributed collections organized into named columns.

The paper (Section III) credits DataFrames with two properties the RDD API
lacks: schema knowledge enabling "much more efficient data encoding than
java serialization", and a cost-based choice between broadcast and
partitioned joins.  Both are implemented here: :meth:`DataFrame.storage_bytes`
exposes the dictionary-encoded columnar footprint the compression claim is
about, and :meth:`DataFrame.join` picks a broadcast join automatically when
the build side fits under the session's ``autoBroadcastJoinThreshold``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.spark.column import (
    Alias,
    ColumnRef,
    Expression,
    col,
    output_name,
)
from repro.spark.metrics import estimate_size
from repro.spark.rdd import RDD
from repro.spark.row import Row

ColumnLike = Union[str, Expression]


def _as_expr(column: ColumnLike) -> Expression:
    return col(column) if isinstance(column, str) else column


class DataFrame:
    """An immutable table: an RDD of value tuples plus column names."""

    def __init__(self, session, rdd: RDD, columns: Sequence[str]) -> None:
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names: %r" % (columns,))
        self.session = session
        self._rdd = rdd
        self.columns: List[str] = list(columns)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @property
    def rdd(self) -> RDD:
        """The underlying RDD of row tuples."""
        return self._rdd

    @property
    def ctx(self):
        return self.session.ctx

    def _with(self, rdd: RDD, columns: Sequence[str]) -> "DataFrame":
        return DataFrame(self.session, rdd, columns)

    def _row_dict(self, values: Tuple[Any, ...]) -> Dict[str, Any]:
        return dict(zip(self.columns, values))

    def _require_columns(self, names: Iterable[str]) -> None:
        missing = [n for n in names if n not in self.columns]
        if missing:
            raise KeyError(
                "columns %r not in schema %r" % (missing, self.columns)
            )

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------

    def select(self, *columns: ColumnLike) -> "DataFrame":
        """Project to the given columns / expressions."""
        exprs = [_as_expr(c) for c in columns]
        names = []
        for i, expr in enumerate(exprs):
            names.append(output_name(expr, default="_c%d" % i))
        if len(set(names)) != len(names):
            raise ValueError("duplicate output columns in select: %r" % names)
        source_columns = self.columns

        def project(part: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
            out = []
            for values in part:
                row = dict(zip(source_columns, values))
                out.append(tuple(expr.eval(row) for expr in exprs))
            return out

        return self._with(self._rdd.mapPartitions(project), names)

    def where(self, condition: Expression) -> "DataFrame":
        """Keep rows satisfying *condition*."""
        self._require_columns(condition.references())
        source_columns = self.columns

        def keep(values: Tuple[Any, ...]) -> bool:
            return bool(condition.eval(dict(zip(source_columns, values))))

        return self._with(self._rdd.filter(keep), self.columns)

    filter = where

    def withColumn(self, name: str, expr: Expression) -> "DataFrame":
        """Add (or replace) a column computed from *expr*."""
        source_columns = self.columns
        if name in self.columns:
            index = self.columns.index(name)

            def replace(values: Tuple[Any, ...]) -> Tuple[Any, ...]:
                row = dict(zip(source_columns, values))
                out = list(values)
                out[index] = expr.eval(row)
                return tuple(out)

            return self._with(self._rdd.map(replace), self.columns)

        def append(values: Tuple[Any, ...]) -> Tuple[Any, ...]:
            row = dict(zip(source_columns, values))
            return values + (expr.eval(row),)

        return self._with(self._rdd.map(append), self.columns + [name])

    def withColumnRenamed(self, old: str, new: str) -> "DataFrame":
        self._require_columns([old])
        names = [new if c == old else c for c in self.columns]
        return self._with(self._rdd, names)

    def drop(self, *names: str) -> "DataFrame":
        keep = [c for c in self.columns if c not in names]
        indices = [self.columns.index(c) for c in keep]
        return self._with(
            self._rdd.map(lambda values: tuple(values[i] for i in indices)),
            keep,
        )

    def distinct(self) -> "DataFrame":
        return self._with(self._rdd.distinct(), self.columns)

    def union(self, other: "DataFrame") -> "DataFrame":
        if len(other.columns) != len(self.columns):
            raise ValueError(
                "union needs same arity: %r vs %r"
                % (self.columns, other.columns)
            )
        return self._with(self._rdd.union(other._rdd), self.columns)

    def limit(self, n: int) -> "DataFrame":
        taken = self._rdd.take(n)
        return self._with(self.ctx.parallelize(taken, 1), self.columns)

    def orderBy(
        self,
        *columns: ColumnLike,
        ascending: Union[bool, Sequence[bool]] = True,
    ) -> "DataFrame":
        exprs = [_as_expr(c) for c in columns]
        if isinstance(ascending, bool):
            directions = [ascending] * len(exprs)
        else:
            directions = list(ascending)
        source_columns = self.columns

        # Multi-direction sorts need a single comparable key; invert
        # numeric keys for descending components, otherwise sort twice
        # (stable) from the least significant key.
        def sort_key(values: Tuple[Any, ...]):
            row = dict(zip(source_columns, values))
            return tuple(expr.eval(row) for expr in exprs)

        rows = self._rdd.collect()
        for position in range(len(exprs) - 1, -1, -1):
            expr = exprs[position]
            direction = directions[position]

            def key_at(values, expr=expr):
                row = dict(zip(source_columns, values))
                value = expr.eval(row)
                return (value is None, value)

            rows.sort(key=key_at, reverse=not direction)
        return self._with(
            self.ctx.parallelize(rows, self._rdd.num_partitions), self.columns
        )

    sort = orderBy

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------

    def join(
        self,
        other: "DataFrame",
        on: Union[str, Sequence[str]],
        how: str = "inner",
        hint: Optional[str] = None,
    ) -> "DataFrame":
        """Equi-join on shared column names.

        Strategy selection mirrors Spark: a ``broadcast`` hint forces a
        map-side join; otherwise the build side is broadcast when its
        estimated size is below the session's ``autoBroadcastJoinThreshold``
        (and the join is inner); else a partitioned (shuffle) join runs.
        """
        keys = [on] if isinstance(on, str) else list(on)
        self._require_columns(keys)
        other._require_columns(keys)
        left_rest = [c for c in self.columns if c not in keys]
        right_rest = [c for c in other.columns if c not in keys]
        overlap = set(left_rest) & set(right_rest)
        if overlap:
            raise ValueError(
                "ambiguous non-join columns %r; rename before joining"
                % sorted(overlap)
            )
        out_columns = keys + left_rest + right_rest

        left_key_idx = [self.columns.index(k) for k in keys]
        left_rest_idx = [self.columns.index(c) for c in left_rest]
        right_key_idx = [other.columns.index(k) for k in keys]
        right_rest_idx = [other.columns.index(c) for c in right_rest]

        left_pairs = self._rdd.map(
            lambda v: (
                tuple(v[i] for i in left_key_idx),
                tuple(v[i] for i in left_rest_idx),
            )
        )
        right_pairs = other._rdd.map(
            lambda v: (
                tuple(v[i] for i in right_key_idx),
                tuple(v[i] for i in right_rest_idx),
            )
        )

        use_broadcast = hint == "broadcast"
        if hint is None and how == "inner":
            threshold = self.session.autoBroadcastJoinThreshold
            if threshold is not None and other._estimated_bytes() <= threshold:
                use_broadcast = True

        tracer = self.ctx.tracer
        if tracer.enabled:
            with tracer.span(
                "join",
                name="broadcast" if use_broadcast else "partitioned",
                on=",".join(keys),
                how=how,
            ):
                joined = self._joined_pairs(
                    left_pairs, right_pairs, use_broadcast, how
                )
                joined.cache()
                joined.count()
        else:
            joined = self._joined_pairs(
                left_pairs, right_pairs, use_broadcast, how
            )

        n_left = len(left_rest)
        n_right = len(right_rest)

        def assemble(item: Tuple[Any, Tuple[Any, Any]]) -> Tuple[Any, ...]:
            key, (left_values, right_values) = item
            left_values = left_values if left_values is not None else (None,) * n_left
            right_values = right_values if right_values is not None else (None,) * n_right
            return tuple(key) + tuple(left_values) + tuple(right_values)

        return self._with(joined.map(assemble), out_columns)

    def _joined_pairs(
        self, left_pairs: RDD, right_pairs: RDD, use_broadcast: bool, how: str
    ) -> RDD:
        """Run the selected join strategy over keyed pair RDDs."""
        if use_broadcast:
            if how != "inner":
                raise ValueError("broadcast join supports only inner joins")
            joined = left_pairs.broadcastJoin(right_pairs)
            self.ctx.metrics.incr("broadcast_joins")
        else:
            method = {
                "inner": left_pairs.join,
                "left": left_pairs.leftOuterJoin,
                "right": left_pairs.rightOuterJoin,
                "outer": left_pairs.fullOuterJoin,
            }.get(how)
            if method is None:
                raise ValueError("unknown join type %r" % how)
            joined = method(right_pairs)
            self.ctx.metrics.incr("partitioned_joins")
        return joined

    def crossJoin(self, other: "DataFrame") -> "DataFrame":
        """Cartesian product (the inefficiency Section IV-A3 warns about)."""
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise ValueError(
                "ambiguous columns %r in crossJoin" % sorted(overlap)
            )
        product = self._rdd.cartesian(other._rdd)
        return self._with(
            product.map(lambda pair: tuple(pair[0]) + tuple(pair[1])),
            self.columns + other.columns,
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def groupBy(self, *columns: str) -> "GroupedData":
        self._require_columns(columns)
        return GroupedData(self, list(columns))

    # ------------------------------------------------------------------
    # Actions & introspection
    # ------------------------------------------------------------------

    def collect(self) -> List[Row]:
        return [Row(self.columns, values) for values in self._rdd.collect()]

    def count(self) -> int:
        return self._rdd.count()

    def take(self, n: int) -> List[Row]:
        return [Row(self.columns, values) for values in self._rdd.take(n)]

    def first(self) -> Row:
        return Row(self.columns, self._rdd.first())

    def isEmpty(self) -> bool:
        return self._rdd.isEmpty()

    def cache(self) -> "DataFrame":
        self._rdd.cache()
        return self

    def show(self, n: int = 20) -> str:
        """Render the first *n* rows as an ASCII table (returned, not printed)."""
        rows = self._rdd.take(n)
        cells = [[str(v) for v in values] for values in rows]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells])
            for i, name in enumerate(self.columns)
        ]
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        header = "|" + "|".join(
            " %s " % name.ljust(widths[i]) for i, name in enumerate(self.columns)
        ) + "|"
        body = [
            "|" + "|".join(
                " %s " % row[i].ljust(widths[i]) for i in range(len(widths))
            ) + "|"
            for row in cells
        ]
        return "\n".join([sep, header, sep] + body + [sep])

    def _estimated_bytes(self) -> int:
        """Row-format size estimate used by the broadcast threshold."""
        return sum(
            estimate_size(values) for values in self._rdd.collect()
        )

    def storage_bytes(self, columnar: bool = True) -> int:
        """Estimated in-memory footprint.

        ``columnar=False`` charges each row tuple independently, like RDD
        storage of deserialized records.  ``columnar=True`` models Spark's
        columnar compression: per column, each distinct value is stored
        once in a dictionary plus a fixed-width (4-byte) code per row --
        the mechanism behind the paper's "up to 10 times larger data sets
        than RDD" observation.
        """
        rows = self._rdd.collect()
        if not columnar:
            return sum(estimate_size(values) for values in rows)
        total = 0
        for index in range(len(self.columns)):
            distinct = {values[index] for values in rows}
            total += sum(estimate_size(v) for v in distinct)
            total += 4 * len(rows)
        return total

    def __repr__(self) -> str:
        return "DataFrame(columns=%r)" % (self.columns,)


_AGG_FUNCS: Dict[str, Callable[[List[Any]], Any]] = {
    "count": len,
    "sum": sum,
    "min": min,
    "max": max,
    "avg": lambda vs: sum(vs) / len(vs) if vs else None,
    "count_distinct": lambda vs: len(set(vs)),
}


class GroupedData:
    """Result of :meth:`DataFrame.groupBy`, awaiting an aggregation."""

    def __init__(self, df: DataFrame, keys: List[str]) -> None:
        self._df = df
        self._keys = keys

    def count(self) -> DataFrame:
        return self.agg(("count", self._keys[0] if self._keys else "*", "count"))

    def agg(self, *specs: Tuple[str, str, str]) -> DataFrame:
        """Aggregate with (function, column, output-name) triples.

        Functions: count, sum, min, max, avg, count_distinct.  The column
        ``"*"`` is allowed for count.
        """
        df = self._df
        keys = self._keys
        key_idx = [df.columns.index(k) for k in keys]
        value_idx = []
        for func, column, _alias in specs:
            if func not in _AGG_FUNCS:
                raise ValueError("unknown aggregate %r" % func)
            if column == "*":
                value_idx.append(None)
            else:
                df._require_columns([column])
                value_idx.append(df.columns.index(column))

        pairs = df._rdd.map(
            lambda values: (
                tuple(values[i] for i in key_idx),
                [
                    [values[i] if i is not None else 1]
                    for i in value_idx
                ],
            )
        )
        merged = pairs.reduceByKey(
            lambda a, b: [av + bv for av, bv in zip(a, b)]
        )

        funcs = [_AGG_FUNCS[func] for func, _c, _a in specs]

        def finish(item: Tuple[Tuple[Any, ...], List[List[Any]]]):
            key, value_lists = item
            return tuple(key) + tuple(
                func(values) for func, values in zip(funcs, value_lists)
            )

        out_columns = keys + [alias for _f, _c, alias in specs]
        return df._with(merged.map(finish), out_columns)
