"""Row: a named tuple of column values, mirroring ``pyspark.sql.Row``."""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence, Tuple


class Row:
    """An immutable record with named fields.

    Supports access by field name (``row["s"]``, ``row.s``) and by position
    (``row[0]``), equality by (fields, values), and conversion to a dict.
    """

    __slots__ = ("_fields", "_values")

    def __init__(self, fields: Sequence[str], values: Sequence[Any]) -> None:
        if len(fields) != len(values):
            raise ValueError(
                "Row needs as many values as fields: %r vs %r" % (fields, values)
            )
        object.__setattr__(self, "_fields", tuple(fields))
        object.__setattr__(self, "_values", tuple(values))

    @classmethod
    def fromDict(cls, mapping: Dict[str, Any]) -> "Row":
        return cls(tuple(mapping.keys()), tuple(mapping.values()))

    @property
    def fields(self) -> Tuple[str, ...]:
        return self._fields

    @property
    def values(self) -> Tuple[Any, ...]:
        return self._values

    def __getitem__(self, key: object) -> Any:
        if isinstance(key, int):
            return self._values[key]
        if isinstance(key, str):
            try:
                return self._values[self._fields.index(key)]
            except ValueError:
                raise KeyError(key) from None
        raise TypeError("Row indices must be int or str, not %r" % type(key))

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            # Guard against recursion while the slots are still unset
            # (pickle probes dunders before __init__ has run).
            raise AttributeError(name)
        try:
            return self._values[self._fields.index(name)]
        except ValueError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Row is immutable")

    def __reduce__(self):
        return (Row, (self._fields, self._values))

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def __contains__(self, key: str) -> bool:
        return key in self._fields

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def asDict(self) -> Dict[str, Any]:
        return dict(zip(self._fields, self._values))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Row)
            and self._fields == other._fields
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._fields, self._values))

    def __repr__(self) -> str:
        pairs = ", ".join(
            "%s=%r" % (f, v) for f, v in zip(self._fields, self._values)
        )
        return "Row(%s)" % pairs
