"""The RDF data model and serializations (Section II-A of the paper).

Terms (URIs, literals, blank nodes), triples over
``(U ∪ B) × U × (U ∪ L ∪ B)``, an indexed in-memory graph, N-Triples and
Turtle (subset) parsers, RDFS entailment, and the string-to-integer
dictionary encoding HAQWA applies before distribution.
"""

from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triple import Triple, TripleValidityError
from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import Namespace, NamespaceManager
from repro.rdf.vocab import RDF, RDFS, XSD
from repro.rdf.encoding import Dictionary, EncodedTriple
from repro.rdf.ntriples import (
    NTriplesParseError,
    parse_ntriples,
    serialize_ntriples,
)
from repro.rdf.rdfs import RDFSReasoner

__all__ = [
    "BNode",
    "Dictionary",
    "EncodedTriple",
    "Literal",
    "NTriplesParseError",
    "Namespace",
    "NamespaceManager",
    "RDF",
    "RDFS",
    "RDFSReasoner",
    "RDFGraph",
    "Term",
    "Triple",
    "TripleValidityError",
    "URI",
    "XSD",
    "parse_ntriples",
    "serialize_ntriples",
]
