"""An indexed in-memory RDF graph.

This is the "local truth" every distributed engine is validated against:
it stores triples in SPO/POS/OSP hash indexes and answers single-pattern
lookups with any combination of bound positions.  It is also the loading
format -- engines ingest an :class:`RDFGraph` and build their own
distributed representation from it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.rdf.terms import Term, URI
from repro.rdf.triple import Triple
from repro.rdf.vocab import RDF

_Pattern = Tuple[Optional[Term], Optional[Term], Optional[Term]]


class RDFGraph:
    """A set of triples with three hash indexes for pattern lookups."""

    def __init__(self, triples: Optional[Iterable[Triple]] = None) -> None:
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = {}
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = {}
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = {}
        self._size = 0
        if triples:
            for triple in triples:
                self.add(triple)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, triple: Triple) -> bool:
        """Insert a triple; returns False when it was already present."""
        s, p, o = triple.as_tuple()
        objects = self._spo.setdefault(s, {}).setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._size += 1
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Insert many; returns how many were new."""
        return sum(1 for t in triples if self.add(t))

    def remove(self, triple: Triple) -> bool:
        """Delete a triple; returns False when it was absent."""
        s, p, o = triple.as_tuple()
        try:
            self._spo[s][p].remove(o)
        except KeyError:
            return False
        self._pos[p][o].discard(s)
        self._osp[o][s].discard(p)
        self._size -= 1
        return True

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __contains__(self, triple: Triple) -> bool:
        s, p, o = triple.as_tuple()
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        for s, predicates in self._spo.items():
            for p, objects in predicates.items():
                for o in objects:
                    yield Triple(s, p, o)

    def triples(self, pattern: _Pattern = (None, None, None)) -> Iterator[Triple]:
        """All triples matching *pattern*; ``None`` positions are wildcards.

        Uses the most selective index available for the bound positions.
        """
        s, p, o = pattern
        if s is not None and p is not None:
            objects = self._spo.get(s, {}).get(p, ())
            if o is not None:
                if o in objects:
                    yield Triple(s, p, o)
            else:
                for obj in objects:
                    yield Triple(s, p, obj)
        elif s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)
        elif s is not None:
            for pred, objects in self._spo.get(s, {}).items():
                for obj in objects:
                    yield Triple(s, pred, obj)
        elif p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)
        elif p is not None:
            for obj, subjects in self._pos.get(p, {}).items():
                for subj in subjects:
                    yield Triple(subj, p, obj)
        elif o is not None:
            for subj, predicates in self._osp.get(o, {}).items():
                for pred in predicates:
                    yield Triple(subj, pred, o)
        else:
            yield from iter(self)

    # ------------------------------------------------------------------
    # Vocabulary views & statistics
    # ------------------------------------------------------------------

    def subjects(self) -> Set[Term]:
        return set(self._spo.keys())

    def predicates(self) -> Set[Term]:
        return set(self._pos.keys())

    def objects(self) -> Set[Term]:
        return set(self._osp.keys())

    def predicate_counts(self) -> Dict[Term, int]:
        """Triples per predicate -- the statistic SPARQLGX and the
        GraphFrames system order joins with."""
        return {
            p: sum(len(subjects) for subjects in objects.values())
            for p, objects in self._pos.items()
        }

    def types_of(self, subject: Term) -> Set[Term]:
        """Classes the subject has via rdf:type."""
        return set(self._spo.get(subject, {}).get(RDF.type, ()))

    def instances_of(self, cls: URI) -> Set[Term]:
        return set(self._pos.get(RDF.type, {}).get(cls, ()))

    def classes(self) -> Set[Term]:
        return set(self._pos.get(RDF.type, {}).keys())

    def copy(self) -> "RDFGraph":
        return RDFGraph(iter(self))

    def to_list(self) -> List[Triple]:
        return sorted(iter(self))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RDFGraph) and set(iter(self)) == set(iter(other))

    def __repr__(self) -> str:
        return "RDFGraph(size=%d)" % self._size
