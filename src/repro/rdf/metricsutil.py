"""Size estimation for RDF terms (shared by encoding and benchmarks)."""

from __future__ import annotations

from repro.rdf.terms import BNode, Literal, Term, URI


def term_volume(term: Term) -> int:
    """Estimated serialized bytes of one term (N-Triples length)."""
    if isinstance(term, URI):
        return len(term.value) + 2
    if isinstance(term, BNode):
        return len(term.label) + 2
    if isinstance(term, Literal):
        size = len(term.lexical) + 2
        if term.datatype is not None:
            size += len(term.datatype.value) + 4
        if term.language is not None:
            size += len(term.language) + 1
        return size
    return len(repr(term))
