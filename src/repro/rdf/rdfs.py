"""RDFS entailment: the inference rules that generate implicit triples.

Section II-A: "RDF Schema is a vocabulary description language that
includes a set of inference rules used to generate new, implicit triples
from explicit ones."  Implemented rules (W3C RDF Semantics naming):

=======  ==========================================================
rdfs2    (p domain c), (s p o)            => (s type c)
rdfs3    (p range c),  (s p o), o is IRI  => (o type c)
rdfs5    (p subPropertyOf q), (q subPropertyOf r) => (p subPropertyOf r)
rdfs7    (p subPropertyOf q), (s p o)     => (s q o)
rdfs9    (c subClassOf d), (s type c)     => (s type d)
rdfs11   (c subClassOf d), (d subClassOf e) => (c subClassOf e)
=======  ==========================================================
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import BNode, URI
from repro.rdf.triple import Triple
from repro.rdf.vocab import RDF, RDFS


class RDFSReasoner:
    """Computes the RDFS closure of a graph to fixpoint.

    The closure is deterministic and monotone; ``materialize`` returns a
    *new* graph containing the input plus every derived triple.
    """

    RULES = ("rdfs2", "rdfs3", "rdfs5", "rdfs7", "rdfs9", "rdfs11")

    def __init__(self, enabled_rules: Iterable[str] = RULES) -> None:
        unknown = set(enabled_rules) - set(self.RULES)
        if unknown:
            raise ValueError("unknown RDFS rules: %r" % sorted(unknown))
        self.enabled = set(enabled_rules)

    def _apply_once(self, graph: RDFGraph) -> List[Triple]:
        """One round of all enabled rules; returns triples not yet present."""
        fresh: Set[Triple] = set()

        def derive(triple: Triple) -> None:
            if triple not in graph:
                fresh.add(triple)

        if "rdfs2" in self.enabled:
            for decl in graph.triples((None, RDFS.domain, None)):
                for usage in graph.triples((None, decl.subject, None)):
                    derive(Triple(usage.subject, RDF.type, decl.object))
        if "rdfs3" in self.enabled:
            for decl in graph.triples((None, RDFS.range, None)):
                for usage in graph.triples((None, decl.subject, None)):
                    if isinstance(usage.object, (URI, BNode)):
                        derive(Triple(usage.object, RDF.type, decl.object))
        if "rdfs5" in self.enabled:
            for first in graph.triples((None, RDFS.subPropertyOf, None)):
                for second in graph.triples(
                    (first.object, RDFS.subPropertyOf, None)
                ):
                    if first.subject != second.object:
                        derive(
                            Triple(
                                first.subject,
                                RDFS.subPropertyOf,
                                second.object,
                            )
                        )
        if "rdfs7" in self.enabled:
            for decl in graph.triples((None, RDFS.subPropertyOf, None)):
                if not isinstance(decl.object, URI):
                    continue
                for usage in graph.triples((None, decl.subject, None)):
                    derive(Triple(usage.subject, decl.object, usage.object))
        if "rdfs9" in self.enabled:
            for decl in graph.triples((None, RDFS.subClassOf, None)):
                for instance in graph.triples((None, RDF.type, decl.subject)):
                    derive(Triple(instance.subject, RDF.type, decl.object))
        if "rdfs11" in self.enabled:
            for first in graph.triples((None, RDFS.subClassOf, None)):
                for second in graph.triples(
                    (first.object, RDFS.subClassOf, None)
                ):
                    if first.subject != second.object:
                        derive(
                            Triple(
                                first.subject, RDFS.subClassOf, second.object
                            )
                        )
        return sorted(fresh)

    def materialize(self, graph: RDFGraph, max_rounds: int = 100) -> RDFGraph:
        """The RDFS closure as a new graph (input is not modified)."""
        closure = graph.copy()
        for _round in range(max_rounds):
            fresh = self._apply_once(closure)
            if not fresh:
                return closure
            for triple in fresh:
                closure.add(triple)
        raise RuntimeError(
            "RDFS closure did not converge in %d rounds" % max_rounds
        )

    def derived_triples(self, graph: RDFGraph) -> List[Triple]:
        """Only the implicit triples the closure adds."""
        closure = self.materialize(graph)
        return sorted(t for t in closure if t not in graph)
