"""RDF triples with the positional validity rules of Section II-A:
a triple is a tuple from ``(U ∪ B) × U × (U ∪ L ∪ B)``.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.rdf.terms import BNode, Literal, Term, URI


class TripleValidityError(ValueError):
    """Raised when a term appears in a position RDF forbids."""


class Triple:
    """An immutable (subject, predicate, object) statement."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Term, predicate: Term, obj: Term) -> None:
        if not isinstance(subject, (URI, BNode)):
            raise TripleValidityError(
                "subject must be a URI or blank node, got %r" % (subject,)
            )
        if not isinstance(predicate, URI):
            raise TripleValidityError(
                "predicate must be a URI, got %r" % (predicate,)
            )
        if not isinstance(obj, (URI, BNode, Literal)):
            raise TripleValidityError(
                "object must be a URI, blank node or literal, got %r" % (obj,)
            )
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "object", obj)

    def __setattr__(self, name, value):
        raise AttributeError("Triple is immutable")

    def __reduce__(self):
        # The raising __setattr__ breaks the default slots-state pickle
        # path; rebuild through the (validating) constructor instead.
        return (Triple, (self.subject, self.predicate, self.object))

    def as_tuple(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def __iter__(self) -> Iterator[Term]:
        return iter(self.as_tuple())

    def __getitem__(self, index: int) -> Term:
        return self.as_tuple()[index]

    def n3(self) -> str:
        return "%s %s %s ." % (
            self.subject.n3(),
            self.predicate.n3(),
            self.object.n3(),
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Triple) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __lt__(self, other: "Triple") -> bool:
        return self.as_tuple() < other.as_tuple()

    def __repr__(self) -> str:
        return "Triple(%r, %r, %r)" % self.as_tuple()
