"""Namespace helpers: prefix management and vocabulary construction."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.rdf.terms import URI


class Namespace:
    """A URI prefix from which terms are minted by attribute access.

    >>> FOAF = Namespace("http://xmlns.com/foaf/0.1/")
    >>> FOAF.knows
    URI('http://xmlns.com/foaf/0.1/knows')
    """

    def __init__(self, base: str) -> None:
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def term(self, local: str) -> URI:
        return URI(self._base + local)

    def __getattr__(self, local: str) -> URI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __getitem__(self, local: str) -> URI:
        return self.term(local)

    def __contains__(self, uri: URI) -> bool:
        return isinstance(uri, URI) and uri.value.startswith(self._base)

    def __repr__(self) -> str:
        return "Namespace(%r)" % self._base


class NamespaceManager:
    """Bidirectional prefix <-> namespace registry (Turtle, SPARQL, display)."""

    def __init__(self) -> None:
        self._by_prefix: Dict[str, str] = {}

    def bind(self, prefix: str, namespace: str) -> None:
        self._by_prefix[prefix] = namespace

    def expand(self, qname: str) -> URI:
        """Expand ``prefix:local`` to a URI."""
        if ":" not in qname:
            raise ValueError("not a prefixed name: %r" % qname)
        prefix, local = qname.split(":", 1)
        if prefix not in self._by_prefix:
            raise KeyError("unbound prefix %r" % prefix)
        return URI(self._by_prefix[prefix] + local)

    def shrink(self, uri: URI) -> Optional[str]:
        """The shortest ``prefix:local`` form of *uri*, if any prefix fits."""
        best: Optional[Tuple[int, str]] = None
        for prefix, namespace in self._by_prefix.items():
            if uri.value.startswith(namespace):
                local = uri.value[len(namespace) :]
                if "/" in local or "#" in local:
                    continue
                candidate = "%s:%s" % (prefix, local)
                if best is None or len(candidate) < best[0]:
                    best = (len(candidate), candidate)
        return best[1] if best else None

    def prefixes(self) -> Dict[str, str]:
        return dict(self._by_prefix)
