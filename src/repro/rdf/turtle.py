"""A Turtle subset: prefixes, ``a``, ``;``/``,`` lists, typed literals.

Enough of the grammar to write readable fixtures and example data; the
full-fidelity line format remains N-Triples.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Tuple

from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import NamespaceManager
from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triple import Triple
from repro.rdf.vocab import RDF, XSD


class TurtleParseError(ValueError):
    """Raised on Turtle text outside the supported subset."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<prefix_decl>@prefix)
  | (?P<uri><[^>]*>)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<double>[+-]?\d+\.\d+)
  | (?P<integer>[+-]?\d+)
  | (?P<boolean>true|false)
  | (?P<a_kw>\ba\b)
  | (?P<bnode>_:[A-Za-z0-9_]+)
  | (?P<pname>[A-Za-z_][\w\-]*?:[\w\-.]*)
  | (?P<pname_ns>[A-Za-z_][\w\-]*:)
  | (?P<word>[A-Za-z][A-Za-z0-9\-]*)
  | (?P<punct>[.;,\^@])
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise TurtleParseError(
                "cannot lex turtle at %r" % text[position : position + 30]
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    tokens.append(("eof", ""))
    return tokens


class _TurtleParser:
    def __init__(self, text: str) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.namespaces = NamespaceManager()
        self.graph = RDFGraph()

    def peek(self) -> Tuple[str, str]:
        return self.tokens[self.index]

    def advance(self) -> Tuple[str, str]:
        token = self.tokens[self.index]
        if token[0] != "eof":
            self.index += 1
        return token

    def expect_punct(self, value: str) -> None:
        kind, text = self.advance()
        if kind != "punct" or text != value:
            raise TurtleParseError("expected %r, found %r" % (value, text))

    def parse(self) -> RDFGraph:
        while self.peek()[0] != "eof":
            if self.peek()[0] == "prefix_decl":
                self._parse_prefix()
            else:
                self._parse_statement()
        return self.graph

    def _parse_prefix(self) -> None:
        self.advance()  # @prefix
        kind, text = self.advance()
        if kind == "pname_ns":
            prefix = text[:-1]
        elif kind == "pname" and text.endswith(":"):
            prefix = text[:-1]
        else:
            raise TurtleParseError("expected prefix name, found %r" % text)
        kind, text = self.advance()
        if kind != "uri":
            raise TurtleParseError("expected namespace URI, found %r" % text)
        self.namespaces.bind(prefix, text[1:-1])
        self.expect_punct(".")

    def _parse_statement(self) -> None:
        subject = self._parse_term(as_subject=True)
        while True:
            predicate = self._parse_predicate()
            while True:
                obj = self._parse_term(as_subject=False)
                self.graph.add(Triple(subject, predicate, obj))
                kind, text = self.peek()
                if kind == "punct" and text == ",":
                    self.advance()
                    continue
                break
            kind, text = self.peek()
            if kind == "punct" and text == ";":
                self.advance()
                # Trailing ';' before '.' is legal Turtle.
                kind, text = self.peek()
                if kind == "punct" and text == ".":
                    break
                continue
            break
        self.expect_punct(".")

    def _parse_predicate(self) -> URI:
        kind, text = self.advance()
        if kind == "a_kw":
            return RDF.type
        if kind == "uri":
            return URI(text[1:-1])
        if kind == "pname":
            term = self.namespaces.expand(text)
            return term
        raise TurtleParseError("expected predicate, found %r" % text)

    def _parse_term(self, as_subject: bool) -> Term:
        kind, text = self.advance()
        if kind == "uri":
            return URI(text[1:-1])
        if kind == "pname":
            return self.namespaces.expand(text)
        if kind == "bnode":
            return BNode(text[2:])
        if as_subject:
            raise TurtleParseError("invalid subject %r" % text)
        if kind == "string":
            lexical = text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            next_kind, next_text = self.peek()
            if next_kind == "punct" and next_text == "^":
                self.advance()
                self.expect_punct("^")
                dt_kind, dt_text = self.advance()
                if dt_kind == "uri":
                    return Literal(lexical, datatype=URI(dt_text[1:-1]))
                if dt_kind == "pname":
                    return Literal(lexical, datatype=self.namespaces.expand(dt_text))
                raise TurtleParseError("expected datatype after ^^")
            if next_kind == "punct" and next_text == "@":
                self.advance()
                lang_kind, lang_text = self.advance()
                return Literal(lexical, language=lang_text)
            return Literal(lexical)
        if kind == "integer":
            return Literal(int(text))
        if kind == "double":
            return Literal(float(text))
        if kind == "boolean":
            return Literal(text == "true")
        raise TurtleParseError("invalid object %r" % text)


def parse_turtle(text: str) -> RDFGraph:
    """Parse Turtle text into a graph."""
    return _TurtleParser(text).parse()


def serialize_turtle(
    triples: Iterable[Triple],
    namespaces: Optional[NamespaceManager] = None,
) -> str:
    """Serialize triples as Turtle, grouping predicates per subject."""
    manager = namespaces or NamespaceManager()

    def render(term: Term) -> str:
        if isinstance(term, URI):
            if term == RDF.type:
                return "a"
            short = manager.shrink(term)
            return short if short else term.n3()
        return term.n3()

    by_subject = {}
    for triple in sorted(triples):
        by_subject.setdefault(triple.subject, []).append(triple)
    lines: List[str] = []
    for prefix, namespace in sorted(manager.prefixes().items()):
        lines.append("@prefix %s: <%s> ." % (prefix, namespace))
    if lines:
        lines.append("")
    for subject in sorted(by_subject, key=lambda t: t.sort_key()):
        group = by_subject[subject]
        parts = [
            "%s %s" % (render(t.predicate), render(t.object)) for t in group
        ]
        lines.append("%s %s ." % (render(subject), " ;\n    ".join(parts)))
    return "\n".join(lines) + "\n"
