"""The RDF, RDFS and XSD vocabularies used throughout the reproduction."""

from __future__ import annotations

from repro.rdf.namespaces import Namespace
from repro.rdf import terms as _terms


class _RDF(Namespace):
    """The rdf: vocabulary; ``RDF.type`` is the typing property of II-A."""

    def __init__(self) -> None:
        super().__init__("http://www.w3.org/1999/02/22-rdf-syntax-ns#")


class _RDFS(Namespace):
    """The rdfs: vocabulary description language (inference rules)."""

    def __init__(self) -> None:
        super().__init__("http://www.w3.org/2000/01/rdf-schema#")


class _XSD(Namespace):
    def __init__(self) -> None:
        super().__init__("http://www.w3.org/2001/XMLSchema#")


RDF = _RDF()
RDFS = _RDFS()
XSD = _XSD()

# Re-export the literal datatypes terms.py already interned.
XSD_INTEGER = _terms._XSD_INTEGER
XSD_DOUBLE = _terms._XSD_DOUBLE
XSD_BOOLEAN = _terms._XSD_BOOLEAN
XSD_STRING = _terms._XSD_STRING
