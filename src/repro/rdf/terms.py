"""RDF terms: the three disjoint resource sets U (URIs), L (literals) and
B (blank nodes) of Section II-A, plus a total order so term collections can
be sorted deterministically (ORDER BY, range partitioning).
"""

from __future__ import annotations

from typing import Optional


class Term:
    """Base class for RDF terms.  Terms are immutable and hashable."""

    __slots__ = ()

    #: Sort rank between term kinds: blank nodes < URIs < literals.
    _kind_rank = 0

    def n3(self) -> str:
        """The term in N-Triples syntax."""
        raise NotImplementedError

    def sort_key(self):
        return (self._kind_rank, self._value_key())

    def _value_key(self):
        raise NotImplementedError

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


class URI(Term):
    """A URI reference (the set *U*)."""

    __slots__ = ("value",)
    _kind_rank = 1

    def __init__(self, value: str) -> None:
        if not value:
            raise ValueError("URI cannot be empty")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, val):
        raise AttributeError("URI is immutable")

    def __reduce__(self):
        # The raising __setattr__ breaks the default slots-state pickle
        # path; rebuild through the constructor instead.
        return (URI, (self.value,))

    def n3(self) -> str:
        return "<%s>" % self.value

    def local_name(self) -> str:
        """The fragment after the last '#' or '/', for display."""
        for separator in ("#", "/"):
            if separator in self.value:
                return self.value.rsplit(separator, 1)[1]
        return self.value

    def _value_key(self):
        return self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, URI) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("URI", self.value))

    def __repr__(self) -> str:
        return "URI(%r)" % self.value


class BNode(Term):
    """A blank node (the set *B*): an unknown constant or URI."""

    __slots__ = ("label",)
    _kind_rank = 0
    _counter = [0]

    def __init__(self, label: Optional[str] = None) -> None:
        if label is None:
            BNode._counter[0] += 1
            label = "b%d" % BNode._counter[0]
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, val):
        raise AttributeError("BNode is immutable")

    def __reduce__(self):
        # Pin the label so unpickling never consumes the fresh-label counter.
        return (BNode, (self.label,))

    def n3(self) -> str:
        return "_:%s" % self.label

    def _value_key(self):
        return self.label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BNode) and self.label == other.label

    def __hash__(self) -> int:
        return hash(("BNode", self.label))

    def __repr__(self) -> str:
        return "BNode(%r)" % self.label


class Literal(Term):
    """A literal (the set *L*): lexical form + optional datatype/language."""

    __slots__ = ("lexical", "datatype", "language")
    _kind_rank = 2

    def __init__(
        self,
        lexical: object,
        datatype: Optional[URI] = None,
        language: Optional[str] = None,
    ) -> None:
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot have both datatype and language")
        if isinstance(lexical, bool):
            datatype = datatype or _XSD_BOOLEAN
            lexical = "true" if lexical else "false"
        elif isinstance(lexical, int):
            datatype = datatype or _XSD_INTEGER
            lexical = str(lexical)
        elif isinstance(lexical, float):
            datatype = datatype or _XSD_DOUBLE
            lexical = repr(lexical)
        object.__setattr__(self, "lexical", str(lexical))
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name, val):
        raise AttributeError("Literal is immutable")

    def __reduce__(self):
        # Lexical form is stored as str, so the constructor's coercion
        # branches are no-ops and the round trip is exact.
        return (Literal, (self.lexical, self.datatype, self.language))

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return '"%s"@%s' % (escaped, self.language)
        if self.datatype:
            return '"%s"^^%s' % (escaped, self.datatype.n3())
        return '"%s"' % escaped

    def to_python(self):
        """The literal as a Python value when the datatype is numeric/bool."""
        if self.datatype == _XSD_INTEGER or self.datatype == _XSD_INT:
            return int(self.lexical)
        if self.datatype in (_XSD_DOUBLE, _XSD_DECIMAL, _XSD_FLOAT):
            return float(self.lexical)
        if self.datatype == _XSD_BOOLEAN:
            return self.lexical == "true"
        return self.lexical

    def _value_key(self):
        value = self.to_python()
        if isinstance(value, bool):
            return (0, int(value), "")
        if isinstance(value, (int, float)):
            return (1, float(value), "")
        return (2, 0.0, self.lexical)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.lexical, self.datatype, self.language))

    def __repr__(self) -> str:
        extra = ""
        if self.datatype:
            extra = ", datatype=%r" % self.datatype
        if self.language:
            extra = ", language=%r" % self.language
        return "Literal(%r%s)" % (self.lexical, extra)


# Module-level datatype URIs; repro.rdf.vocab re-exports them inside XSD.
_XSD = "http://www.w3.org/2001/XMLSchema#"
_XSD_INTEGER = URI(_XSD + "integer")
_XSD_INT = URI(_XSD + "int")
_XSD_DOUBLE = URI(_XSD + "double")
_XSD_FLOAT = URI(_XSD + "float")
_XSD_DECIMAL = URI(_XSD + "decimal")
_XSD_BOOLEAN = URI(_XSD + "boolean")
_XSD_STRING = URI(_XSD + "string")
