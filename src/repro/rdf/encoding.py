"""Dictionary encoding of RDF terms to integers.

HAQWA (Section IV-A1) "performs an encoding of string values to integer
ones on data, which minimizes data volume and makes processing more
efficient."  The :class:`Dictionary` assigns each distinct term a dense
integer id; :func:`encoded_volume_ratio` measures the volume reduction the
paper's claim is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.rdf.metricsutil import term_volume
from repro.rdf.terms import Term
from repro.rdf.triple import Triple


@dataclass(frozen=True)
class EncodedTriple:
    """A triple as three integer ids."""

    subject: int
    predicate: int
    object: int

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.subject, self.predicate, self.object)


class Dictionary:
    """Bidirectional term <-> dense integer id mapping.

    Ids are assigned in first-seen order, so encoding is deterministic for
    a fixed input order.
    """

    def __init__(self) -> None:
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Term] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def encode_term(self, term: Term) -> int:
        """The id for *term*, assigning a fresh one when unseen."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._id_to_term)
        self._term_to_id[term] = new_id
        self._id_to_term.append(term)
        return new_id

    def lookup_term(self, term: Term) -> int:
        """The id for *term*; raises KeyError when unseen."""
        return self._term_to_id[term]

    def decode_id(self, term_id: int) -> Term:
        return self._id_to_term[term_id]

    def __contains__(self, term: Term) -> bool:
        return term in self._term_to_id

    def encode(self, triple: Triple) -> EncodedTriple:
        return EncodedTriple(
            self.encode_term(triple.subject),
            self.encode_term(triple.predicate),
            self.encode_term(triple.object),
        )

    def decode(self, encoded: EncodedTriple) -> Triple:
        return Triple(
            self.decode_id(encoded.subject),
            self.decode_id(encoded.predicate),
            self.decode_id(encoded.object),
        )

    def encode_all(self, triples: Iterable[Triple]) -> List[EncodedTriple]:
        return [self.encode(t) for t in triples]

    def decode_all(self, encoded: Iterable[EncodedTriple]) -> List[Triple]:
        return [self.decode(e) for e in encoded]


def raw_volume(triples: Iterable[Triple]) -> int:
    """Estimated bytes of the string representation of *triples*."""
    return sum(
        term_volume(t.subject) + term_volume(t.predicate) + term_volume(t.object)
        for t in triples
    )


def encoded_volume(
    encoded: Iterable[EncodedTriple], dictionary: Dictionary
) -> int:
    """Estimated bytes of the encoded triples plus the dictionary itself."""
    triple_bytes = sum(3 * 4 for _ in encoded)
    dictionary_bytes = sum(
        term_volume(dictionary.decode_id(i)) + 4 for i in range(len(dictionary))
    )
    return triple_bytes + dictionary_bytes


def encoded_volume_ratio(triples: List[Triple]) -> float:
    """raw volume / encoded volume: >1 means the encoding shrank the data."""
    dictionary = Dictionary()
    encoded = dictionary.encode_all(triples)
    raw = raw_volume(triples)
    packed = encoded_volume(encoded, dictionary)
    return raw / packed if packed else 1.0
