"""N-Triples: line-oriented parsing and serialization.

The interchange format for loading data into engines (HDFS files in the
surveyed systems; local files or strings here).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, List, Optional, Union

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import BNode, Literal, Term, URI
from repro.rdf.triple import Triple


class NTriplesParseError(ValueError):
    """Raised with the offending line number and content."""

    def __init__(self, line_number: int, line: str, reason: str) -> None:
        super().__init__(
            "line %d: %s (in %r)" % (line_number, reason, line.strip())
        )
        self.line_number = line_number


_TERM_RE = re.compile(
    r"""
    \s*
    (?: <(?P<uri>[^>]*)>
      | _:(?P<bnode>[A-Za-z0-9_]+)
      | "(?P<lexical>(?:[^"\\]|\\.)*)"
        (?: \^\^<(?P<datatype>[^>]*)> | @(?P<lang>[A-Za-z0-9\-]+) )?
    )
    """,
    re.VERBOSE,
)

_UNESCAPES = {
    "\\n": "\n",
    "\\r": "\r",
    "\\t": "\t",
    '\\"': '"',
    "\\\\": "\\",
}


def _unescape(text: str) -> str:
    out = []
    index = 0
    while index < len(text):
        if text[index] == "\\" and index + 1 < len(text):
            pair = text[index : index + 2]
            if pair in _UNESCAPES:
                out.append(_UNESCAPES[pair])
                index += 2
                continue
            if pair == "\\u" and index + 6 <= len(text):
                out.append(chr(int(text[index + 2 : index + 6], 16)))
                index += 6
                continue
            if pair == "\\U" and index + 10 <= len(text):
                out.append(chr(int(text[index + 2 : index + 10], 16)))
                index += 10
                continue
        out.append(text[index])
        index += 1
    return "".join(out)


def _parse_term(
    line: str, position: int, line_number: int
) -> tuple:
    match = _TERM_RE.match(line, position)
    if match is None:
        raise NTriplesParseError(line_number, line, "expected a term")
    if match.group("uri") is not None:
        term: Term = URI(match.group("uri"))
    elif match.group("bnode") is not None:
        term = BNode(match.group("bnode"))
    else:
        lexical = _unescape(match.group("lexical"))
        datatype = match.group("datatype")
        lang = match.group("lang")
        term = Literal(
            lexical,
            datatype=URI(datatype) if datatype else None,
            language=lang,
        )
    return term, match.end()


def parse_ntriples_line(line: str, line_number: int = 1) -> Optional[Triple]:
    """Parse one line; returns None for blank lines and comments."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    subject, position = _parse_term(line, 0, line_number)
    predicate, position = _parse_term(line, position, line_number)
    obj, position = _parse_term(line, position, line_number)
    tail = line[position:].strip()
    if tail != ".":
        raise NTriplesParseError(line_number, line, "expected terminating '.'")
    try:
        return Triple(subject, predicate, obj)
    except ValueError as exc:
        raise NTriplesParseError(line_number, line, str(exc)) from exc


def iter_ntriples(lines: Iterable[str]) -> Iterator[Triple]:
    """Parse an iterable of lines, yielding triples."""
    for line_number, line in enumerate(lines, start=1):
        triple = parse_ntriples_line(line, line_number)
        if triple is not None:
            yield triple


def parse_ntriples(source: Union[str, Iterable[str]]) -> RDFGraph:
    """Parse N-Triples text (one string) or an iterable of lines."""
    if isinstance(source, str):
        source = source.splitlines()
    return RDFGraph(iter_ntriples(source))


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to N-Triples text (sorted for determinism)."""
    return "\n".join(t.n3() for t in sorted(triples)) + "\n"


def load_ntriples_file(path: str) -> RDFGraph:
    """Parse an N-Triples file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return RDFGraph(iter_ntriples(handle))


def save_ntriples_file(path: str, triples: Iterable[Triple]) -> int:
    """Write triples to *path*; returns the number written."""
    items: List[Triple] = sorted(triples)
    with open(path, "w", encoding="utf-8") as handle:
        for triple in items:
            handle.write(triple.n3())
            handle.write("\n")
    return len(items)
