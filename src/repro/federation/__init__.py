"""Federated subgraph harvesting (docs/FEDERATION.md).

A "remote" endpoint is a second in-process
:class:`~repro.server.service.QueryService` wrapped so that every
interaction crosses the JSON wire protocol (:class:`WireEndpoint`).  A
:class:`Subgraph` pages CONSTRUCT results out of it -- LIMIT/OFFSET over
the protocol's totally-ordered graph wire form, the shaclAPI harvesting
loop of SNIPPETS.md -- into a local
:class:`~repro.evolution.versioned.VersionedGraph` tagged with the
remote graph version it was harvested at.  A remote commit makes the
local cache *stale* (:meth:`Subgraph.is_stale`); :meth:`Subgraph.refresh`
re-harvests and records the delta as a local commit.

Remote-first validation (:func:`validate_remote_first`) harvests exactly
the triples a shape set's compiled queries touch and validates locally
-- byte-identical to validating against the remote directly
(the differential property ``tests/federation/test_subgraph.py`` pins).
"""

from repro.federation.endpoint import EndpointError, WireEndpoint
from repro.federation.subgraph import (
    DEFAULT_PAGE_SIZE,
    HarvestError,
    HarvestRecord,
    StaleSubgraphError,
    Subgraph,
    harvest_for_shapes,
    validate_remote_first,
)

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "EndpointError",
    "HarvestError",
    "HarvestRecord",
    "StaleSubgraphError",
    "Subgraph",
    "WireEndpoint",
    "harvest_for_shapes",
    "validate_remote_first",
]
