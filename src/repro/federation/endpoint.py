"""The wire-protocol boundary around a "remote" query service.

A :class:`WireEndpoint` wraps a :class:`~repro.server.service.QueryService`
so that *every* interaction -- queries, commits, stats -- round-trips
through :func:`~repro.server.protocol.decode_request` /
:func:`~repro.server.protocol.encode_response` as canonical JSON lines.
Nothing crosses as live Python objects: the harvester sees exactly what
a process on the other end of a socket would see, which is what makes
the in-process pairing an honest stand-in for a remote SPARQL endpoint.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.server.frontend import handle_request
from repro.server.protocol import (
    ProtocolError,
    canonical_json,
    decode_request,
    encode_response,
)
from repro.server.service import QueryService


class EndpointError(RuntimeError):
    """The endpoint returned a non-ok response to a required operation."""


class WireEndpoint:
    """An in-process endpoint that only speaks canonical wire lines."""

    def __init__(self, service: QueryService) -> None:
        self._service = service
        #: Wire-crossing request count (queries + commits + stats).
        self.requests = 0

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip through the wire encoding."""
        line = canonical_json(payload)
        try:
            decoded = decode_request(line)
        except ProtocolError as exc:
            raise EndpointError("bad request: %s" % exc) from exc
        self.requests += 1
        response_line = encode_response(
            handle_request(self._service, decoded)
        )
        return json.loads(response_line)

    def query(
        self,
        text: str,
        id: str = "",
        tenant: str = "federation",
        deadline: Optional[int] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "op": "query",
            "query": text,
            "id": id,
            "tenant": tenant,
        }
        if deadline is not None:
            payload["deadline"] = deadline
        return self.request(payload)

    def commit(
        self,
        additions: Sequence[str] = (),
        deletions: Sequence[str] = (),
    ) -> Dict[str, Any]:
        """Apply a change set of N-Triples lines; returns the response."""
        response = self.request(
            {
                "op": "commit",
                "additions": list(additions),
                "deletions": list(deletions),
            }
        )
        if response.get("status") != "ok":
            raise EndpointError(
                "commit failed: %s" % response.get("error", "unknown")
            )
        return response

    def stats(self) -> Dict[str, Any]:
        response = self.request({"op": "stats"})
        if response.get("status") != "ok":
            raise EndpointError(
                "stats failed: %s" % response.get("error", "unknown")
            )
        return response

    @property
    def version(self) -> int:
        """The remote graph version (one stats round trip)."""
        return int(self.stats()["version"])


def pair_endpoint(graph, **service_kwargs) -> WireEndpoint:
    """Build the paired in-process remote: a service behind the wire."""
    return WireEndpoint(QueryService(graph, **service_kwargs))
