"""The local subgraph cache: paged CONSTRUCT harvesting + staleness.

The harvesting loop is the shaclAPI pattern (SNIPPETS.md snippet 2):
append ``LIMIT page_size OFFSET n`` to a CONSTRUCT query and keep
requesting pages until the result is drained.  Two properties make the
loop *exact* here rather than best-effort:

* the protocol's graph wire form is totally ordered and sliced after
  sorting (stable paging, ``repro.server.protocol``), so pages at a
  fixed remote version are disjoint and exhaustive;
* every page response carries the remote graph ``version``; a version
  change between pages aborts and restarts the harvest, so a harvest
  never stitches two graph versions together.

Harvested triples land in a local
:class:`~repro.evolution.versioned.VersionedGraph` -- each harvest or
refresh is a local commit, so the cache has its own inspectable history.
The cache is tagged with the remote version it reflects:
:meth:`Subgraph.is_stale` compares against the live remote version, a
remote commit therefore *invalidates* the cache, and
:meth:`Subgraph.refresh` re-runs every recorded harvest and commits the
delta locally.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.evolution.versioned import Delta, VersionedGraph
from repro.federation.endpoint import WireEndpoint
from repro.rdf.graph import RDFGraph
from repro.rdf.ntriples import parse_ntriples
from repro.server.protocol import canonical_result
from repro.sparql.ast import ConstructQuery
from repro.sparql.parser import parse_sparql

#: Default triples per CONSTRUCT page (the shaclAPI ROW_LIMIT analogue).
DEFAULT_PAGE_SIZE = 32


class HarvestError(RuntimeError):
    """A harvest could not complete (rejected page, version churn...)."""


class StaleSubgraphError(HarvestError):
    """The remote committed since the last harvest; refresh() first."""


@dataclass(frozen=True)
class HarvestRecord:
    """Accounting for one completed harvest."""

    id: str
    text: str
    pages: int
    triples: int  # triples received over the wire
    new_triples: int  # triples not already in the local cache
    remote_version: int
    units: int  # remote service units billed across the pages

    def to_payload(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "pages": self.pages,
            "triples": self.triples,
            "new_triples": self.new_triples,
            "remote_version": self.remote_version,
            "units": self.units,
        }


class Subgraph:
    """A version-tagged local cache fed by paged CONSTRUCT harvests."""

    def __init__(
        self,
        endpoint: WireEndpoint,
        page_size: int = DEFAULT_PAGE_SIZE,
        tenant: str = "federation",
        deadline: Optional[int] = None,
        tracer=None,
        max_restarts: int = 2,
    ) -> None:
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        self.endpoint = endpoint
        self.page_size = page_size
        self.tenant = tenant
        self.deadline = deadline
        self.tracer = tracer
        self.max_restarts = max_restarts
        #: Local history: version 0 empty, one commit per harvest/refresh.
        self.versions = VersionedGraph()
        #: The remote graph version the cache reflects (None before any
        #: harvest).
        self.remote_version: Optional[int] = None
        #: (id, text) of every completed harvest, for refresh().
        self.harvests: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Reading the cache
    # ------------------------------------------------------------------

    def head(self) -> RDFGraph:
        """The current local graph (shared; copy before mutating)."""
        return self.versions.head()

    def __len__(self) -> int:
        return len(self.versions.head())

    def query(self, text: str) -> Dict[str, Any]:
        """Evaluate locally; returns the canonical wire payload."""
        from repro.sparql.algebra import evaluate

        plan = parse_sparql(text)
        return canonical_result(evaluate(plan, self.head()), plan)

    def is_stale(self) -> bool:
        """Has the remote committed past the harvested version?

        One stats round trip; False before the first harvest (an empty
        cache cannot be stale, only unpopulated).
        """
        if self.remote_version is None:
            return False
        return self.endpoint.version != self.remote_version

    # ------------------------------------------------------------------
    # Harvesting
    # ------------------------------------------------------------------

    def harvest(self, text: str, id: str = "") -> HarvestRecord:
        """Page one CONSTRUCT query into the local cache.

        Raises :class:`StaleSubgraphError` when the remote has moved past
        the version earlier harvests were taken at -- mixing versions in
        one cache is exactly the inconsistency this class exists to
        prevent; call :meth:`refresh` first.
        """
        base = self._check_construct(text)
        name = id or "harvest%d" % len(self.harvests)
        if self.tracer is not None and self.tracer.enabled:
            with self.tracer.span("harvest", name=name) as span:
                record = self._harvest(base, name)
                if span is not None:
                    span.attrs["pages"] = record.pages
                    span.attrs["triples"] = record.triples
                    span.attrs["remote_version"] = record.remote_version
                return record
        return self._harvest(base, name)

    def _harvest(self, text: str, name: str) -> HarvestRecord:
        lines, version, pages, units = self._fetch(text, name)
        if self.remote_version is not None and version != self.remote_version:
            raise StaleSubgraphError(
                "remote is at version %d but the cache was harvested at "
                "%d; refresh() before harvesting more" % (
                    version, self.remote_version,
                )
            )
        harvested = parse_ntriples("\n".join(lines))
        additions = [
            t for t in harvested.to_list() if t not in self.versions.head()
        ]
        self.versions.commit(additions=additions)
        self.remote_version = version
        self.harvests.append((name, text))
        return HarvestRecord(
            id=name,
            text=text,
            pages=pages,
            triples=len(lines),
            new_triples=len(additions),
            remote_version=version,
            units=units,
        )

    def _fetch(
        self, text: str, name: str
    ) -> Tuple[List[str], int, int, int]:
        """The paging loop; restarts when the remote version moves."""
        last_error = "remote version changed %d time(s) mid-harvest" % (
            self.max_restarts + 1
        )
        for _restart in range(self.max_restarts + 1):
            lines: List[str] = []
            version: Optional[int] = None
            pages = 0
            units = 0
            offset = 0
            consistent = True
            while True:
                paged = "%s LIMIT %d OFFSET %d" % (
                    text, self.page_size, offset,
                )
                response = self.endpoint.query(
                    paged,
                    id="%s/page%d" % (name, pages),
                    tenant=self.tenant,
                    deadline=self.deadline,
                )
                if response.get("status") != "ok":
                    raise HarvestError(
                        "page %d of %s failed: %s%s"
                        % (
                            pages,
                            name,
                            response.get("status"),
                            (
                                ": " + response["error"]
                                if response.get("error")
                                else ""
                            ),
                        )
                    )
                pages += 1
                units += int(response.get("units", 0))
                if version is None:
                    version = int(response["version"])
                elif int(response["version"]) != version:
                    # The remote committed mid-harvest; these pages mix
                    # two graph versions -- throw them away and restart.
                    consistent = False
                    break
                payload = response["result"]
                if isinstance(payload, str):
                    payload = json.loads(payload)
                if payload.get("type") != "graph":
                    raise HarvestError(
                        "%s returned %r, not a graph"
                        % (name, payload.get("type"))
                    )
                lines.extend(payload["triples"])
                total = payload["page"]["total"]
                offset += self.page_size
                if offset >= total:
                    break
            if consistent:
                assert version is not None
                return lines, version, pages, units
        raise HarvestError("%s: %s" % (name, last_error))

    @staticmethod
    def _check_construct(text: str) -> str:
        plan = parse_sparql(text)
        if not isinstance(plan, ConstructQuery):
            raise ValueError("harvest queries must be CONSTRUCT queries")
        if plan.limit is not None or plan.offset:
            raise ValueError(
                "harvest queries must not carry LIMIT/OFFSET -- the "
                "harvester owns the paging"
            )
        return text.strip()

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def refresh(self) -> Dict[str, Any]:
        """Re-run every recorded harvest if the remote moved.

        The new harvest set is committed as one local delta (additions
        *and* removals -- triples the remote dropped leave the cache), so
        the local history records exactly how the remote's evolution
        reached this cache.
        """
        if not self.is_stale():
            return {
                "refreshed": False,
                "remote_version": self.remote_version,
                "added": 0,
                "removed": 0,
                "pages": 0,
                "units": 0,
            }
        for _restart in range(self.max_restarts + 1):
            fresh = RDFGraph()
            versions: List[int] = []
            pages = 0
            units = 0
            for name, text in self.harvests:
                lines, version, fetched_pages, fetched_units = self._fetch(
                    text, name
                )
                versions.append(version)
                pages += fetched_pages
                units += fetched_units
                fresh.add_all(parse_ntriples("\n".join(lines)).to_list())
            if len(set(versions)) <= 1:
                delta = Delta.between(self.versions.head(), fresh)
                self.versions.commit(
                    additions=list(delta.added),
                    deletions=list(delta.removed),
                )
                self.remote_version = (
                    versions[0] if versions else self.endpoint.version
                )
                return {
                    "refreshed": True,
                    "remote_version": self.remote_version,
                    "added": len(delta.added),
                    "removed": len(delta.removed),
                    "pages": pages,
                    "units": units,
                }
        raise HarvestError(
            "refresh kept racing remote commits (%d attempt(s))"
            % (self.max_restarts + 1)
        )


def harvest_for_shapes(
    endpoint: WireEndpoint,
    shapes,
    page_size: int = DEFAULT_PAGE_SIZE,
    tenant: str = "federation",
    deadline: Optional[int] = None,
    tracer=None,
) -> Tuple[Subgraph, List[HarvestRecord]]:
    """Harvest exactly the triples validating *shapes* will touch."""
    from repro.shacl.compile import harvest_queries

    subgraph = Subgraph(
        endpoint,
        page_size=page_size,
        tenant=tenant,
        deadline=deadline,
        tracer=tracer,
    )
    records = [
        subgraph.harvest(compiled.text, id=compiled.id)
        for compiled in harvest_queries(shapes)
    ]
    return subgraph, records


def validate_remote_first(
    endpoint: WireEndpoint,
    shapes,
    page_size: int = DEFAULT_PAGE_SIZE,
    tenant: str = "federation",
    deadline: Optional[int] = None,
    tracer=None,
):
    """Harvest-then-validate: the report plus the populated subgraph.

    The report body is byte-identical to validating directly against the
    remote service -- the harvest queries cover every triple the
    compiled validation queries touch.
    """
    from repro.shacl.validator import LocalGraphExecutor, ShaclValidator

    subgraph, records = harvest_for_shapes(
        endpoint,
        shapes,
        page_size=page_size,
        tenant=tenant,
        deadline=deadline,
        tracer=tracer,
    )
    validator = ShaclValidator(
        LocalGraphExecutor(subgraph.head()), tracer=tracer
    )
    report = validator.validate(shapes)
    report.accounting["harvest"] = {
        "pages": sum(r.pages for r in records),
        "triples": len(subgraph),
        "remote_units": sum(r.units for r in records),
        "remote_version": subgraph.remote_version,
    }
    return report, subgraph
