"""Static analysis for the reproduction: three analyzers, one framework.

The paper's assessment dimensions -- query shapes, join strategies,
partition locality -- are all statically decidable properties of a query
before it touches the cluster.  This package decides them:

* :mod:`repro.analysis.query` lints parsed SPARQL and the optimizer's
  plan *without executing*: cartesian products, never-bound projections,
  unsatisfiable filters, unknown predicates, cost-over-deadline,
  broadcast-threshold misuse.  Wired into ``python -m repro lint``,
  ``explain`` output, and :class:`repro.server.service.QueryService`
  admission.
* :mod:`repro.analysis.determinism` walks the Python AST of ``src/repro``
  itself and flags violations of the repo's byte-determinism contract
  (unsorted JSON, set-order iteration, unseeded randomness, wall clocks,
  mutable defaults).  Runs as a CI gate.
* :mod:`repro.analysis.docsync` checks README.md and ``docs/`` against
  the CLI's argparse tree and the filesystem: a generated CLI reference
  block, flag mentions, the exit-code table, relative links, and the
  docs index.  Also a CI gate; ``--fix`` regenerates the README block.

All are built on :mod:`repro.analysis.core`: a rule registry emitting
:class:`~repro.analysis.core.Diagnostic` records into an
:class:`~repro.analysis.core.AnalysisReport` whose JSON and text
renderings are byte-deterministic.  Rule catalog: ``docs/ANALYSIS.md``.
"""

from repro.analysis.core import (
    AnalysisReport,
    Diagnostic,
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    Rule,
    RuleSet,
    SEVERITIES,
    merge_reports,
)
from repro.analysis.query import lint_query, lint_text

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_WARNINGS",
    "Rule",
    "RuleSet",
    "SEVERITIES",
    "lint_query",
    "lint_text",
    "merge_reports",
]
