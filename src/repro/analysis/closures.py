"""Front 4: the closure & shared-state analyzer (rules ``CL000`` .. ``CL007``).

The multi-process executor backend (``repro.spark.parallel``, PR 7)
reintroduced the classic Spark failure family: a function shipped to a
worker that captures driver state it cannot legally use there.  The
in-process oracle hides every such bug -- captured objects are shared,
mutations are visible, accumulator reads are current -- and the forked
pool silently diverges.  Real Spark guards this boundary mechanically
(ClosureCleaner + serializability checks); this module is our
equivalent.  It AST-walks every function handed to an RDD / DataFrame
transformation across ``src/repro`` and flags worker-boundary
violations, as a CI gate::

    PYTHONPATH=src python -m repro.analysis.closures src/repro

Rules (catalog in ``docs/ANALYSIS.md``):

``CL000`` (error)
    A worker closure captures a driver-only object (``SparkContext``,
    ``SparkSession``, ``QueryService``, an engine pool or executor
    backend).  Those objects never cross the worker pipe.
``CL001`` (error)
    Mutation of captured state inside a worker closure: an augmented
    assignment, a subscript/attribute store, or an in-place mutator
    method on a free variable.  Under the parallel backend the mutation
    happens in a forked copy and is lost at merge -- the oracle and the
    pool silently diverge.  Accumulator ``.add`` is the sanctioned
    channel and is not flagged.
``CL002`` (error)
    Accumulator ``.value`` read inside a worker closure.  The driver
    value is stale on workers by definition; ``.value`` is a
    driver-side API.
``CL003`` (error)
    Broadcast variable mutated through ``.value`` after capture.
    Broadcasts are one-shot snapshots: workers hold copies, so the
    mutation is driver-local and the views diverge.
``CL004`` (warning)
    A worker closure raises a locally-defined exception class whose
    ``__init__`` requires extra arguments but defines no
    ``__reduce__``/``__getstate__``: the instance fails the pickle
    round-trip the worker pipe performs on errors.
``CL005`` (warning)
    A worker closure defined inside a loop captures the loop variable
    by reference.  Python closes over the *variable*, not the value:
    by the time a task runs, every closure sees the last iteration.
    Rebind it as a default argument (``lambda x, v=v: ...``).
``CL006`` (error)
    ``global`` (or a ``nonlocal`` reaching outside the closure) in
    worker code: writes land in the forked copy and vanish at merge.
``CL007`` (error)
    A worker closure calls a function that is itself guilty of one of
    the above (one-level interprocedural resolution through the
    module's call graph).

Suppression: the shared ``# repro: allow(CL001)`` comment syntax
(codes comma-separated), trailing on the flagged line or on the line
directly above.  The CI gate ships with zero unsuppressed findings.

Runtime facet: :func:`verify_callable` runs the same rules against a
*live* closure object (source via ``inspect``, captured cells via
``__closure__``), and the opt-in ``verify_closures=True`` knob on
:class:`repro.spark.context.SparkContext` applies it to every closure
in a job's lineage at submission time, raising
:exc:`ClosureAnalysisError` (CLI exit 4) instead of computing a wrong
answer.
"""

from __future__ import annotations

import ast
import builtins
import sys
import textwrap
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.core import (
    AnalysisReport,
    Diagnostic,
    RuleSet,
    merge_reports,
    suppressed,
)

CLOSURE_RULES = RuleSet("closures")

#: RDD / DataFrame methods whose function-valued arguments execute on
#: workers, mapped to the positional indexes that hold closures.
WORKER_METHODS: Dict[str, Tuple[int, ...]] = {
    "aggregateByKey": (1, 2),
    "combineByKey": (0, 1, 2),
    "filter": (0,),
    "flatMap": (0,),
    "flatMapValues": (0,),
    "fold": (1,),
    "foldByKey": (1,),
    "foreach": (0,),
    "keyBy": (0,),
    "map": (0,),
    "mapPartitions": (0,),
    "mapPartitionsWithIndex": (0,),
    "mapValues": (0,),
    "reduce": (0,),
    "reduceByKey": (0,),
    "sortBy": (0,),
}

#: Types whose instances live on the driver only; a worker closure may
#: neither capture nor construct one.
DRIVER_TYPES = frozenset(
    (
        "InProcessBackend",
        "ParallelBackend",
        "QueryService",
        "SparkContext",
        "SparkSession",
    )
)

#: Calls whose *result* is a driver-only object: the types above plus
#: the factory functions that produce contexts, backends, engines, and
#: service pools.
DRIVER_FACTORIES = DRIVER_TYPES | frozenset(
    ("build_backend", "build_context", "build_engine")
)

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    (
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "sort",
        "update",
    )
)

#: Dunder hooks that make a class survive the worker pipe's pickle
#: round-trip despite a custom ``__init__`` signature.
_PICKLE_HOOKS = frozenset(
    ("__getnewargs__", "__getstate__", "__reduce__", "__reduce_ex__")
)

_BUILTIN_NAMES = frozenset(dir(builtins))


def _param_names(args: ast.arguments) -> Set[str]:
    names = {a.arg for a in args.args}
    names.update(a.arg for a in args.posonlyargs)
    names.update(a.arg for a in args.kwonlyargs)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _chain_root(node: ast.AST) -> Optional[ast.Name]:
    """The root ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _chain_attrs(node: ast.AST) -> List[str]:
    """Attribute names along a chain, root-first: ``b.value.x`` ->
    ``["value", "x"]``."""
    attrs: List[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            attrs.append(node.attr)
        node = node.value
    attrs.reverse()
    return attrs


def _bound_names(closure: ast.AST) -> Set[str]:
    """Names bound anywhere inside the closure blob (params, stores,
    imports, nested defs), minus names it declares global/nonlocal.

    Nested function scopes are deliberately flattened into one blob:
    everything under a worker closure runs on the worker, and treating
    a nested def's locals as bound only under-reports, never invents,
    captures.
    """
    bound: Set[str] = set()
    escaped: Set[str] = set()
    for node in ast.walk(closure):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
            bound |= _param_names(node.args)
        elif isinstance(node, ast.Lambda):
            bound |= _param_names(node.args)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            escaped.update(node.names)
    return bound - escaped


def _own_default_nodes(closure: ast.AST) -> Set[int]:
    """Node ids inside the closure's own default expressions.

    Defaults evaluate at definition time on the driver, so references
    there are snapshots, not captures -- ``lambda x, p=pattern: ...``
    is the sanctioned rebinding idiom and must stay silent.
    """
    args = getattr(closure, "args", None)
    excluded: Set[int] = set()
    if isinstance(args, ast.arguments):
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            for node in ast.walk(default):
                excluded.add(id(node))
    return excluded


@dataclass
class _Registries:
    """Per-module name registries feeding the closure rules."""

    driver_names: Set[str] = field(default_factory=set)
    accumulator_names: Set[str] = field(default_factory=set)
    broadcast_names: Set[str] = field(default_factory=set)
    #: Module-local exception classes failing the pickle round-trip:
    #: name -> definition line.
    risky_classes: Dict[str, int] = field(default_factory=dict)
    #: Module-level function definitions, by name.
    module_defs: Dict[str, ast.FunctionDef] = field(default_factory=dict)


def _collect_registries(tree: ast.Module) -> _Registries:
    reg = _Registries()
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            reg.module_defs[node.name] = node
        elif isinstance(node, ast.ClassDef) and _pickle_risky(node):
            reg.risky_classes[node.name] = node.lineno
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            target, value = node.target, node.value
        else:
            continue
        if not isinstance(target, ast.Name) or not isinstance(
            value, ast.Call
        ):
            continue
        func = value.func
        if isinstance(func, ast.Name) and func.id in DRIVER_FACTORIES:
            reg.driver_names.add(target.id)
        elif isinstance(func, ast.Attribute):
            if func.attr == "accumulator":
                reg.accumulator_names.add(target.id)
            elif func.attr == "broadcast":
                reg.broadcast_names.add(target.id)
            elif func.attr in DRIVER_FACTORIES:
                reg.driver_names.add(target.id)
    return reg


def _pickle_risky(cls: ast.ClassDef) -> bool:
    """True for exception classes the worker pipe cannot round-trip:
    a custom ``__init__`` demanding extra required arguments with none
    of the pickle hooks defined."""
    is_exception = any(
        isinstance(base, ast.Name)
        and (base.id.endswith("Error") or base.id.endswith("Exception"))
        for base in cls.bases
    )
    if not is_exception:
        return False
    init: Optional[ast.FunctionDef] = None
    for item in cls.body:
        if isinstance(item, ast.FunctionDef):
            if item.name in _PICKLE_HOOKS:
                return False
            if item.name == "__init__":
                init = item
    if init is None:
        return False
    required = len(init.args.args) - len(init.args.defaults) - 1  # - self
    required += sum(
        1 for d in init.args.kw_defaults if d is None
    )
    return required >= 2


# ----------------------------------------------------------------------
# Closure-body analysis
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Finding:
    code: str
    line: int
    column: int
    message: str


def _closure_violations(
    closure: ast.AST,
    registries: _Registries,
    guilt: Optional[Dict[str, Tuple[str, int]]] = None,
    describe: str = "worker closure",
) -> List[_Finding]:
    """Direct rule violations inside one worker closure blob."""
    bound = _bound_names(closure)
    guilt = guilt or {}
    findings: List[_Finding] = []
    # Everything but CL000 skips the closure's own default expressions:
    # they run on the driver at definition time.  Shipping a driver-only
    # object *through* a default is still shipping it, so CL000 looks.
    in_defaults = _own_default_nodes(closure)

    def free(name: str) -> bool:
        return name not in bound and name not in _BUILTIN_NAMES

    def flag(code: str, node: ast.AST, message: str) -> None:
        findings.append(
            _Finding(code, node.lineno, node.col_offset + 1, message)
        )

    def flag_mutation(node: ast.AST, target: ast.AST, how: str) -> None:
        root = _chain_root(target)
        if root is None or not free(root.id):
            return
        # Mutations through a broadcast's ``.value`` are CL003's
        # territory (flagged module-wide, captured or not).
        if root.id in registries.broadcast_names:
            return
        flag(
            "CL001",
            node,
            "%s on captured variable '%s' inside a %s: the write "
            "happens in a forked worker copy and is lost at merge"
            % (how, root.id, describe),
        )

    for node in ast.walk(closure):
        if id(node) in in_defaults and not isinstance(node, ast.Name):
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in registries.driver_names and free(node.id):
                flag(
                    "CL000",
                    node,
                    "%s captures driver-only object '%s': contexts, "
                    "sessions, services, and backends never cross the "
                    "worker pipe" % (describe, node.id),
                )
            elif node.id in DRIVER_TYPES and free(node.id):
                flag(
                    "CL000",
                    node,
                    "%s references driver-only type %s: constructing or "
                    "touching it in worker code breaks the worker "
                    "boundary" % (describe, node.id),
                )
        elif isinstance(node, ast.AugAssign):
            flag_mutation(node, node.target, "augmented assignment")
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    flag_mutation(node, target, "subscript/attribute store")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                root = _chain_root(func.value)
                if (
                    root is not None
                    and free(root.id)
                    and not (
                        func.attr == "add"
                        and root.id in registries.accumulator_names
                    )
                    and root.id not in registries.broadcast_names
                ):
                    flag(
                        "CL001",
                        node,
                        "in-place mutator .%s() on captured variable "
                        "'%s' inside a %s: the write happens in a "
                        "forked worker copy and is lost at merge"
                        % (func.attr, root.id, describe),
                    )
            elif isinstance(func, ast.Name) and free(func.id):
                guilty = guilt.get(func.id)
                if guilty is not None:
                    code, line = guilty
                    flag(
                        "CL007",
                        node,
                        "%s calls %s(), which violates %s at line %d: "
                        "the violation executes on the worker all the "
                        "same" % (describe, func.id, code, line),
                    )
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Load
        ):
            if (
                node.attr == "value"
                and isinstance(node.value, ast.Name)
                and node.value.id in registries.accumulator_names
                and free(node.value.id)
            ):
                flag(
                    "CL002",
                    node,
                    "accumulator '%s'.value read inside a %s: the "
                    "driver total is stale on workers; .value is a "
                    "driver-side API" % (node.value.id, describe),
                )
        elif isinstance(node, ast.Raise):
            exc = node.exc
            if (
                isinstance(exc, ast.Call)
                and isinstance(exc.func, ast.Name)
                and exc.func.id in registries.risky_classes
            ):
                flag(
                    "CL004",
                    node,
                    "%s raises %s, whose __init__ requires extra "
                    "arguments but defines no __reduce__: the instance "
                    "fails the worker pipe's pickle round-trip"
                    % (describe, exc.func.id),
                )
        elif isinstance(node, ast.Global):
            flag(
                "CL006",
                node,
                "global statement in a %s: the write lands in a forked "
                "worker copy and vanishes at merge" % describe,
            )
        elif isinstance(node, ast.Nonlocal):
            if any(name not in bound for name in node.names):
                flag(
                    "CL006",
                    node,
                    "nonlocal reaching outside a %s: the write lands "
                    "in a forked worker copy and vanishes at merge"
                    % describe,
                )
    return findings


def _loop_capture_violations(
    closure: ast.AST, loop_targets: Set[str]
) -> List[_Finding]:
    """CL005: the closure's free names that are live loop variables."""
    if not loop_targets:
        return []
    bound = _bound_names(closure)
    in_defaults = _own_default_nodes(closure)
    captured: Dict[str, ast.Name] = {}
    for node in ast.walk(closure):
        if id(node) in in_defaults:
            continue
        if (
            isinstance(node, ast.Name)
            and isinstance(node.ctx, ast.Load)
            and node.id in loop_targets
            and node.id not in bound
            and node.id not in captured
        ):
            captured[node.id] = node
    return [
        _Finding(
            "CL005",
            node.lineno,
            node.col_offset + 1,
            "worker closure captures loop variable '%s' by reference: "
            "every task sees the last iteration's value; rebind it as "
            "a default argument" % name,
        )
        for name, node in sorted(captured.items())
    ]


# ----------------------------------------------------------------------
# Module walk: worker call-sites, scope registries, CL003
# ----------------------------------------------------------------------


class _ModuleScan:
    """One full walk of a module collecting every rule's findings."""

    def __init__(self, tree: ast.Module) -> None:
        self.findings: Dict[str, List[Tuple[int, int, str]]] = {}
        self.registries = _collect_registries(tree)
        #: One-level interprocedural guilt: module-level function name
        #: -> (code, line) of its first direct violation.
        self.guilt: Dict[str, Tuple[str, int]] = {}
        for name, node in self.registries.module_defs.items():
            direct = _closure_violations(
                node, self.registries, describe="helper"
            )
            if direct:
                first = min(direct, key=lambda f: (f.line, f.column))
                self.guilt[name] = (first.code, first.line)
        self._analyzed: Set[int] = set()
        self._check_broadcast_mutations(tree)
        self._walk(tree, local_defs=[{}], loop_targets=set())

    def _record(self, finding: _Finding) -> None:
        self.findings.setdefault(finding.code, []).append(
            (finding.line, finding.column, finding.message)
        )

    # -- CL003 (module-wide) --------------------------------------------

    def _check_broadcast_mutations(self, tree: ast.Module) -> None:
        broadcast = self.registries.broadcast_names

        def through_value(node: ast.AST) -> Optional[str]:
            root = _chain_root(node)
            if root is None or root.id not in broadcast:
                return None
            attrs = _chain_attrs(node)
            if attrs and attrs[0] == "value":
                return root.id
            return None

        for node in ast.walk(tree):
            name: Optional[str] = None
            how = ""
            if isinstance(node, ast.AugAssign):
                name = through_value(node.target)
                how = "augmented assignment through"
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = through_value(target)
                    if name:
                        how = "store through"
                        break
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATOR_METHODS:
                    name = through_value(node.func.value)
                    how = "in-place .%s() through" % node.func.attr
            if name:
                self._record(
                    _Finding(
                        "CL003",
                        node.lineno,
                        node.col_offset + 1,
                        "%s '%s'.value mutates a broadcast after "
                        "capture: workers hold snapshots, so the views "
                        "diverge; rebroadcast instead" % (how, name),
                    )
                )

    # -- worker call-sites ------------------------------------------------

    def _walk(
        self,
        node: ast.AST,
        local_defs: List[Dict[str, Tuple[ast.FunctionDef, Set[str]]]],
        loop_targets: Set[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local_defs[-1][child.name] = (child, set(loop_targets))
                local_defs.append({})
                self._walk(child, local_defs, set())
                local_defs.pop()
            elif isinstance(child, ast.For):
                targets = {
                    n.id
                    for n in ast.walk(child.target)
                    if isinstance(n, ast.Name)
                }
                self._walk(child, local_defs, loop_targets | targets)
            elif isinstance(child, ast.While):
                self._walk(child, local_defs, loop_targets)
            else:
                if isinstance(child, ast.Call):
                    self._handle_call(child, local_defs, loop_targets)
                self._walk(child, local_defs, loop_targets)

    def _handle_call(
        self,
        call: ast.Call,
        local_defs: List[Dict[str, Tuple[ast.FunctionDef, Set[str]]]],
        loop_targets: Set[str],
    ) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return
        indexes = WORKER_METHODS.get(func.attr)
        if indexes is None:
            return
        for index in indexes:
            if index >= len(call.args):
                continue
            arg = call.args[index]
            if isinstance(arg, ast.Lambda):
                self._analyze(arg, loop_targets)
            elif isinstance(arg, ast.Name):
                resolved = self._resolve(arg.id, local_defs)
                if resolved is not None:
                    self._analyze(resolved[0], resolved[1])

    def _resolve(
        self,
        name: str,
        local_defs: List[Dict[str, Tuple[ast.FunctionDef, Set[str]]]],
    ) -> Optional[Tuple[ast.FunctionDef, Set[str]]]:
        for scope in reversed(local_defs):
            if name in scope:
                return scope[name]
        node = self.registries.module_defs.get(name)
        if node is not None:
            return (node, set())
        return None

    def _analyze(self, closure: ast.AST, loop_targets: Set[str]) -> None:
        if id(closure) in self._analyzed:
            return
        self._analyzed.add(id(closure))
        for finding in _closure_violations(
            closure, self.registries, guilt=self.guilt
        ):
            self._record(finding)
        for finding in _loop_capture_violations(closure, loop_targets):
            self._record(finding)


@dataclass
class ModuleContext:
    """One Python source file under closure analysis."""

    path: str
    source: str
    tree: Optional[ast.Module] = None
    syntax_error: str = ""
    _findings: Optional[Dict[str, List[Tuple[int, int, str]]]] = field(
        default=None, repr=False
    )

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleContext":
        context = cls(path=path, source=source)
        try:
            context.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            context.syntax_error = str(exc)
        return context

    def findings(self, code: str) -> List[Tuple[int, int, str]]:
        if self._findings is None:
            if self.tree is None:
                self._findings = {}
            else:
                self._findings = _ModuleScan(self.tree).findings
        return self._findings.get(code, [])


def _rule_check(code: str):
    def check(context: ModuleContext, found):
        for line, column, message in context.findings(code):
            yield found(message, context.path, line, column)

    return check


CLOSURE_RULES.rule(
    "CL000", "error", "worker closure captures a driver-only object"
)(_rule_check("CL000"))
CLOSURE_RULES.rule(
    "CL001", "error", "mutation of captured state in a worker closure"
)(_rule_check("CL001"))
CLOSURE_RULES.rule(
    "CL002", "error", "accumulator .value read in a worker closure"
)(_rule_check("CL002"))
CLOSURE_RULES.rule(
    "CL003", "error", "broadcast variable mutated after capture"
)(_rule_check("CL003"))
CLOSURE_RULES.rule(
    "CL004", "warning", "exception type cannot cross the worker pipe"
)(_rule_check("CL004"))
CLOSURE_RULES.rule(
    "CL005", "warning", "worker closure captures a loop variable"
)(_rule_check("CL005"))
CLOSURE_RULES.rule(
    "CL006", "error", "global/nonlocal write in worker code"
)(_rule_check("CL006"))
CLOSURE_RULES.rule(
    "CL007", "error", "worker closure calls a boundary-violating function"
)(_rule_check("CL007"))


def check_source(path: str, source: str) -> AnalysisReport:
    """Analyze one in-memory source file (the testable core).

    Unparseable files are skipped silently: syntax errors are the
    determinism checker's ``DT000`` territory, and double-reporting
    them would make the two gates disagree about counts.
    """
    context = ModuleContext.from_source(path, source)
    report = AnalysisReport(analyzer=CLOSURE_RULES.analyzer, subject=path)
    if context.syntax_error:
        return report
    lines = source.splitlines()
    for diagnostic in CLOSURE_RULES.run(context):
        if not suppressed(diagnostic, lines):
            report.diagnostics.append(diagnostic)
    return report


def check_paths(paths: Sequence[str]) -> AnalysisReport:
    """Analyze every ``.py`` file under *paths* into one merged report."""
    from repro.analysis.determinism import collect_files

    reports = []
    for path in collect_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            reports.append(check_source(path, handle.read()))
    return merge_reports(
        CLOSURE_RULES.analyzer, reports, subject=",".join(paths)
    )


# ----------------------------------------------------------------------
# Runtime facet: verify live closures at job submission
# ----------------------------------------------------------------------


class ClosureAnalysisError(RuntimeError):
    """A submitted closure violates the worker-boundary contract.

    Carries the :class:`AnalysisReport` that rejected it.  The CLI maps
    this to exit code 4, mirroring how lint findings gate service
    admission.
    """

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        super().__init__(report.render())


def _live_registries(func: Callable) -> _Registries:
    """Registries built from a live closure's captured cells and
    referenced globals, classified by their runtime types."""
    from repro.spark.accumulator import Accumulator
    from repro.spark.broadcast import Broadcast
    from repro.spark.context import SparkContext

    driver_types: Tuple[type, ...] = (SparkContext,)
    try:
        from repro.spark.sql.session import SparkSession

        driver_types = driver_types + (SparkSession,)
    except ImportError:  # pragma: no cover - session always ships
        pass

    reg = _Registries()
    code = getattr(func, "__code__", None)
    cells = getattr(func, "__closure__", None) or ()
    freevars = code.co_freevars if code is not None else ()
    bindings: List[Tuple[str, Any]] = list(zip(freevars, cells))
    globalns = getattr(func, "__globals__", {})
    names = code.co_names if code is not None else ()
    for name in names:
        if name in globalns:
            bindings.append((name, globalns[name]))

    for name, holder in bindings:
        value = holder
        if hasattr(holder, "cell_contents"):
            try:
                value = holder.cell_contents
            except ValueError:  # empty cell
                continue
        if isinstance(value, Accumulator):
            reg.accumulator_names.add(name)
        elif isinstance(value, Broadcast):
            reg.broadcast_names.add(name)
        elif isinstance(value, driver_types):
            reg.driver_names.add(name)
    return reg


def _closure_source(func: Callable) -> Optional[Tuple[str, ast.AST, int]]:
    """(source, closure node, first line) for a live function, or None
    when the source is unavailable (builtins, REPL, C extensions)."""
    import inspect

    try:
        source = textwrap.dedent(inspect.getsource(func))
        first_line = func.__code__.co_firstlineno
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(source)
    except SyntaxError:
        # A lambda extracted mid-expression rarely parses standalone;
        # wrapping it in a function statement recovers the AST.  The
        # wrapped text (one extra leading line) becomes the source of
        # record so line arithmetic and suppression lookups agree.
        source = "def _wrap():\n" + textwrap.indent(source, "    ")
        try:
            tree = ast.parse(source)
            first_line -= 1
        except SyntaxError:
            return None
    name = getattr(func, "__name__", "<lambda>")
    candidates: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Lambda) and name == "<lambda>":
            candidates.append(node)
        elif (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            candidates.append(node)
    if len(candidates) != 1:
        # Ambiguous (several lambdas on one line) or missing: refuse to
        # guess rather than misattribute a finding.
        return None
    return source, candidates[0], first_line


def verify_callable(
    func: Callable, location: str = "<closure>", _depth: int = 0
) -> AnalysisReport:
    """Run the closure rules against one live function object.

    Checks the captured cells for driver-only instances (CL000) and,
    when the source is recoverable, the body for mutation of captured
    state, accumulator ``.value`` reads, and global/nonlocal writes
    (CL001/CL002/CL006).  Recurses one level into captured callables,
    because the RDD API wraps user functions in internal adapters.
    """
    report = AnalysisReport(
        analyzer=CLOSURE_RULES.analyzer, subject=location
    )
    if not callable(func) or getattr(func, "__code__", None) is None:
        return report
    registries = _live_registries(func)
    qualname = getattr(func, "__qualname__", repr(func))

    for name in sorted(registries.driver_names):
        report.diagnostics.append(
            Diagnostic(
                code="CL000",
                severity="error",
                message="closure %s captures driver-only object '%s': "
                "contexts, sessions, services, and backends never "
                "cross the worker pipe" % (qualname, name),
                location=location,
            )
        )

    located = _closure_source(func)
    if located is not None:
        source, node, first_line = located
        lines = source.splitlines()
        for finding in _closure_violations(
            node, registries, describe="submitted closure"
        ):
            diagnostic = Diagnostic(
                code=finding.code,
                severity=CLOSURE_RULES.by_code(finding.code).severity,
                message="closure %s: %s" % (qualname, finding.message),
                location=location,
                line=first_line + finding.line - 1,
                column=finding.column,
            )
            probe = Diagnostic(
                code=finding.code,
                severity=diagnostic.severity,
                message=diagnostic.message,
                location=location,
                line=finding.line,
                column=finding.column,
            )
            if not suppressed(probe, lines):
                report.diagnostics.append(diagnostic)

    if _depth < 2:
        cells = getattr(func, "__closure__", None) or ()
        for cell in cells:
            try:
                value = cell.cell_contents
            except ValueError:
                continue
            if callable(value) and getattr(value, "__code__", None):
                nested = verify_callable(
                    value, location=location, _depth=_depth + 1
                )
                report.extend(nested.diagnostics)
    return report


def verify_rdd(rdd) -> int:
    """Verify every closure in *rdd*'s lineage; the number checked.

    Raises :exc:`ClosureAnalysisError` on the first closure whose
    report carries errors (warnings never block execution).  Verified
    code objects are memoized on the context, so re-submitting the
    same lineage is free.
    """
    from repro.spark.parallel import lineage

    ctx = rdd.ctx
    # Keyed by id() while holding a strong reference: distinct closures
    # can share one code object (the RDD API's adapter lambdas), and a
    # held reference keeps the id from being recycled.
    seen = getattr(ctx, "_verified_closures", None)
    if seen is None or not isinstance(seen, dict):
        seen = {}
        ctx._verified_closures = seen
    checked = 0
    for node in lineage(rdd):
        functions: List[Callable] = []
        func = getattr(node, "func", None)
        if callable(func):
            functions.append(func)
        aggregator = getattr(node, "aggregator", None)
        if aggregator:
            functions.extend(f for f in aggregator if callable(f))
        for func in functions:
            key = id(func)
            if key in seen:
                continue
            seen[key] = func
            checked += 1
            location = "%s[%d]" % (type(node).__name__, node.id)
            report = verify_callable(func, location=location)
            ctx.metrics.incr("closures_verified")
            if report.errors:
                ctx.metrics.incr("closures_rejected")
                report.diagnostics = list(report.errors)
                raise ClosureAnalysisError(report)
    return checked


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analysis.closures",
        description="flag worker-boundary violations in closures "
        "handed to RDD/DataFrame operations (see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "paths", nargs="+", help="Python files or directories to check"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic JSON report instead of text",
    )
    args = parser.parse_args(argv)
    try:
        report = check_paths(args.paths)
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        sys.stdout.write(report.to_json())
    else:
        print(report.render())
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
