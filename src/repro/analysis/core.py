"""The shared rule-engine framework behind both analyzers.

An analyzer is a :class:`RuleSet`: an ordered registry of :class:`Rule`
objects, each owning a stable code (``QL001``, ``DT002``, ...), a
severity, and a check function.  Running the set over a context object
produces an :class:`AnalysisReport` -- a sorted list of
:class:`Diagnostic` records with deterministic JSON and human-text
renderings, and an exit code following the CLI convention:

* ``0`` -- clean (no findings);
* ``4`` -- warnings only;
* ``5`` -- at least one error.

Determinism: diagnostics sort on ``(location, line, column, code,
message)``, payloads are plain dicts serialized with ``sort_keys=True``,
and nothing here consults a clock -- two runs over the same inputs are
byte-identical (asserted in ``tests/analysis/test_core.py``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

#: Exit codes shared by ``repro lint`` and ``repro.analysis.determinism``.
EXIT_CLEAN = 0
EXIT_WARNINGS = 4
EXIT_ERRORS = 5

#: Recognized severities, mildest first.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule violated at a location.

    *location* names the analyzed subject (a file path or query name);
    *line*/*column* are 1-based source coordinates when the subject has
    them (the determinism checker) and 0 when it does not (query lint).
    """

    code: str
    severity: str
    message: str
    location: str = "-"
    line: int = 0
    column: int = 0

    def sort_key(self):
        return (self.location, self.line, self.column, self.code, self.message)

    def to_payload(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "location": self.location,
            "line": self.line,
            "column": self.column,
        }

    def render(self) -> str:
        where = self.location
        if self.line:
            where = "%s:%d:%d" % (self.location, self.line, self.column)
        return "%s: %s %s: %s" % (where, self.severity, self.code, self.message)


@dataclass(frozen=True)
class Rule:
    """One named check.

    *check* receives the analyzer's context object and yields
    :class:`Diagnostic` records (built via the ``found`` helper the
    rule set passes in, so rules never repeat their own code/severity).
    """

    code: str
    severity: str
    title: str
    check: Callable[..., Iterable[Diagnostic]]

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                "unknown severity %r; choose one of %s"
                % (self.severity, ", ".join(SEVERITIES))
            )


class RuleSet:
    """An ordered registry of rules forming one analyzer."""

    def __init__(self, analyzer: str) -> None:
        self.analyzer = analyzer
        self._rules: List[Rule] = []

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def by_code(self, code: str) -> Rule:
        for rule in self._rules:
            if rule.code == code:
                return rule
        raise KeyError("no rule %s in analyzer %s" % (code, self.analyzer))

    def rule(
        self, code: str, severity: str, title: str
    ) -> Callable[[Callable], Callable]:
        """Decorator: register the decorated function as a check.

        The check is called as ``check(context, found)`` where ``found``
        builds a :class:`Diagnostic` carrying this rule's code and
        severity; the check yields (or returns an iterable of) whatever
        ``found`` produced.
        """
        if any(r.code == code for r in self._rules):
            raise ValueError("duplicate rule code %s" % code)

        def register(fn: Callable) -> Callable:
            self._rules.append(Rule(code, severity, title, fn))
            return fn

        return register

    def run(self, context: Any) -> List[Diagnostic]:
        """Every rule over one context; rules run in registration order."""
        diagnostics: List[Diagnostic] = []
        for rule in self._rules:

            def found(
                message: str,
                location: str = "-",
                line: int = 0,
                column: int = 0,
                _rule: Rule = rule,
            ) -> Diagnostic:
                return Diagnostic(
                    code=_rule.code,
                    severity=_rule.severity,
                    message=message,
                    location=location,
                    line=line,
                    column=column,
                )

            diagnostics.extend(rule.check(context, found) or ())
        return diagnostics

    def catalog(self) -> List[Dict[str, str]]:
        """JSON-ready rule listing (the ``docs/ANALYSIS.md`` source)."""
        return [
            {"code": r.code, "severity": r.severity, "title": r.title}
            for r in self._rules
        ]


#: The shared suppression-comment syntax: ``# repro: allow(DT002)`` with
#: codes comma- or space-separated.  The source-level analyzers (the
#: determinism checker and the closure analyzer) honor it through
#: :func:`suppressed`; the query linter accepts the same spelling as a
#: SPARQL comment anywhere in the query text (its findings carry no
#: line anchors); docsync accepts the markdown-native
#: ``<!-- repro: allow(DS004) -->`` on or above the flagged doc line.
ALLOW_RE = re.compile(r"(?:#|<!--)\s*repro:\s*allow\(([^)]*)\)")


def allowed_codes(text: str) -> set:
    """The set of codes an ``# repro: allow(...)`` comment in *text*
    names; empty when the line carries no suppression comment."""
    match = ALLOW_RE.search(text)
    if match is None:
        return set()
    return {
        token.strip()
        for token in match.group(1).replace(",", " ").split()
    }


def suppressed(diagnostic: "Diagnostic", lines: Sequence[str]) -> bool:
    """True when an ``# repro: allow(CODE)`` covers the flagged line
    (trailing on the line itself or a comment on the line above)."""
    candidates = []
    if 1 <= diagnostic.line <= len(lines):
        candidates.append(lines[diagnostic.line - 1])
    if 2 <= diagnostic.line:
        candidates.append(lines[diagnostic.line - 2])
    for text in candidates:
        if diagnostic.code in allowed_codes(text):
            return True
    return False


#: Bumped when the serialized report layout changes incompatibly.
REPORT_FORMAT_VERSION = 1


@dataclass
class AnalysisReport:
    """The artifact one analyzer run produces."""

    analyzer: str
    subject: str = "-"
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> "AnalysisReport":
        self.diagnostics.extend(diagnostics)
        return self

    def sorted_diagnostics(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def count(self, severity: str) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    def exit_code(self) -> int:
        """The CLI convention: 0 clean, 4 warnings only, 5 errors."""
        if self.count("error"):
            return EXIT_ERRORS
        if self.count("warning"):
            return EXIT_WARNINGS
        return EXIT_CLEAN

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready dict; diagnostics sorted for byte determinism."""
        return {
            "format": REPORT_FORMAT_VERSION,
            "analyzer": self.analyzer,
            "subject": self.subject,
            "summary": {
                "errors": self.count("error"),
                "warnings": self.count("warning"),
                "total": len(self.diagnostics),
            },
            "diagnostics": [
                d.to_payload() for d in self.sorted_diagnostics()
            ],
        }

    def to_json(self) -> str:
        return (
            json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"
        )

    def render(self) -> str:
        """The human listing: one line per finding plus a summary line."""
        lines = [d.render() for d in self.sorted_diagnostics()]
        lines.append(
            "%s: %d error(s), %d warning(s)"
            % (self.analyzer, self.count("error"), self.count("warning"))
        )
        return "\n".join(lines)


def merge_reports(
    analyzer: str, reports: Iterable[AnalysisReport], subject: str = "-"
) -> AnalysisReport:
    """One combined report over several subjects (multi-file runs)."""
    merged = AnalysisReport(analyzer=analyzer, subject=subject)
    for report in reports:
        merged.extend(report.diagnostics)
    return merged
