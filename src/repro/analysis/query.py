"""Front 1: the SPARQL/plan linter (rules ``QL000`` .. ``QL006``).

Every rule decides a property of a query *statically* -- from the parsed
AST, the translated algebra, the statistics catalog, and the optimizer's
plan -- without executing anything.  The serving layer runs this linter
at admission (:class:`repro.server.service.QueryService`), the CLI
exposes it as ``python -m repro lint``, and ``repro explain`` embeds the
findings above its cost trees.

Rules (catalog in ``docs/ANALYSIS.md``):

``QL000`` (error)
    The query text does not parse.
``QL001`` (error)
    Cartesian product: a BGP whose patterns split into multiple
    variable-connected components, or a join whose sides share no
    variable.  Every pairing of the sides' rows is materialized.
``QL002`` (error)
    Projection of a variable no triple pattern can ever bind.
``QL003`` (error)
    Unsatisfiable filter: a variable-free constraint that is always
    false (or always errors), or a conjunction whose per-variable
    constraints contradict (two equalities, equality vs. inequality,
    an empty numeric range).
``QL004`` (error / warning)
    A constant predicate the statistics catalog has never seen: zero
    matches at the served graph version.  An error in a mandatory
    position (the whole query is provably empty); a warning inside
    OPTIONAL or UNION branches.
``QL005`` (error)
    The plan's estimated cost already exceeds the request's cost-unit
    deadline: the query is doomed before the first partition is scanned.
``QL006`` (warning)
    Broadcast-threshold misuse: the configured threshold is at least the
    dataset size, so every join build side -- including full scans --
    would be broadcast to every executor.

``QL004``-``QL006`` need a :class:`~repro.stats.catalog.StatsCatalog`;
``QL005`` additionally needs a deadline.  Without those inputs the rules
pass silently (static analysis never guesses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from repro.analysis.core import (
    AnalysisReport,
    Diagnostic,
    RuleSet,
    allowed_codes,
)
from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.planner import DEFAULT_BROADCAST_THRESHOLD, JoinPlanner
from repro.sparql.algebra import (
    AlgebraFilter,
    AlgebraJoin,
    AlgebraNode,
    AlgebraUnion,
    BGP,
    LeftJoin,
    translate_group,
)
from repro.sparql.ast import (
    Arithmetic,
    BooleanExpr,
    Comparison,
    FilterExpr,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    NotExpr,
    OptionalPattern,
    Query,
    SelectQuery,
    TermExpr,
    TriplePattern,
    UnionPattern,
    VarExpr,
    Variable,
)
from repro.sparql.filtereval import (
    FilterEvalError,
    effective_boolean_value,
    evaluate_expression,
)
from repro.sparql.parser import parse_sparql
from repro.sparql.results import Solution
from repro.stats.catalog import StatsCatalog

QUERY_RULES = RuleSet("query-lint")


@dataclass
class LintContext:
    """Everything the rules may consult for one query."""

    subject: str
    text: str
    query: Optional[Query] = None
    parse_error: str = ""
    catalog: Optional[StatsCatalog] = None
    deadline: Optional[int] = None
    broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD
    mode: str = "dp"

    @property
    def algebra(self) -> Optional[AlgebraNode]:
        if self.query is None or self.query.where is None:
            return None
        return translate_group(self.query.where)


# ----------------------------------------------------------------------
# Shared walkers
# ----------------------------------------------------------------------


def _node_variables(node: AlgebraNode) -> Set[str]:
    """Variable names a subtree can bind."""
    if isinstance(node, BGP):
        return {
            v.name for pattern in node.patterns for v in pattern.variables()
        }
    if isinstance(node, (AlgebraJoin, LeftJoin)):
        return _node_variables(node.left) | _node_variables(node.right)
    if isinstance(node, AlgebraUnion):
        out: Set[str] = set()
        for branch in node.branches:
            out |= _node_variables(branch)
        return out
    if isinstance(node, AlgebraFilter):
        return _node_variables(node.child)
    return set()


def _walk_algebra(node: AlgebraNode) -> Iterator[AlgebraNode]:
    yield node
    for child in node._children():
        for sub in _walk_algebra(child):
            yield sub


def _components(patterns: List[TriplePattern]) -> List[List[int]]:
    """Variable-connectivity components among patterns that carry
    variables (all-constant patterns are existence checks, not joins)."""
    indexed = [
        (i, {v.name for v in p.variables()})
        for i, p in enumerate(patterns)
        if p.variables()
    ]
    components: List[Tuple[Set[int], Set[str]]] = []
    for index, names in indexed:
        touching = [c for c in components if c[1] & names]
        merged_members = {index}
        merged_names = set(names)
        for members, cnames in touching:
            merged_members |= members
            merged_names |= cnames
            components.remove((members, cnames))
        components.append((merged_members, merged_names))
    return [sorted(members) for members, _ in components]


def _walk_patterns(
    group: GroupGraphPattern, mandatory: bool = True
) -> Iterator[Tuple[TriplePattern, bool]]:
    """(pattern, is-mandatory) for every triple pattern in *group*."""
    for element in group.elements:
        if isinstance(element, TriplePattern):
            yield element, mandatory
        elif isinstance(element, GroupGraphPattern):
            for item in _walk_patterns(element, mandatory):
                yield item
        elif isinstance(element, OptionalPattern):
            for item in _walk_patterns(element.pattern, False):
                yield item
        elif isinstance(element, UnionPattern):
            for branch in element.alternatives:
                for item in _walk_patterns(branch, False):
                    yield item


def _walk_filter_groups(
    group: GroupGraphPattern,
) -> Iterator[List[FilterExpr]]:
    """The FILTER expressions of each group (one list per ``{ }`` scope;
    filters of one group conjoin, so contradictions are scoped here)."""
    own = [f.expression for f in group.filters()]
    if own:
        yield own
    for element in group.elements:
        if isinstance(element, GroupGraphPattern):
            for item in _walk_filter_groups(element):
                yield item
        elif isinstance(element, OptionalPattern):
            for item in _walk_filter_groups(element.pattern):
                yield item
        elif isinstance(element, UnionPattern):
            for branch in element.alternatives:
                for item in _walk_filter_groups(branch):
                    yield item


def _expression_variables(expr: FilterExpr) -> Set[str]:
    if isinstance(expr, VarExpr):
        return {expr.variable.name}
    if isinstance(expr, (Comparison, BooleanExpr, Arithmetic)):
        return _expression_variables(expr.left) | _expression_variables(
            expr.right
        )
    if isinstance(expr, NotExpr):
        return _expression_variables(expr.child)
    if isinstance(expr, FunctionCall):
        out: Set[str] = set()
        for arg in expr.args:
            out |= _expression_variables(arg)
        return out
    if isinstance(expr, InExpr):
        out = _expression_variables(expr.needle)
        for option in expr.options:
            out |= _expression_variables(option)
        return out
    return set()


def _conjuncts(expr: FilterExpr) -> Iterator[FilterExpr]:
    if isinstance(expr, BooleanExpr) and expr.op == "and":
        for side in (expr.left, expr.right):
            for conjunct in _conjuncts(side):
                yield conjunct
    else:
        yield expr


def _var_term_comparison(
    expr: FilterExpr,
) -> Optional[Tuple[str, str, object]]:
    """Decompose ``?x <op> term`` / ``term <op> ?x`` into (name, op, term)."""
    if not isinstance(expr, Comparison):
        return None
    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}
    if isinstance(expr.left, VarExpr) and isinstance(expr.right, TermExpr):
        return (expr.left.variable.name, expr.op, expr.right.term)
    if isinstance(expr.left, TermExpr) and isinstance(expr.right, VarExpr):
        return (expr.right.variable.name, flip[expr.op], expr.left.term)
    return None


def _numeric(term: object) -> Optional[Union[int, float]]:
    to_python = getattr(term, "to_python", None)
    if to_python is None:
        return None
    value = to_python()
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return value


def _contradiction(constraints: List[Tuple[str, object]]) -> Optional[str]:
    """A human-readable contradiction among one variable's constraints,
    or None when they are satisfiable (conservatively)."""
    equals: List[object] = []
    not_equals: List[object] = []
    lower: Optional[Tuple[Union[int, float], bool]] = None  # (value, strict)
    upper: Optional[Tuple[Union[int, float], bool]] = None
    for op, term in constraints:
        if op == "=":
            equals.append(term)
        elif op == "!=":
            not_equals.append(term)
        else:
            value = _numeric(term)
            if value is None:
                continue
            if op in (">", ">="):
                bound = (value, op == ">")
                if lower is None or bound > lower:
                    lower = bound
            else:
                bound = (value, op == "<")
                if upper is None or (bound[0], not bound[1]) < (
                    upper[0],
                    not upper[1],
                ):
                    upper = bound
    for position, first in enumerate(equals):
        for second in equals[position + 1 :]:
            if first != second:
                return "= %s and = %s cannot both hold" % (
                    _show(first),
                    _show(second),
                )
    for eq in equals:
        if any(eq == ne for ne in not_equals):
            return "= %s contradicts != %s" % (_show(eq), _show(eq))
        value = _numeric(eq)
        if value is not None:
            if lower is not None and (
                value < lower[0] or (lower[1] and value == lower[0])
            ):
                return "= %s violates the lower bound %s" % (
                    _show(eq),
                    _show_bound(lower, ">"),
                )
            if upper is not None and (
                value > upper[0] or (upper[1] and value == upper[0])
            ):
                return "= %s violates the upper bound %s" % (
                    _show(eq),
                    _show_bound(upper, "<"),
                )
    if lower is not None and upper is not None:
        empty = lower[0] > upper[0] or (
            lower[0] == upper[0] and (lower[1] or upper[1])
        )
        if empty:
            return "the range %s and %s is empty" % (
                _show_bound(lower, ">"),
                _show_bound(upper, "<"),
            )
    return None


def _show(term: object) -> str:
    n3 = getattr(term, "n3", None)
    return n3() if n3 is not None else repr(term)


def _show_bound(bound: Tuple[Union[int, float], bool], op: str) -> str:
    value, strict = bound
    return "%s %s" % (op if strict else op + "=", value)


def _bgp_patterns(context: LintContext) -> List[List[TriplePattern]]:
    algebra = context.algebra
    if algebra is None:
        return []
    return [
        node.patterns
        for node in _walk_algebra(algebra)
        if isinstance(node, BGP) and node.patterns
    ]


def _planner(context: LintContext) -> JoinPlanner:
    return JoinPlanner(
        CardinalityEstimator(context.catalog),
        mode=context.mode,
        broadcast_threshold=context.broadcast_threshold,
    )


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


@QUERY_RULES.rule("QL000", "error", "query text does not parse")
def _check_parse(context: LintContext, found):
    if context.parse_error:
        yield found(
            "parse error: %s" % context.parse_error, context.subject
        )


@QUERY_RULES.rule("QL001", "error", "cartesian product join")
def _check_cartesian(context: LintContext, found):
    algebra = context.algebra
    if algebra is None:
        return
    for node in _walk_algebra(algebra):
        if isinstance(node, BGP):
            components = _components(node.patterns)
            if len(components) > 1:
                yield found(
                    "BGP splits into %d variable-disjoint components "
                    "(pattern groups %s): every pairing of their rows is "
                    "materialized"
                    % (
                        len(components),
                        "; ".join(
                            ",".join(str(i) for i in c) for c in components
                        ),
                    ),
                    context.subject,
                )
        elif isinstance(node, AlgebraJoin):
            left = _node_variables(node.left)
            right = _node_variables(node.right)
            if left and right and not (left & right):
                yield found(
                    "join sides share no variable ({%s} vs {%s}): the join "
                    "degenerates to a cartesian product"
                    % (
                        ",".join(sorted(left)),
                        ",".join(sorted(right)),
                    ),
                    context.subject,
                )


@QUERY_RULES.rule("QL002", "error", "projection of a never-bound variable")
def _check_unbound_projection(context: LintContext, found):
    query = context.query
    if not isinstance(query, SelectQuery) or query.variables is None:
        return
    bindable = {
        v.name
        for pattern in query.where.triple_patterns()
        for v in pattern.variables()
    }
    for variable in query.variables:
        if variable.name not in bindable:
            yield found(
                "?%s is projected but no triple pattern binds it: the "
                "column is unbound in every solution" % variable.name,
                context.subject,
            )


@QUERY_RULES.rule("QL003", "error", "unsatisfiable filter")
def _check_unsatisfiable_filter(context: LintContext, found):
    query = context.query
    if query is None or query.where is None:
        return
    for expressions in _walk_filter_groups(query.where):
        # (a) Variable-free constraints evaluate now, once, for good.
        for expr in expressions:
            if _expression_variables(expr):
                continue
            try:
                value = effective_boolean_value(
                    evaluate_expression(expr, Solution())
                )
            except FilterEvalError as exc:
                yield found(
                    "constant filter always errors (%s): it rejects every "
                    "solution" % exc,
                    context.subject,
                )
                continue
            if not value:
                yield found(
                    "constant filter is always false: it rejects every "
                    "solution",
                    context.subject,
                )
        # (b) Conjoined var-vs-constant constraints, per variable.
        by_variable: Dict[str, List[Tuple[str, object]]] = {}
        for expr in expressions:
            for conjunct in _conjuncts(expr):
                decomposed = _var_term_comparison(conjunct)
                if decomposed is not None:
                    name, op, term = decomposed
                    by_variable.setdefault(name, []).append((op, term))
        for name in sorted(by_variable):
            reason = _contradiction(by_variable[name])
            if reason is not None:
                yield found(
                    "filter constraints on ?%s contradict: %s"
                    % (name, reason),
                    context.subject,
                )


@QUERY_RULES.rule("QL004", "error", "predicate unknown to the catalog")
def _check_unknown_predicate(context: LintContext, found):
    query, catalog = context.query, context.catalog
    if query is None or query.where is None or catalog is None:
        return
    seen: Set[Tuple[str, bool]] = set()
    for pattern, mandatory in _walk_patterns(query.where):
        if isinstance(pattern.predicate, Variable):
            continue
        n3 = pattern.predicate.n3()
        if catalog.predicate_stats(n3) is not None:
            continue
        if (n3, mandatory) in seen:
            continue
        seen.add((n3, mandatory))
        message = (
            "predicate %s matches no triple at graph version %d"
            % (n3, catalog.version)
        )
        if mandatory:
            yield found(
                message + ": the query is provably empty", context.subject
            )
        else:
            yield Diagnostic(
                code="QL004",
                severity="warning",
                message=message + " (inside OPTIONAL/UNION)",
                location=context.subject,
            )


@QUERY_RULES.rule("QL005", "error", "estimated cost exceeds the deadline")
def _check_cost_over_deadline(context: LintContext, found):
    if context.catalog is None or context.deadline is None:
        return
    bgps = _bgp_patterns(context)
    if not bgps:
        return
    planner = _planner(context)
    estimate = 0.0
    for patterns in bgps:
        plan = planner.plan(patterns)
        for position, step in enumerate(plan.steps):
            estimate += step.est_build
            if position:
                estimate += step.est_rows
    units = int(estimate)
    if units > context.deadline:
        yield found(
            "estimated plan cost %d unit(s) exceeds the %d-unit deadline: "
            "the query would be killed mid-scan"
            % (units, context.deadline),
            context.subject,
        )


@QUERY_RULES.rule("QL006", "warning", "broadcast threshold misuse")
def _check_broadcast_threshold(context: LintContext, found):
    catalog = context.catalog
    if catalog is None or catalog.triples <= 0:
        return
    if context.broadcast_threshold < catalog.triples:
        return
    if not any(len(patterns) > 1 for patterns in _bgp_patterns(context)):
        return
    yield found(
        "broadcast threshold %d covers the whole dataset (%d triples): "
        "every join build side, including full scans, would be shipped to "
        "every executor"
        % (context.broadcast_threshold, catalog.triples),
        context.subject,
    )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def lint_query(
    query: Query,
    subject: str = "query",
    catalog: Optional[StatsCatalog] = None,
    deadline: Optional[int] = None,
    broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
    mode: str = "dp",
) -> AnalysisReport:
    """Lint an already-parsed query."""
    context = LintContext(
        subject=subject,
        text="",
        query=query,
        catalog=catalog,
        deadline=deadline,
        broadcast_threshold=broadcast_threshold,
        mode=mode,
    )
    return AnalysisReport(
        analyzer=QUERY_RULES.analyzer, subject=subject
    ).extend(QUERY_RULES.run(context))


def lint_text(
    text: str,
    subject: str = "query",
    catalog: Optional[StatsCatalog] = None,
    deadline: Optional[int] = None,
    broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
    mode: str = "dp",
) -> AnalysisReport:
    """Parse and lint query text; parse failures become ``QL000``.

    ``#`` starts a comment in SPARQL, so the shared suppression syntax
    works verbatim: an ``# repro: allow(QL001)`` comment line anywhere
    in the query suppresses that code.  Query findings carry no line
    anchors (they describe the whole plan), so the allow is file-level
    -- unlike the per-line semantics of the source analyzers.
    """
    context = LintContext(
        subject=subject,
        text=text,
        catalog=catalog,
        deadline=deadline,
        broadcast_threshold=broadcast_threshold,
        mode=mode,
    )
    try:
        context.query = parse_sparql(text)
    except ValueError as exc:
        context.parse_error = str(exc) or "unparseable query"
    allowed: Set[str] = set()
    for line in text.splitlines():
        allowed |= allowed_codes(line)
    return AnalysisReport(
        analyzer=QUERY_RULES.analyzer, subject=subject
    ).extend(
        d for d in QUERY_RULES.run(context) if d.code not in allowed
    )
