"""Front 3: the documentation drift checker (rules ``DS001`` .. ``DS006``).

Documentation rots in one direction: the code moves, the prose stays.
This module makes the README and ``docs/`` a *checked artifact* the same
way traces and BENCH reports are -- drift is a CI failure, not a review
nit::

    PYTHONPATH=src python -m repro.analysis.docsync .

The anchor is a **generated CLI reference**: a markdown block rendered
from ``repro.cli.build_parser()``'s argparse tree (every subcommand,
positional, flag, and help string) and embedded in ``README.md`` between
HTML-comment markers.  Because the block is a pure function of the
parser, "every flag is documented" stops being a promise and becomes an
equality check; ``--fix`` rewrites the block in place after a CLI change.

Rules (catalog in ``docs/ANALYSIS.md``):

``DS001`` (error)
    The generated CLI reference block in ``README.md`` is missing or
    stale against ``repro.cli.build_parser()``.
``DS002`` (error)
    A ``--flag`` mentioned in the README or ``docs/`` that no repro
    subcommand defines (and that is not a known external tool's flag) --
    the stale half of a rename, or a typo.
``DS003`` (error)
    The README's exit-code table disagrees with the canonical code set
    (0, 1, 2, 3, and the analyzer codes from
    :mod:`repro.analysis.core`): a code missing or an unknown one
    documented.
``DS004`` (error)
    A relative markdown link whose target file does not exist.
``DS005`` (warning)
    A ``docs/*.md`` file the README never mentions -- unreachable
    documentation.
``DS006`` (error)
    The rule-catalog tables in ``docs/ANALYSIS.md`` disagree with the
    actually-registered :class:`~repro.analysis.core.RuleSet` codes
    (QL/DT/DS/CL): a registered rule without a catalog row, or a
    documented code no analyzer registers.

Suppression: the markdown-native ``<!-- repro: allow(DS004) -->`` on
the flagged line or the line above drops that finding (same shared
syntax as the source analyzers; see :mod:`repro.analysis.core`).

Determinism: same contract as the other analyzers -- diagnostics sort,
JSON sorts keys, two runs over the same tree are byte-identical.  The
README block itself is deterministic because argparse registration order
is source order.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.core import (
    AnalysisReport,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    RuleSet,
    suppressed,
)

DOCSYNC_RULES = RuleSet("docsync")

#: Markers bracketing the generated block in README.md.  Everything
#: between them (inclusive) is owned by this module; hand edits there
#: are overwritten by ``--fix`` and flagged by DS001 until then.
CLI_REFERENCE_BEGIN = "<!-- BEGIN GENERATED CLI REFERENCE (repro.analysis.docsync) -->"
CLI_REFERENCE_END = "<!-- END GENERATED CLI REFERENCE -->"

#: The canonical CLI exit codes the README table must match: runtime
#: codes 0-3 plus the shared analyzer codes (see ``repro.cli.main`` and
#: ``tests/test_cli_exit_codes.py``, which pins the behavior itself).
CANONICAL_EXIT_CODES = (0, 1, 2, 3, EXIT_WARNINGS, EXIT_ERRORS)

#: ``--flag`` tokens that legitimately appear in prose but belong to
#: programs other than the ``repro`` CLI: pytest-benchmark's selector,
#: the ``--output`` flag of the ``benchmarks/bench_*.py`` artifact
#: scripts, and this module's own ``--fix``
#: (``python -m repro.analysis.docsync``).
EXTERNAL_FLAGS = frozenset(("--benchmark-only", "--fix", "--output"))

#: A flag mention in prose: ``--views``, ``--view-threshold``, ... but
#: not table rules (``---``) or mid-word dashes.
_FLAG_RE = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")

#: An inline markdown link or image: ``[text](target)`` with an optional
#: title; the target is group 1.
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Link targets that are not relative file paths.
_EXTERNAL_LINK = ("http://", "https://", "mailto:", "#")


# ---------------------------------------------------------------------------
# Rendering the CLI reference from the argparse tree
# ---------------------------------------------------------------------------


def _subcommands(parser) -> List[Tuple[str, object, str]]:
    """(name, subparser, one-line help) per subcommand, in source order."""
    out: List[Tuple[str, object, str]] = []
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            helps = {
                choice.dest: choice.help or ""
                for choice in action._choices_actions
            }
            for name, sub in action.choices.items():
                out.append((name, sub, helps.get(name, "")))
    return out


def _metavar(action) -> str:
    """The value placeholder shown for one argparse action."""
    if action.metavar:
        name = action.metavar
    elif action.choices is not None:
        name = "{%s}" % ",".join(str(choice) for choice in action.choices)
    else:
        name = action.dest.upper()
    if action.nargs in ("+", "*"):
        name += "..."
    return name


def _invocation(action) -> str:
    """How one action is spelled on the command line."""
    if not action.option_strings:
        return _metavar(action)
    head = ", ".join(action.option_strings)
    if action.nargs == 0:  # store_true and friends take no value
        return head
    return "%s %s" % (head, _metavar(action))


def _cell(text: str) -> str:
    """Escape a help string for a markdown table cell."""
    return text.replace("|", "\\|").replace("\n", " ")


def render_cli_reference() -> str:
    """The generated block, markers included -- a pure function of the
    parser, hence byte-identical across runs."""
    from repro.cli import build_parser

    parser = build_parser()
    lines = [
        CLI_REFERENCE_BEGIN,
        "",
        "_Generated from `repro.cli.build_parser()` by"
        " `python -m repro.analysis.docsync --fix .`;"
        " CI fails when this block is stale (rule DS001)._",
        "",
    ]
    for name, sub, help_text in _subcommands(parser):
        positionals = [
            _invocation(action)
            for action in sub._actions
            if not action.option_strings
        ]
        lines.append("#### `%s`" % " ".join(["repro", name] + positionals))
        lines.append("")
        if help_text:
            lines.append(help_text)
            lines.append("")
        flags = [
            action
            for action in sub._actions
            if action.option_strings
            and "--help" not in action.option_strings
        ]
        if flags:
            lines.append("| flag | description |")
            lines.append("| --- | --- |")
            for action in flags:
                lines.append(
                    "| `%s` | %s |"
                    % (_invocation(action), _cell(action.help or ""))
                )
            lines.append("")
    lines.append(CLI_REFERENCE_END)
    return "\n".join(lines)


def cli_flags() -> frozenset:
    """Every option string any repro subcommand (or the root) defines."""
    from repro.cli import build_parser

    parser = build_parser()
    flags = []
    for _, sub, _ in _subcommands(parser):
        for action in sub._actions:
            flags.extend(action.option_strings)
    for action in parser._actions:
        flags.extend(action.option_strings)
    return frozenset(flags)


def extract_block(text: str) -> Optional[Tuple[int, str]]:
    """(1-based line of the BEGIN marker, inclusive block text), or None."""
    lines = text.split("\n")
    begin = end = -1
    for index, line in enumerate(lines):
        if line.strip() == CLI_REFERENCE_BEGIN and begin < 0:
            begin = index
        elif line.strip() == CLI_REFERENCE_END and begin >= 0:
            end = index
            break
    if begin < 0 or end < 0:
        return None
    return begin + 1, "\n".join(lines[begin : end + 1])


# ---------------------------------------------------------------------------
# The analysis context and rules
# ---------------------------------------------------------------------------


@dataclass
class DocsContext:
    """One repository's documentation under analysis.

    *pages* holds (root-relative path, text) for README.md and every
    ``docs/*.md``, README first then docs sorted by name.
    """

    root: str
    pages: List[Tuple[str, str]]
    known_flags: frozenset
    reference: str

    @classmethod
    def from_root(cls, root: str) -> "DocsContext":
        readme = os.path.join(root, "README.md")
        if not os.path.isfile(readme):
            raise FileNotFoundError("no README.md under %s" % root)
        pages = [("README.md", _read(readme))]
        docs_dir = os.path.join(root, "docs")
        if os.path.isdir(docs_dir):
            for name in sorted(os.listdir(docs_dir)):
                if name.endswith(".md"):
                    pages.append(
                        ("docs/" + name, _read(os.path.join(docs_dir, name)))
                    )
        return cls(
            root=root,
            pages=pages,
            known_flags=cli_flags(),
            reference=render_cli_reference(),
        )

    @property
    def readme(self) -> str:
        return self.pages[0][1]


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


@DOCSYNC_RULES.rule("DS001", "error", "generated CLI reference drift")
def _check_cli_reference(context: DocsContext, found):
    block = extract_block(context.readme)
    if block is None:
        yield found(
            "README.md has no generated CLI reference block (markers %r / %r);"
            " run `python -m repro.analysis.docsync --fix .`"
            % (CLI_REFERENCE_BEGIN, CLI_REFERENCE_END),
            "README.md",
        )
        return
    line, text = block
    if text != context.reference:
        yield found(
            "the generated CLI reference is stale against"
            " repro.cli.build_parser();"
            " run `python -m repro.analysis.docsync --fix .`",
            "README.md",
            line,
            1,
        )


@DOCSYNC_RULES.rule("DS002", "error", "documented flag unknown to the CLI")
def _check_flag_mentions(context: DocsContext, found):
    for path, text in context.pages:
        for lineno, line in enumerate(text.split("\n"), start=1):
            seen = []
            for match in _FLAG_RE.finditer(line):
                flag = match.group(0)
                if flag in seen:
                    continue
                seen.append(flag)
                if (
                    flag not in context.known_flags
                    and flag not in EXTERNAL_FLAGS
                ):
                    yield found(
                        "flag %s is documented but no repro subcommand"
                        " defines it" % flag,
                        path,
                        lineno,
                        match.start() + 1,
                    )


def _exit_code_rows(readme: str) -> Dict[int, int]:
    """code -> 1-based line for every README exit-code table row."""
    rows: Dict[int, int] = {}
    row_re = re.compile(r"^\|\s*`?(\d+)`?\s*\|")
    for lineno, line in enumerate(readme.split("\n"), start=1):
        match = row_re.match(line)
        if match:
            rows.setdefault(int(match.group(1)), lineno)
    return rows


@DOCSYNC_RULES.rule("DS003", "error", "exit-code table drift")
def _check_exit_codes(context: DocsContext, found):
    documented = _exit_code_rows(context.readme)
    for code in CANONICAL_EXIT_CODES:
        if code not in documented:
            yield found(
                "exit code %d is not documented in README.md's"
                " exit-code table" % code,
                "README.md",
            )
    for code in sorted(documented):
        if code not in CANONICAL_EXIT_CODES:
            yield found(
                "README.md documents exit code %d, which no subcommand"
                " returns" % code,
                "README.md",
                documented[code],
            )


@DOCSYNC_RULES.rule("DS004", "error", "broken relative link")
def _check_links(context: DocsContext, found):
    for path, text in context.pages:
        base = os.path.dirname(os.path.join(context.root, path))
        for lineno, line in enumerate(text.split("\n"), start=1):
            for match in _LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(_EXTERNAL_LINK):
                    continue
                target = target.split("#")[0]
                if not target:
                    continue
                if not os.path.exists(os.path.join(base, target)):
                    yield found(
                        "relative link target %s does not exist" % target,
                        path,
                        lineno,
                        match.start() + 1,
                    )


@DOCSYNC_RULES.rule("DS005", "warning", "docs page unreachable from README")
def _check_docs_index(context: DocsContext, found):
    for path, _ in context.pages[1:]:
        if path not in context.readme:
            yield found(
                "%s is never mentioned in README.md; add it to the"
                " documentation index" % path,
                path,
            )


#: A rule-catalog table row in docs/ANALYSIS.md: ``| QL001 | error | ...``.
_RULE_ROW_RE = re.compile(r"^\|\s*((?:QL|DT|DS|CL)\d{3})\s*\|")


def registered_rule_codes() -> Dict[str, str]:
    """code -> analyzer name for every registered rule of every front.

    Imports are local: pulling the query linter at module import time
    would drag the optimizer/SPARQL stack into every docsync run.
    """
    from repro.analysis.closures import CLOSURE_RULES
    from repro.analysis.determinism import DETERMINISM_RULES
    from repro.analysis.query import QUERY_RULES

    codes: Dict[str, str] = {}
    for ruleset in (
        QUERY_RULES,
        DETERMINISM_RULES,
        DOCSYNC_RULES,
        CLOSURE_RULES,
    ):
        for rule in ruleset:
            codes[rule.code] = ruleset.analyzer
    return codes


@DOCSYNC_RULES.rule("DS006", "error", "rule-catalog table drift")
def _check_rule_catalog(context: DocsContext, found):
    pages = dict(context.pages)
    page = pages.get("docs/ANALYSIS.md")
    if page is None:
        yield found(
            "docs/ANALYSIS.md is missing: the rule catalog has nowhere"
            " to live",
            "docs/ANALYSIS.md",
        )
        return
    documented: Dict[str, int] = {}
    for lineno, line in enumerate(page.split("\n"), start=1):
        match = _RULE_ROW_RE.match(line)
        if match:
            documented.setdefault(match.group(1), lineno)
    registered = registered_rule_codes()
    for code in sorted(registered):
        if code not in documented:
            yield found(
                "rule %s (analyzer %r) is registered but has no catalog"
                " row in docs/ANALYSIS.md" % (code, registered[code]),
                "docs/ANALYSIS.md",
            )
    for code in sorted(documented):
        if code not in registered:
            yield found(
                "docs/ANALYSIS.md documents rule %s, which no analyzer"
                " registers" % code,
                "docs/ANALYSIS.md",
                documented[code],
            )


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_root(root: str) -> AnalysisReport:
    """Run every docsync rule over one repository root.

    The shared suppression syntax works in its markdown-native
    spelling: a ``<!-- repro: allow(DS004) -->`` comment on the flagged
    doc line (or the line above) drops that finding.
    """
    context = DocsContext.from_root(root)
    lines_by_page = {
        path: text.splitlines() for path, text in context.pages
    }
    report = AnalysisReport(analyzer=DOCSYNC_RULES.analyzer, subject=root)
    report.extend(
        d
        for d in DOCSYNC_RULES.run(context)
        if not suppressed(d, lines_by_page.get(d.location, ()))
    )
    return report


def fix_readme(root: str) -> bool:
    """Rewrite README.md's generated block in place.

    Returns True when the file changed.  Raises ``FileNotFoundError``
    when README.md or its markers are missing (the markers say *where*
    the block lives, which only a human can decide).
    """
    path = os.path.join(root, "README.md")
    text = _read(path)
    block = extract_block(text)
    if block is None:
        raise FileNotFoundError(
            "README.md has no %r / %r markers to rewrite between"
            % (CLI_REFERENCE_BEGIN, CLI_REFERENCE_END)
        )
    _, old = block
    new = render_cli_reference()
    if old == new:
        return False
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text.replace(old, new))
    return True


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis.docsync",
        description="flag documentation drift against the CLI and the "
        "filesystem (see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=".",
        help="repository root holding README.md and docs/ (default: .)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic JSON report instead of text",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite README.md's generated CLI reference block, then check",
    )
    args = parser.parse_args(argv)
    try:
        if args.fix:
            changed = fix_readme(args.root)
            print(
                "README.md CLI reference %s"
                % ("rewritten" if changed else "already in sync"),
                file=sys.stderr,
            )
        report = check_root(args.root)
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        sys.stdout.write(report.to_json())
    else:
        print(report.render())
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
