"""Front 2: the byte-determinism checker (rules ``DT001`` .. ``DT005``).

The repository's core contract since PR 1 is that every artifact --
trace files, stats JSON, BENCH reports, canonical wire forms -- is
byte-identical across runs and machines.  That contract dies in small,
reviewable ways: a ``json.dumps`` without ``sort_keys``, a loop over a
``set`` feeding a serializer, a module-level ``random.random()``, a wall
clock.  This module walks the Python AST of ``src/repro`` and flags
exactly those, as a CI gate::

    PYTHONPATH=src python -m repro.analysis.determinism src/repro

Rules (catalog in ``docs/ANALYSIS.md``):

``DT001`` (error)
    ``json.dump``/``json.dumps`` without ``sort_keys=True``.
``DT002`` (error)
    Iteration over a bare set expression (a set display, ``set()`` /
    ``frozenset()`` call, set comprehension, or a union/intersection of
    them) in an order-sensitive position: a ``for`` loop, a list/dict
    comprehension, or a ``list()``/``tuple()`` conversion.  Feeding the
    result to an order-insensitive consumer (``sorted``, ``sum``,
    ``min``/``max``, ``len``, ``any``/``all``, ``set``/``frozenset``)
    is fine and not flagged.
``DT003`` (error)
    A call into the module-level (unseeded, process-shared)
    ``random`` generator; ``random.Random(seed)`` instances are the
    sanctioned source of randomness.
``DT004`` (error)
    Wall-clock reads: ``time.time()`` and friends,
    ``datetime.now()``/``utcnow()``/``today()``.  Virtual time comes
    from :func:`repro.spark.deadline.cost_units`.
``DT005`` (warning)
    Mutable default argument values (lists, dicts, sets): shared
    mutable state across calls is load-order-dependent behavior.

Suppression: append ``# repro: allow(DT002)`` (codes comma-separated)
to the flagged line, or place it as a comment on the line directly
above.  The CI gate ships with zero unsuppressed findings.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.core import (
    AnalysisReport,
    RuleSet,
    merge_reports,
    suppressed,
)

DETERMINISM_RULES = RuleSet("determinism")

#: Functions of the ``random`` module that touch the shared global state.
_RANDOM_STATEFUL = frozenset(
    (
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    )
)

#: Wall-clock readers of the ``time`` module.
_TIME_FUNCS = frozenset(
    (
        "clock_gettime",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "time",
        "time_ns",
    )
)

#: Wall-clock constructors on datetime/date classes.
_DATETIME_FUNCS = frozenset(("now", "today", "utcnow"))

#: Builtins whose output does not depend on input iteration order, so a
#: set-fed comprehension inside them is deterministic.
_ORDER_INSENSITIVE = frozenset(
    ("all", "any", "frozenset", "len", "max", "min", "set", "sorted", "sum")
)

_MUTABLE_CALLS = frozenset(("bytearray", "dict", "list", "set"))


@dataclass
class FileContext:
    """One Python source file under analysis."""

    path: str
    source: str
    tree: Optional[ast.Module] = None
    syntax_error: str = ""
    _findings: Optional[Dict[str, List[Tuple[int, int, str]]]] = field(
        default=None, repr=False
    )

    @classmethod
    def from_file(cls, path: str) -> "FileContext":
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return cls.from_source(path, source)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        context = cls(path=path, source=source)
        try:
            context.tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            context.syntax_error = str(exc)
        return context

    def findings(self, code: str) -> List[Tuple[int, int, str]]:
        """(line, column, message) findings for one rule code."""
        if self._findings is None:
            scan = _Scan(
                _set_bound_names(self.tree)
                if self.tree is not None
                else frozenset()
            )
            if self.tree is not None:
                scan.visit(self.tree)
            self._findings = scan.findings
        return self._findings.get(code, [])


#: Set-preserving augmented assignments: ``s |= other`` keeps *s* a set.
_SET_AUG_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)


def _is_set_expr(node: ast.AST) -> bool:
    """Structurally set-valued: a literal/comprehension/constructor/
    algebra of sets (no name resolution -- see :func:`_set_bound_names`)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_AUG_OPS):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _target_names(target: ast.AST):
    """Every plain name a (possibly destructuring) target binds."""
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def _set_bound_names(tree: ast.Module) -> frozenset:
    """Names that are *only ever* bound to set values in this file.

    A name qualifies when every binding of it anywhere in the module is
    a plain assignment of a structurally set-valued expression (or a
    set-preserving augmented assignment); any other binding -- a
    parameter, import, loop target, non-set assignment, ``global``
    declaration -- disqualifies it, because this scan is deliberately
    scope-flat and must never flag a name that merely shadows a set.
    """
    set_assigned: set = set()
    otherwise: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bucket = (
                        set_assigned
                        if _is_set_expr(node.value)
                        else otherwise
                    )
                    bucket.add(target.id)
                else:
                    otherwise.update(_target_names(target))
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                if node.value is not None and _is_set_expr(node.value):
                    set_assigned.add(node.target.id)
                else:
                    otherwise.add(node.target.id)
        elif isinstance(node, ast.NamedExpr):
            if isinstance(node.target, ast.Name):
                bucket = (
                    set_assigned
                    if _is_set_expr(node.value)
                    else otherwise
                )
                bucket.add(node.target.id)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and not isinstance(
                node.op, _SET_AUG_OPS
            ):
                otherwise.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            otherwise.add(node.name)
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + [args.vararg, args.kwarg]
            ):
                if arg is not None:
                    otherwise.add(arg.arg)
        elif isinstance(node, ast.Lambda):
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + [args.vararg, args.kwarg]
            ):
                if arg is not None:
                    otherwise.add(arg.arg)
        elif isinstance(node, ast.ClassDef):
            otherwise.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                otherwise.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            otherwise.update(_target_names(node.target))
        elif isinstance(node, ast.comprehension):
            otherwise.update(_target_names(node.target))
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    otherwise.update(_target_names(item.optional_vars))
        elif isinstance(node, ast.ExceptHandler):
            if node.name:
                otherwise.add(node.name)
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            otherwise.update(node.names)
    return frozenset(set_assigned - otherwise)


class _Scan(ast.NodeVisitor):
    """One AST walk collecting every rule's raw findings."""

    def __init__(self, set_names: frozenset = frozenset()) -> None:
        #: Names provably bound only to set values (see
        #: :func:`_set_bound_names`): iterating one is DT002 exactly
        #: like iterating the set expression inline.
        self._set_names = set_names
        #: code -> [(line, column, message)]
        self.findings: Dict[str, List[Tuple[int, int, str]]] = {}
        # Module-name aliases bound by imports ("import json as j").
        self._json_modules: set = set()
        self._random_modules: set = set()
        self._time_modules: set = set()
        self._datetime_modules: set = set()
        # from-imported names -> original attribute name.
        self._json_names: Dict[str, str] = {}
        self._random_names: Dict[str, str] = {}
        self._time_names: Dict[str, str] = {}
        self._datetime_classes: set = set()
        # Comprehension nodes whose iteration order provably cannot leak.
        self._order_insensitive_nodes: set = set()

    def _flag(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.setdefault(code, []).append(
            (node.lineno, node.col_offset + 1, message)
        )

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "json":
                self._json_modules.add(bound)
            elif alias.name == "random":
                self._random_modules.add(bound)
            elif alias.name == "time":
                self._time_modules.add(bound)
            elif alias.name == "datetime":
                self._datetime_modules.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "json":
                self._json_names[bound] = alias.name
            elif node.module == "random":
                self._random_names[bound] = alias.name
            elif node.module == "time":
                self._time_names[bound] = alias.name
            elif node.module == "datetime" and alias.name in (
                "date",
                "datetime",
            ):
                self._datetime_classes.add(bound)
        self.generic_visit(node)

    # -- helpers -------------------------------------------------------

    def _set_valued(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, _SET_AUG_OPS
        ):
            return self._set_valued(node.left) or self._set_valued(
                node.right
            )
        return _is_set_expr(node)

    def _call_target(self, node: ast.Call) -> Tuple[str, str]:
        """(root, attr) of the call: ``json.dumps(...)`` -> ("json",
        "dumps"); a bare name call returns ("", name)."""
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            return (func.value.id, func.attr)
        if isinstance(func, ast.Name):
            return ("", func.id)
        return ("", "")

    # -- call sites (DT001, DT002 conversions, DT003, DT004) ------------

    def visit_Call(self, node: ast.Call) -> None:
        root, attr = self._call_target(node)

        # DT001: json.dump/dumps without sort_keys=True.
        is_json_dump = (
            root in self._json_modules and attr in ("dump", "dumps")
        ) or (
            not root
            and self._json_names.get(attr) in ("dump", "dumps")
        )
        if is_json_dump:
            self._check_json_call(node, attr)

        # DT003: the shared module-level random generator.
        if (root in self._random_modules and attr in _RANDOM_STATEFUL) or (
            not root and self._random_names.get(attr) in _RANDOM_STATEFUL
        ):
            self._flag(
                "DT003",
                node,
                "call to the module-level random.%s(): the shared unseeded "
                "generator; use a seeded random.Random instance" % attr,
            )

        # DT004: wall clocks.
        if (root in self._time_modules and attr in _TIME_FUNCS) or (
            not root and self._time_names.get(attr) in _TIME_FUNCS
        ):
            self._flag(
                "DT004",
                node,
                "wall-clock read time.%s(): virtual time comes from cost "
                "units, never the host clock" % attr,
            )
        elif (
            # Not _call_target's attr: datetime.datetime.now() nests two
            # Attribute levels, which that helper reports as ("", "").
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DATETIME_FUNCS
            and self._is_datetime_root(node.func)
        ):
            self._flag(
                "DT004",
                node,
                "wall-clock read datetime %s(): virtual time comes from "
                "cost units, never the host clock" % node.func.attr,
            )

        # DT002 (conversion form): list(set(...)) / tuple(set(...)).
        if (
            not root
            and attr in ("list", "tuple")
            and len(node.args) == 1
            and not node.keywords
            and self._set_valued(node.args[0])
        ):
            self._flag(
                "DT002",
                node,
                "%s() over a set expression fixes an interpreter-dependent "
                "order; sort it first" % attr,
            )

        # Comprehensions handed straight to an order-insensitive consumer
        # may iterate sets freely.
        if not root and attr in _ORDER_INSENSITIVE:
            for arg in node.args:
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                    self._order_insensitive_nodes.add(id(arg))
        self.generic_visit(node)

    def _is_datetime_root(self, func: ast.AST) -> bool:
        """True for ``datetime.now`` / ``datetime.datetime.now`` shapes."""
        if not isinstance(func, ast.Attribute):
            return False
        value = func.value
        if isinstance(value, ast.Name):
            return (
                value.id in self._datetime_classes
                or value.id in self._datetime_modules
            )
        if isinstance(value, ast.Attribute) and isinstance(
            value.value, ast.Name
        ):
            return (
                value.value.id in self._datetime_modules
                and value.attr in ("date", "datetime")
            )
        return False

    def _check_json_call(self, node: ast.Call, attr: str) -> None:
        sort_keys: Optional[ast.keyword] = None
        has_kwargs = False
        for keyword in node.keywords:
            if keyword.arg is None:
                has_kwargs = True
            elif keyword.arg == "sort_keys":
                sort_keys = keyword
        if sort_keys is not None:
            value = sort_keys.value
            if isinstance(value, ast.Constant) and value.value is False:
                self._flag(
                    "DT001",
                    node,
                    "json.%s with sort_keys=False emits dict-insertion "
                    "order; serialized artifacts must sort keys" % attr,
                )
            return
        if has_kwargs:
            return
        self._flag(
            "DT001",
            node,
            "json.%s without sort_keys=True emits dict-insertion order; "
            "serialized artifacts must sort keys" % attr,
        )

    # -- iteration sites (DT002) ----------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._set_valued(node.iter):
            self._flag(
                "DT002",
                node.iter,
                "for-loop over a set expression iterates in interpreter-"
                "dependent order; sort it first",
            )
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        if id(node) not in self._order_insensitive_nodes:
            for generator in node.generators:
                if self._set_valued(generator.iter):
                    self._flag(
                        "DT002",
                        generator.iter,
                        "comprehension over a set expression iterates in "
                        "interpreter-dependent order; sort it first",
                    )
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # The result is itself a set: iteration order cannot leak here.
        self.generic_visit(node)

    # -- defaults (DT005) -----------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.Dict, ast.DictComp, ast.List, ast.ListComp, ast.Set, ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
                and not default.args
                and not default.keywords
            )
            if mutable:
                self._flag(
                    "DT005",
                    default,
                    "mutable default argument in %s(): one shared instance "
                    "across every call" % node.name,
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._check_defaults(node)


def _rule_check(code: str):
    """A check function pulling one code's findings off the shared scan."""

    def check(context: FileContext, found):
        for line, column, message in context.findings(code):
            yield found(message, context.path, line, column)

    return check


@DETERMINISM_RULES.rule("DT000", "error", "file does not parse")
def _check_parses(context: FileContext, found):
    if context.syntax_error:
        yield found(
            "syntax error: %s" % context.syntax_error, context.path
        )


DETERMINISM_RULES.rule(
    "DT001", "error", "json serialization without sort_keys"
)(_rule_check("DT001"))
DETERMINISM_RULES.rule("DT002", "error", "iteration over a bare set")(
    _rule_check("DT002")
)
DETERMINISM_RULES.rule("DT003", "error", "unseeded module-level random")(
    _rule_check("DT003")
)
DETERMINISM_RULES.rule("DT004", "error", "wall-clock read")(
    _rule_check("DT004")
)
DETERMINISM_RULES.rule("DT005", "warning", "mutable default argument")(
    _rule_check("DT005")
)


def check_source(path: str, source: str) -> AnalysisReport:
    """Analyze one in-memory source file (the testable core)."""
    context = FileContext.from_source(path, source)
    report = AnalysisReport(
        analyzer=DETERMINISM_RULES.analyzer, subject=path
    )
    lines = source.splitlines()
    for diagnostic in DETERMINISM_RULES.run(context):
        if not suppressed(diagnostic, lines):
            report.diagnostics.append(diagnostic)
    return report


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand file/directory arguments to a sorted ``.py`` file list."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError("no such file or directory: %s" % path)
    return sorted(dict.fromkeys(out))


def check_paths(paths: Sequence[str]) -> AnalysisReport:
    """Analyze every ``.py`` file under *paths* into one merged report."""
    reports = [
        check_source(path, _read(path)) for path in collect_files(paths)
    ]
    return merge_reports(
        DETERMINISM_RULES.analyzer, reports, subject=",".join(paths)
    )


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.analysis.determinism",
        description="flag byte-determinism contract violations "
        "(see docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "paths", nargs="+", help="Python files or directories to check"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the deterministic JSON report instead of text",
    )
    args = parser.parse_args(argv)
    try:
        report = check_paths(args.paths)
    except FileNotFoundError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        sys.stdout.write(report.to_json())
    else:
        print(report.render())
    return report.exit_code()


if __name__ == "__main__":
    sys.exit(main())
