"""Run matrices of (engine x query) with correctness checks and metrics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Type, Union

from repro.rdf.graph import RDFGraph
from repro.spark.context import SparkContext
from repro.spark.faults import FaultScheduler
from repro.spark.metrics import MetricsSnapshot
from repro.spark.tracing import Span, trace_payload
from repro.sparql.algebra import evaluate
from repro.sparql.ast import Query, SelectQuery
from repro.sparql.parser import parse_sparql
from repro.sparql.results import SolutionSet
from repro.systems.base import SparkRdfEngine, UnsupportedQueryError


@dataclass
class RunResult:
    """One (engine, query) execution with its measured cost."""

    engine: str
    query: str
    rows: int
    correct: Optional[bool]
    supported: bool
    seconds: float
    metrics: MetricsSnapshot
    #: Root spans of the execution trace when the run was traced, else None.
    trace: Optional[List[Span]] = None

    def trace_payload(self) -> Optional[Dict[str, object]]:
        """JSON-ready trace document, or None for untraced runs."""
        if self.trace is None:
            return None
        payload = trace_payload(self.trace)
        payload["engine"] = self.engine
        payload["query"] = self.query
        return payload

    def cost_summary(self) -> Dict[str, int]:
        return {
            "shuffle_records": self.metrics.shuffle_records,
            "shuffle_remote": self.metrics.shuffle_remote_records,
            "join_comparisons": self.metrics.join_comparisons,
            "records_scanned": self.metrics.records_scanned,
            "broadcast_bytes": self.metrics.broadcast_bytes,
        }


def run_engine_on_query(
    engine: SparkRdfEngine,
    query: Union[str, Query],
    name: str = "query",
    reference: Optional[SolutionSet] = None,
    trace: bool = False,
) -> RunResult:
    """Execute one query on a loaded engine, measuring its marginal cost.

    With ``trace=True`` the context's tracer brackets the execution and
    the result carries the span tree in :attr:`RunResult.trace`; the
    tracer's previous enabled state is restored afterwards.
    """
    if isinstance(query, str):
        query = parse_sparql(query)
    ctx = engine.ctx
    was_enabled = ctx.tracer.enabled
    if trace:
        ctx.tracer.clear().enable()
    before = ctx.metrics.snapshot()
    # Wall time is display-only (never serialized into byte-stable
    # artifacts; cost units are the reproducible measure).
    start = time.perf_counter()  # repro: allow(DT004)
    try:
        result = engine.execute(query)
    except UnsupportedQueryError:
        ctx.tracer.enabled = was_enabled
        return RunResult(
            engine=engine.profile.name,
            query=name,
            rows=0,
            correct=None,
            supported=False,
            seconds=0.0,
            metrics=MetricsSnapshot({}),
        )
    finally:
        ctx.tracer.enabled = was_enabled
    elapsed = time.perf_counter() - start  # repro: allow(DT004)
    cost = ctx.metrics.snapshot() - before
    correct = None
    if reference is not None and isinstance(result, SolutionSet):
        correct = result.same_as(reference)
    rows = len(result) if isinstance(result, SolutionSet) else int(result)
    return RunResult(
        engine=engine.profile.name,
        query=name,
        rows=rows,
        correct=correct,
        supported=True,
        seconds=elapsed,
        metrics=cost,
        trace=list(ctx.tracer.roots) if trace else None,
    )


@dataclass
class BenchRun:
    """A matrix run: engines x named queries over one dataset.

    ``faults`` (a spec string or a
    :class:`~repro.spark.faults.FaultScheduler`) puts every engine of the
    matrix under the *same* adversarial schedule: each engine gets a
    fresh fork, so firing counters never leak between engines and the
    matrix stays deterministic.  Correctness checking then doubles as a
    recovery test -- answers must survive the schedule unchanged.
    """

    graph: RDFGraph
    parallelism: int = 4
    faults: Union[None, str, FaultScheduler] = None
    max_task_attempts: int = 4
    speculation: bool = False
    #: Executor backend for every engine context of the matrix
    #: ("inprocess" or "parallel"; see :mod:`repro.spark.parallel`).
    backend: str = "inprocess"
    #: Worker-pool size under the parallel backend (None = default).
    workers: Optional[int] = None
    #: Opt-in closure verification at job submission on every engine
    #: context (see :mod:`repro.analysis.closures`).
    verify_closures: bool = False
    results: List[RunResult] = field(default_factory=list)

    def _fault_schedule(self) -> Optional[FaultScheduler]:
        """A fresh, equivalent scheduler for the next engine, or None."""
        if self.faults is None:
            return None
        if isinstance(self.faults, str):
            return FaultScheduler.from_spec(self.faults)
        return self.faults.fork()

    def run(
        self,
        engine_classes: Sequence[Type[SparkRdfEngine]],
        queries: Dict[str, Union[str, Query]],
        check_correctness: bool = True,
        engine_kwargs: Optional[Dict[str, dict]] = None,
        trace: bool = False,
    ) -> List[RunResult]:
        """Load each engine once, run every query, return all results.

        Each call starts from a clean slate: ``self.results`` is reset, so
        repeated calls do not silently accumulate earlier matrices (use
        separate :class:`BenchRun` instances to keep several).  With
        ``trace=True`` every result carries its execution span tree.
        """
        self.reset()
        parsed: Dict[str, Query] = {
            name: parse_sparql(q) if isinstance(q, str) else q
            for name, q in queries.items()
        }
        references: Dict[str, Optional[SolutionSet]] = {}
        for name, query in parsed.items():
            if check_correctness and isinstance(query, SelectQuery):
                references[name] = evaluate(query, self.graph)
            else:
                references[name] = None
        kwargs_by_name = engine_kwargs or {}
        for engine_class in engine_classes:
            ctx = SparkContext(
                self.parallelism,
                faults=self._fault_schedule(),
                max_task_attempts=self.max_task_attempts,
                speculation=self.speculation,
                backend=self.backend,
                workers=self.workers,
                verify_closures=self.verify_closures,
            )
            kwargs = kwargs_by_name.get(engine_class.profile.name, {})
            engine = engine_class(ctx, **kwargs)
            engine.load(self.graph)
            for name, query in parsed.items():
                self.results.append(
                    run_engine_on_query(
                        engine, query, name, references[name], trace=trace
                    )
                )
        return self.results

    def reset(self) -> None:
        """Drop all collected results (run() calls this automatically)."""
        self.results = []

    def incorrect(self) -> List[RunResult]:
        return [r for r in self.results if r.correct is False]

    def by_engine(self) -> Dict[str, List[RunResult]]:
        out: Dict[str, List[RunResult]] = {}
        for result in self.results:
            out.setdefault(result.engine, []).append(result)
        return out
