"""Plain-text tables and series for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """An aligned ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max([len(headers[i])] + [len(row[i]) for row in cells])
        for i in range(len(headers))
    ]
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    lines = [sep]
    lines.append(
        "|" + "|".join(
            " %s " % headers[i].ljust(widths[i]) for i in range(len(headers))
        ) + "|"
    )
    lines.append(sep)
    for row in cells:
        lines.append(
            "|" + "|".join(
                " %s " % row[i].ljust(widths[i]) for i in range(len(row))
            ) + "|"
        )
    lines.append(sep)
    return "\n".join(lines)


def format_series(
    title: str, points: Dict[object, object], unit: str = ""
) -> str:
    """A labelled x -> y series, one point per line (figure data)."""
    lines = ["%s:" % title]
    for x, y in points.items():
        suffix = " %s" % unit if unit else ""
        lines.append("  %s -> %s%s" % (x, y, suffix))
    return "\n".join(lines)
