"""Benchmark harness: run engines over workloads, collect cost metrics,
verify correctness against the reference evaluator, and print result
tables.
"""

from repro.bench.harness import BenchRun, RunResult, run_engine_on_query
from repro.bench.reporting import format_table, format_series

__all__ = [
    "BenchRun",
    "RunResult",
    "format_series",
    "format_table",
    "run_engine_on_query",
]
