"""repro: RDF query answering over a Spark-like substrate.

A full reproduction of "RDF Query Answering Using Apache Spark: Review and
Assessment" (Agathangelos et al., ICDE Workshops 2018): the Spark data
abstractions the paper surveys (``repro.spark``), an RDF + SPARQL stack
(``repro.rdf``, ``repro.sparql``), the nine surveyed systems
(``repro.systems``), synthetic data and workload generators (``repro.data``),
and the survey's own taxonomy, tables and assessment experiments
(``repro.core``, ``repro.bench``).
"""

__version__ = "1.0.0"
