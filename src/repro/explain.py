"""EXPLAIN: per-operator cost trees for queries on the simulated cluster.

The paper's Table II makes *qualitative* claims about where each engine
pays its cost (shuffle volume, join comparisons, broadcast size).  This
module turns those claims into evidence the way the S2RDF and Naacke et
al. evaluations do: run the query with the context's
:class:`~repro.spark.tracing.Tracer` enabled and render the recorded span
tree -- the algebra/physical plan -- with each operator annotated by the
metric deltas it caused.

Entry points:

* :func:`run_traced` -- one (engine, query) execution returning an
  :class:`EngineExplain` with the span tree and flat totals.
* :func:`explain` -- side-by-side cost trees for several engines,
  rendered as text (the backend of ``python -m repro explain``).
* :func:`trace_file_payload` -- the JSON document written by the CLI's
  ``--trace FILE`` flag.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type, Union

from repro.rdf.graph import RDFGraph
from repro.spark.context import SparkContext
from repro.spark.metrics import MetricsSnapshot
from repro.spark.tracing import (
    Span,
    TRACE_FORMAT_VERSION,
    render_trace,
    trace_totals,
)
from repro.sparql.ast import Query
from repro.sparql.parser import parse_sparql
from repro.sparql.results import SolutionSet
from repro.systems.base import SparkRdfEngine, UnsupportedQueryError

#: Engines shown by ``repro explain`` when none are named: one vertical-
#: partitioning system, one SQL-compiling system, one hash-fragmenting
#: system -- three different cost profiles for the same query.
DEFAULT_EXPLAIN_ENGINES = ("SPARQLGX", "S2RDF", "HAQWA")


def engine_class(name: str) -> Type[SparkRdfEngine]:
    """Resolve an engine name (case-insensitive; ``Naive`` included).

    Raises ``KeyError`` listing the valid choices for unknown names.
    """
    from repro.core.registry import default_registry
    from repro.systems import NaiveEngine

    if name.lower() == "naive":
        return NaiveEngine
    registry = default_registry()
    try:
        return registry.by_name(name)
    except KeyError:
        pass
    for cls in registry:
        if cls.profile.name.lower() == name.lower():
            return cls
    choices = ["Naive"] + [cls.profile.name for cls in registry]
    raise KeyError(
        "unknown engine %r; choose one of: %s" % (name, ", ".join(choices))
    )


@dataclass
class EngineExplain:
    """One traced (engine, query) execution."""

    engine: str
    supported: bool
    rows: Optional[int]
    spans: List[Span] = field(default_factory=list)
    totals: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    error: str = ""
    #: Closures checked by the opt-in worker-boundary verifier, or None
    #: when the run executed without ``verify_closures``.
    closures_verified: Optional[int] = None

    def render(self) -> str:
        header = "== %s ==" % self.engine
        if not self.supported:
            return "%s\nunsupported: %s" % (header, self.error)
        totals_line = "totals: %s" % (
            " ".join(
                "%s=%d" % (counter, value)
                for counter, value in self.totals
                if value
            )
            or "(no cost charged)"
        )
        body = render_trace(self.spans)
        rows_line = "rows: %s" % self.rows
        return "\n".join([header, rows_line, totals_line, body])

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready record; span deltas sum to ``totals`` by construction."""
        payload = {
            "engine": self.engine,
            "supported": self.supported,
            "rows": self.rows,
            "totals": {
                counter: value for counter, value in self.totals if value
            },
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.closures_verified is not None:
            payload["closures_verified"] = self.closures_verified
        return payload


def run_traced(
    graph: RDFGraph,
    query: Union[str, Query],
    engine_cls: Type[SparkRdfEngine],
    parallelism: int = 4,
    optimizer=None,
    verify_closures: bool = False,
) -> EngineExplain:
    """Load *engine_cls* on a fresh context and execute *query* traced.

    The store build runs untraced (load cost is not query cost); tracing
    brackets exactly the ``execute`` call, so the root ``query`` span's
    inclusive delta equals the flat snapshot difference of the run.

    Pass an :class:`~repro.optimizer.Optimizer` to run the cost-based
    path: the trace then carries its ``optimize`` span (chosen order and
    strategies) and per-step estimated vs. actual row counts.  With
    ``verify_closures=True`` the context enforces the worker-boundary
    rules at job submission (a violation raises
    :exc:`repro.analysis.closures.ClosureAnalysisError`) and the result
    carries the number of closures checked.
    """
    if isinstance(query, str):
        query = parse_sparql(query)
    sc = SparkContext(
        default_parallelism=parallelism, verify_closures=verify_closures
    )
    engine = engine_cls(sc)
    engine.load(graph)
    if optimizer is not None:
        engine.set_optimizer(optimizer)
    sc.tracer.clear().enable()
    before = sc.metrics.snapshot()
    try:
        result = engine.execute(query)
    except UnsupportedQueryError as exc:
        return EngineExplain(
            engine=engine.profile.name,
            supported=False,
            rows=None,
            error=str(exc),
        )
    finally:
        sc.tracer.disable()
    totals = sc.metrics.snapshot() - before
    if isinstance(result, SolutionSet):
        rows: int = len(result)
    elif isinstance(result, bool):
        rows = int(result)
    else:  # CONSTRUCT / DESCRIBE graphs
        rows = len(result)
    return EngineExplain(
        engine=engine.profile.name,
        supported=True,
        rows=rows,
        spans=list(sc.tracer.roots),
        totals=totals,
        closures_verified=(
            sc.metrics.get("closures_verified") if verify_closures else None
        ),
    )


def explain(
    graph: RDFGraph,
    query: Union[str, Query],
    engines: Sequence[Union[str, Type[SparkRdfEngine]]] = DEFAULT_EXPLAIN_ENGINES,
    parallelism: int = 4,
    optimize: bool = False,
    optimizer_mode: str = "dp",
    broadcast_threshold: Optional[int] = None,
    views: bool = False,
    view_threshold: Optional[float] = None,
    route: bool = False,
    route_engines: Optional[Sequence[str]] = None,
    shapes=None,
    verify_closures: bool = False,
) -> str:
    """Side-by-side per-operator cost trees for *query* on *engines*.

    With ``optimize=True`` one statistics catalog is computed for *graph*
    and every engine runs the shared cost-based plan, so the sections
    compare engines under identical join orders and strategies.  With
    ``views=True`` on top, materialized ExtVP views are built at
    *view_threshold* and a ``views:`` preamble block reports which views
    the plan substitutes and why.  With ``route=True`` a ``routing:``
    block shows where a fresh adaptive :class:`repro.routing.RoutingPolicy`
    over *route_engines* would dispatch the query and at what priced
    bids.  With a :class:`~repro.shacl.shapes.ShapeSet` in ``shapes``, a
    ``shacl:`` block inventories the shape set's compiled validation
    queries and marks the one being explained (if any), placing the
    query inside the validation fan-out it belongs to.  With
    ``verify_closures=True`` every engine context enforces the
    worker-boundary rules at job submission and a ``closures:`` block
    reports how many closures each engine cleared.

    Preamble blocks (closure verification, lint findings, routing
    decision, shacl inventory, view substitutions) render above the
    per-engine sections in **sorted key order** -- the order is a
    stable function of which blocks are non-empty, never of feature
    flags or evaluation order (pinned by ``tests/test_explain.py``).
    """
    if isinstance(query, str):
        query = parse_sparql(query)
    optimizer = None
    if optimize:
        from repro.optimizer import DEFAULT_BROADCAST_THRESHOLD, Optimizer

        optimizer = Optimizer.for_graph(
            graph,
            mode=optimizer_mode,
            broadcast_threshold=(
                DEFAULT_BROADCAST_THRESHOLD
                if broadcast_threshold is None
                else broadcast_threshold
            ),
            views=views,
            view_threshold=view_threshold,
        )
    # Engine runs happen first: the ``closures:`` preamble block reports
    # what the verifier actually checked during them.  Section order is
    # unchanged -- preamble blocks still render above every engine.
    runs: List[EngineExplain] = []
    for engine in engines:
        cls = engine_class(engine) if isinstance(engine, str) else engine
        runs.append(
            run_traced(
                graph,
                query,
                cls,
                parallelism,
                optimizer=optimizer,
                verify_closures=verify_closures,
            )
        )
    preamble: Dict[str, str] = {
        "closures": _closures_section(runs, verify_closures),
        "lint": _lint_section(
            query, graph, optimizer, optimizer_mode, broadcast_threshold
        ),
        "routing": _routing_section(
            query,
            graph,
            optimizer,
            optimizer_mode,
            broadcast_threshold,
            route,
            route_engines,
        ),
        "shacl": _shacl_section(query, shapes),
        "views": _views_section(query, optimizer),
    }
    sections: List[str] = [
        preamble[key] for key in sorted(preamble) if preamble[key]
    ]
    sections.extend(run.render() for run in runs)
    return "\n\n".join(sections)


def _closures_section(
    runs: Sequence[EngineExplain], verify_closures: bool
) -> str:
    """The closure-verification preamble of an EXPLAIN, empty unless
    asked.

    Every closure a lineage submits was analyzed against the
    worker-boundary rules (CL000..CL007) before any partition computed;
    reaching this render at all means none was rejected, so the block
    simply accounts for the coverage per engine.
    """
    if not verify_closures:
        return ""
    total = sum(run.closures_verified or 0 for run in runs)
    lines = [
        "closures: %d closure(s) verified against the worker-boundary "
        "rules, 0 rejected" % total
    ]
    lines.extend(
        "  %s: %d verified" % (run.engine, run.closures_verified or 0)
        for run in runs
    )
    return "\n".join(lines)


def _lint_section(
    query: Query,
    graph: RDFGraph,
    optimizer,
    optimizer_mode: str,
    broadcast_threshold: Optional[int],
) -> str:
    """The static-lint preamble of an EXPLAIN, empty when clean.

    Findings apply to the query, not to any engine, so they render once
    above the per-engine sections (and deliberately without the
    ``== name ==`` header engines use).
    """
    from repro.analysis import lint_query
    from repro.optimizer import DEFAULT_BROADCAST_THRESHOLD
    from repro.stats import StatsCatalog

    catalog = (
        optimizer.catalog
        if optimizer is not None
        else StatsCatalog.from_graph(graph)
    )
    report = lint_query(
        query,
        subject="query",
        catalog=catalog,
        broadcast_threshold=(
            DEFAULT_BROADCAST_THRESHOLD
            if broadcast_threshold is None
            else broadcast_threshold
        ),
        mode=optimizer_mode,
    )
    if not report.diagnostics:
        return ""
    lines = [
        "lint: %d error(s), %d warning(s)"
        % (report.count("error"), report.count("warning"))
    ]
    lines.extend(
        "  " + diagnostic.render()
        for diagnostic in report.sorted_diagnostics()
    )
    return "\n".join(lines)


def _routing_section(
    query: Query,
    graph: RDFGraph,
    optimizer,
    optimizer_mode: str,
    broadcast_threshold: Optional[int],
    route: bool,
    route_engines: Optional[Sequence[str]],
) -> str:
    """The adaptive-routing preamble of an EXPLAIN, empty unless asked.

    Shows where a *fresh* (prior-only, zero observations) policy would
    dispatch the query: shape, base cost, the priced bid of every
    fragment-eligible pool engine, and which pool engines the fragment
    check excluded.  Like lint and views, this is a property of the
    query and the catalog, not of any engine section below it.
    """
    if not route:
        return ""
    from repro.optimizer import DEFAULT_BROADCAST_THRESHOLD
    from repro.routing import RoutingPolicy

    policy = RoutingPolicy.for_graph(
        graph,
        engines=route_engines,
        mode=optimizer_mode,
        broadcast_threshold=(
            DEFAULT_BROADCAST_THRESHOLD
            if broadcast_threshold is None
            else broadcast_threshold
        ),
        catalog=optimizer.catalog if optimizer is not None else None,
    )
    return policy.decide(query).render()


def _shacl_section(query: Query, shapes) -> str:
    """The shape-inventory preamble of an EXPLAIN, empty without shapes.

    Lists every compiled validation query of the shape set (class probes
    are value-dependent and generated during validation, so they cannot
    be inventoried statically) and marks the one whose parsed form
    equals the explained query -- placing the query inside the
    validation fan-out it belongs to.
    """
    if shapes is None:
        return ""
    from repro.shacl.compile import compile_shape_set

    compiled = compile_shape_set(shapes)
    lines = [
        "shacl: %d shape(s) compiling to %d validation queries "
        "(+ per-value class probes at run time)"
        % (len(shapes), len(compiled))
    ]
    for item in compiled:
        marker = (
            "  <- the explained query"
            if parse_sparql(item.text) == query
            else ""
        )
        lines.append("  %s [%s]%s" % (item.id, item.kind, marker))
    return "\n".join(lines)


def _views_section(query: Query, optimizer) -> str:
    """The materialized-view preamble of an EXPLAIN, empty without views.

    Shows what the shared plan substitutes *before* any engine runs: for
    every substituted pattern, the chosen view, its exact row count
    against the base partition it dominates, its build-time selectivity
    factor, and the partner pattern whose predicate justifies the
    semi-join reduction.  Like lint findings, this is a property of the
    query plan, not of any engine, so it renders once.
    """
    if optimizer is None or getattr(optimizer, "view_catalog", None) is None:
        return ""
    catalog = optimizer.view_catalog
    lines = [
        "views: %d materialized, %d rows (threshold=%s, version=%d)"
        % (
            len(catalog),
            catalog.total_rows(),
            catalog.threshold,
            catalog.version,
        )
    ]
    plan = optimizer.plan_bgp(query.where.triple_patterns())
    chosen = [step for step in plan.steps if step.view is not None]
    if not chosen:
        lines.append(
            "  no substitution: no view strictly dominates a base scan"
        )
    for step in chosen:
        choice = step.view
        lines.append(
            "  pattern %d <- %s: %d rows vs %d base (factor=%s),"
            " justified by pattern %d"
            % (
                step.index,
                choice.name,
                choice.rows,
                choice.base_rows,
                round(choice.factor, 6),
                choice.partner,
            )
        )
    return "\n".join(lines)


def run_record(
    engine: str,
    query: str,
    totals: MetricsSnapshot,
    spans: Sequence[Span],
) -> Dict[str, Any]:
    """One ``runs[]`` entry of a trace file."""
    return {
        "engine": engine,
        "query": query,
        "totals": {counter: value for counter, value in totals if value},
        "spans": [span.to_dict() for span in spans],
    }


def trace_file_payload(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The document ``--trace FILE`` writes: one record per traced run."""
    return {"version": TRACE_FORMAT_VERSION, "runs": list(records)}


def write_trace_file(path: str, records: Sequence[Dict[str, Any]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_file_payload(records), handle, indent=2, sort_keys=True)
        handle.write("\n")


def verify_conservation(run: EngineExplain) -> Dict[str, Any]:
    """Check that the run's span deltas reproduce its flat totals.

    Returns an empty dict when they match; otherwise a mapping of counter
    name to (flat total, trace total).  Used by tests and by doubting
    readers of trace files.
    """
    from_spans = trace_totals(run.spans)
    names = {counter for counter, _ in run.totals} | {
        counter for counter, _ in from_spans
    }
    return {
        counter: (run.totals[counter], from_spans[counter])
        for counter in sorted(names)
        if run.totals[counter] != from_spans[counter]
    }
