"""The routing feedback loop: bounded-history per-(engine, shape) calibration.

After every routed execution the service records the planner's
engine-independent cost estimate against the cost units the engine
actually charged.  The ratio ``actual / estimate`` is an observation of
how that engine's mechanism prices that query shape; the calibration
*factor* is a deterministic geometric blend of the prior and the last
``history`` observations:

    factor = clamp(exp((w * ln(prior) + sum(ln r_i)) / (w + n)))

where ``w`` is the prior's pseudo-observation weight.  Early
observations move the factor quickly (the mis-calibration correction
the tests pin); a full history window makes it the geometric mean of
recent behavior, so the loop also tracks drift after graph commits.

Exploration is deterministic, not stochastic: an (engine, shape) pair
with fewer than ``min_observations`` recorded runs bids with its factor
*discounted* (``explore_discount`` per missing observation), so the
policy provably tries every candidate engine on every shape it keeps
seeing before committing to a winner -- unless a pair was explicitly
seeded (:meth:`FeedbackLog.seed_prior`), which models an operator-
supplied (possibly wrong) calibration and is exempt from the discount.

Everything here is a pure function of the recorded sequence: no clock,
no randomness, iteration orders sorted -- the determinism contract of
docs/ROUTING.md.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Iterable, Optional, Tuple, Union

from repro.sparql.shapes import QueryShape

#: Calibration factors and observed ratios are clamped to this range, so
#: one absurd observation (or seeded prior) can never saturate the blend
#: beyond recovery.
FACTOR_MIN = 1.0 / 1024.0
FACTOR_MAX = 1024.0

#: Observations kept per (engine, shape) pair.
DEFAULT_HISTORY = 32

#: Pseudo-observation weight of the prior in the geometric blend.
DEFAULT_PRIOR_WEIGHT = 2

#: Runs an (engine, shape) pair needs before its bid is undiscounted.
DEFAULT_MIN_OBSERVATIONS = 1

#: Bid discount per missing observation (optimism under uncertainty).
EXPLORE_DISCOUNT = 0.5

ShapeLike = Union[QueryShape, str]


def _shape_value(shape: ShapeLike) -> str:
    return shape.value if isinstance(shape, QueryShape) else str(shape)


def clamp_factor(value: float) -> float:
    return min(FACTOR_MAX, max(FACTOR_MIN, value))


class FeedbackLog:
    """Deterministic per-(engine, shape) calibration state."""

    def __init__(
        self,
        priors: Optional[Dict[Tuple[str, str], float]] = None,
        history: int = DEFAULT_HISTORY,
        prior_weight: int = DEFAULT_PRIOR_WEIGHT,
        min_observations: int = DEFAULT_MIN_OBSERVATIONS,
        explore_discount: float = EXPLORE_DISCOUNT,
    ) -> None:
        if history <= 0:
            raise ValueError("history must be positive")
        if prior_weight <= 0:
            raise ValueError("prior_weight must be positive")
        if min_observations < 0:
            raise ValueError("min_observations must be non-negative")
        if not 0.0 < explore_discount <= 1.0:
            raise ValueError("explore_discount must be in (0, 1]")
        self.history = history
        self.prior_weight = prior_weight
        self.min_observations = min_observations
        self.explore_discount = explore_discount
        self._priors: Dict[Tuple[str, str], float] = {}
        self._seeded: Dict[Tuple[str, str], float] = {}
        self._ratios: Dict[Tuple[str, str], Deque[float]] = {}
        for (engine, shape), prior in (priors or {}).items():
            self._priors[(engine, _shape_value(shape))] = clamp_factor(prior)

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------

    def seed_prior(
        self, engine: str, shape: ShapeLike, factor: float
    ) -> None:
        """Install an operator-supplied prior for (engine, shape).

        The seeded value replaces the default prior *and* exempts the
        pair from the exploration discount: the policy trusts it
        immediately, which is exactly what lets a mis-calibrated seed
        mis-route until :meth:`record` corrects it (bounded by the
        prior's fixed pseudo-weight -- see ``tests/routing``).
        """
        key = (engine, _shape_value(shape))
        self._priors[key] = clamp_factor(factor)
        self._seeded[key] = clamp_factor(factor)

    def is_seeded(self, engine: str, shape: ShapeLike) -> bool:
        return (engine, _shape_value(shape)) in self._seeded

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------

    def prior(self, engine: str, shape: ShapeLike) -> float:
        return self._priors.get((engine, _shape_value(shape)), 1.0)

    def observations(self, engine: str, shape: ShapeLike) -> int:
        ratios = self._ratios.get((engine, _shape_value(shape)))
        return len(ratios) if ratios is not None else 0

    def factor(self, engine: str, shape: ShapeLike) -> float:
        """The calibrated factor: geometric blend of prior and history."""
        key = (engine, _shape_value(shape))
        prior = self._priors.get(key, 1.0)
        ratios = self._ratios.get(key)
        if not ratios:
            return clamp_factor(prior)
        total = self.prior_weight * math.log(prior) + sum(
            math.log(ratio) for ratio in ratios
        )
        return clamp_factor(
            math.exp(total / (self.prior_weight + len(ratios)))
        )

    def effective_factor(self, engine: str, shape: ShapeLike) -> float:
        """The bidding factor: calibrated, discounted while unexplored."""
        factor = self.factor(engine, shape)
        if self.is_seeded(engine, shape):
            return factor
        missing = self.min_observations - self.observations(engine, shape)
        if missing <= 0:
            return factor
        return clamp_factor(factor * self.explore_discount**missing)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self,
        engine: str,
        shape: ShapeLike,
        estimated: float,
        actual: float,
    ) -> float:
        """Record one (estimate, actual cost units) run; return the new
        calibrated factor for (engine, shape)."""
        key = (engine, _shape_value(shape))
        ratio = clamp_factor(max(actual, 1.0) / max(estimated, 1.0))
        ratios = self._ratios.get(key)
        if ratios is None:
            ratios = deque(maxlen=self.history)
            self._ratios[key] = ratios
        ratios.append(ratio)
        return self.factor(engine, shape)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def known_keys(self) -> Iterable[Tuple[str, str]]:
        return sorted(set(self._priors) | set(self._ratios))

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """JSON-ready calibration state, sorted engine -> shape."""
        out: Dict[str, Dict[str, Dict[str, object]]] = {}
        for engine, shape in self.known_keys():
            entry = {
                "prior": round(self.prior(engine, shape), 6),
                "factor": round(self.factor(engine, shape), 6),
                "effective": round(self.effective_factor(engine, shape), 6),
                "observations": self.observations(engine, shape),
            }
            if self.is_seeded(engine, shape):
                entry["seeded"] = True
            out.setdefault(engine, {})[shape] = entry
        return out

    def __repr__(self) -> str:
        observed = sum(len(r) for r in self._ratios.values())
        return "FeedbackLog(pairs=%d, observations=%d, history=%d)" % (
            len(set(self._priors) | set(self._ratios)),
            observed,
            self.history,
        )
