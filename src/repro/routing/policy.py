"""The adaptive routing policy: classify, estimate, calibrate, dispatch.

For each admitted query the policy

1. classifies the algebra's shape (:func:`repro.sparql.shapes.classify_shape`),
2. asks the shared :class:`~repro.optimizer.planner.JoinPlanner` /
   :class:`~repro.optimizer.cardinality.CardinalityEstimator` for an
   engine-independent base cost (the plan's ``C_out``: the sum of
   estimated intermediate cardinalities),
3. scales that base by each candidate engine's per-(engine, shape)
   calibration factor from the :class:`~repro.routing.feedback.FeedbackLog`,
4. dispatches to the cheapest bid, breaking ties on engine name.

Candidates are the configured engine pool filtered by SPARQL fragment:
an engine whose published feature set does not cover the query is
*excluded* (the same ``profile.sparql_features`` check the static
:class:`repro.systems.ShapeAwareRouter` uses).  When no pool engine
covers the query, the deterministic fallback chain is walked instead
(``Naive`` covers every feature, so a winner always exists).

Every step is a pure function of (query text, catalog, feedback state),
so a request sequence replays to byte-identical routing decisions --
the property that keeps the parallel backend and the result caches
oracle-exact (docs/ROUTING.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.optimizer.cardinality import CardinalityEstimator
from repro.optimizer.planner import DEFAULT_BROADCAST_THRESHOLD, JoinPlanner
from repro.routing.defaults import (
    DEFAULT_ENGINE_POOL,
    DEFAULT_FALLBACK_CHAIN,
    default_priors,
)
from repro.routing.feedback import FeedbackLog
from repro.sparql.ast import Query
from repro.sparql.fragments import features_of
from repro.sparql.shapes import QueryShape, classify_shape
from repro.stats.catalog import StatsCatalog


@dataclass(frozen=True)
class EngineBid:
    """One candidate engine's priced offer for a query."""

    engine: str
    cost: float  # base_cost * effective factor
    factor: float  # effective (exploration-discounted) factor
    calibrated: float  # undiscounted calibration factor
    observations: int


@dataclass
class RoutingDecision:
    """Everything one routing choice knew and chose."""

    shape: str
    base_cost: float
    winner: str
    bids: List[EngineBid] = field(default_factory=list)
    #: Pool engines whose fragment does not cover the query:
    #: (name, sorted missing features).
    excluded: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)
    #: True when no pool engine was eligible and the fallback chain chose.
    fallback: bool = False

    def describe(self) -> Dict[str, Any]:
        """Flat span attributes (the ``route`` span)."""
        return {
            "shape": self.shape,
            "engine": self.winner,
            "base_cost": round(self.base_cost, 6),
            "candidates": len(self.bids),
            "fallback": self.fallback,
        }

    def render(self) -> str:
        """The ``routing:`` text block (EXPLAIN preamble, CLI route)."""
        head = "routing: shape=%s base_cost=%s winner=%s%s" % (
            self.shape,
            round(self.base_cost, 6),
            self.winner,
            " (fallback chain)" if self.fallback else "",
        )
        lines = [head]
        for bid in self.bids:
            marker = "  <- winner" if bid.engine == self.winner else ""
            lines.append(
                "  %-16s cost=%-14s factor=%-10s calibrated=%-10s obs=%d%s"
                % (
                    bid.engine,
                    round(bid.cost, 6),
                    round(bid.factor, 6),
                    round(bid.calibrated, 6),
                    bid.observations,
                    marker,
                )
            )
        for engine, missing in self.excluded:
            lines.append(
                "  %-16s excluded (missing %s)"
                % (engine, ", ".join(missing))
            )
        return "\n".join(lines)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready form (CLI ``route --json``)."""
        return {
            "shape": self.shape,
            "base_cost": round(self.base_cost, 6),
            "winner": self.winner,
            "fallback": self.fallback,
            "bids": [
                {
                    "engine": bid.engine,
                    "cost": round(bid.cost, 6),
                    "factor": round(bid.factor, 6),
                    "calibrated": round(bid.calibrated, 6),
                    "observations": bid.observations,
                }
                for bid in self.bids
            ],
            "excluded": [
                {"engine": engine, "missing": list(missing)}
                for engine, missing in self.excluded
            ],
        }


def _canonical_engine_names(names: Sequence[str]) -> List[str]:
    """Resolve to profile names, preserving order, rejecting unknowns."""
    from repro.runtime import resolve_engine

    canonical: List[str] = []
    for name in names:
        profile_name = resolve_engine(name).profile.name
        if profile_name not in canonical:
            canonical.append(profile_name)
    return canonical


def _engine_features(name: str) -> frozenset:
    from repro.runtime import resolve_engine

    return resolve_engine(name).profile.sparql_features


class RoutingPolicy:
    """Adaptive per-shape dispatch over a configured engine pool."""

    def __init__(
        self,
        planner: JoinPlanner,
        engines: Optional[Sequence[str]] = None,
        feedback: Optional[FeedbackLog] = None,
        fallbacks: Sequence[str] = DEFAULT_FALLBACK_CHAIN,
    ) -> None:
        self.planner = planner
        self.engines = _canonical_engine_names(
            engines if engines else DEFAULT_ENGINE_POOL
        )
        self.fallbacks = _canonical_engine_names(fallbacks)
        self.feedback = (
            feedback
            if feedback is not None
            else FeedbackLog(priors=default_priors(self.engines))
        )
        #: Decision counters: (shape value, engine name) -> count.
        self.decisions: Dict[Tuple[str, str], int] = {}
        self.fallback_decisions = 0
        self._features = {
            name: _engine_features(name)
            for name in self.engines + self.fallbacks
        }

    @classmethod
    def for_graph(
        cls,
        graph,
        engines: Optional[Sequence[str]] = None,
        mode: str = "dp",
        broadcast_threshold: int = DEFAULT_BROADCAST_THRESHOLD,
        catalog: Optional[StatsCatalog] = None,
        version: int = 0,
        feedback: Optional[FeedbackLog] = None,
    ) -> "RoutingPolicy":
        """Build a policy over *graph* (or a precomputed *catalog*)."""
        if catalog is None:
            catalog = StatsCatalog.from_graph(graph, version=version)
        planner = JoinPlanner(
            CardinalityEstimator(catalog),
            mode=mode,
            broadcast_threshold=broadcast_threshold,
        )
        return cls(planner, engines=engines, feedback=feedback)

    def refresh(self, catalog: StatsCatalog) -> None:
        """Re-anchor cost estimates on a new catalog (graph commit).

        Calibration survives: factors describe engine mechanisms, not
        one graph version, and the bounded history ages stale ratios
        out as post-commit observations arrive.
        """
        self.planner = JoinPlanner(
            CardinalityEstimator(catalog),
            mode=self.planner.mode,
            broadcast_threshold=self.planner.broadcast_threshold,
        )

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------

    def base_cost(self, query: Query) -> Tuple[QueryShape, float]:
        """(shape, engine-independent C_out estimate) for *query*."""
        patterns = query.where.triple_patterns()
        shape = classify_shape(query)
        if not patterns:
            return shape, 1.0
        plan = self.planner.plan(patterns)
        return shape, max(
            1.0, sum(step.est_rows for step in plan.steps)
        )

    def decide(self, query: Union[str, Query]) -> RoutingDecision:
        """Price every candidate and pick the winner (no execution)."""
        if isinstance(query, str):
            from repro.sparql.parser import parse_sparql

            query = parse_sparql(query)
        shape, base = self.base_cost(query)
        features = features_of(query)
        eligible: List[str] = []
        excluded: List[Tuple[str, Tuple[str, ...]]] = []
        for name in self.engines:
            missing = features - self._features[name]
            if missing:
                excluded.append((name, tuple(sorted(missing))))
            else:
                eligible.append(name)
        fallback = not eligible
        if fallback:
            for name in self.fallbacks:
                if features <= self._features[name]:
                    eligible = [name]
                    break
            else:  # unreachable while Naive covers ALL_FEATURES
                eligible = ["Naive"]
        shape_value = shape.value
        bids = [
            EngineBid(
                engine=name,
                cost=base * self.feedback.effective_factor(name, shape_value),
                factor=self.feedback.effective_factor(name, shape_value),
                calibrated=self.feedback.factor(name, shape_value),
                observations=self.feedback.observations(name, shape_value),
            )
            for name in eligible
        ]
        winner = min(bids, key=lambda bid: (bid.cost, bid.engine)).engine
        decision = RoutingDecision(
            shape=shape_value,
            base_cost=base,
            winner=winner,
            bids=sorted(bids, key=lambda bid: (bid.cost, bid.engine)),
            excluded=excluded,
            fallback=fallback,
        )
        key = (shape_value, winner)
        self.decisions[key] = self.decisions.get(key, 0) + 1
        if fallback:
            self.fallback_decisions += 1
        return decision

    def record(self, decision: RoutingDecision, actual_units: float) -> float:
        """Feed one executed decision back; returns the new factor."""
        return self.feedback.record(
            decision.winner, decision.shape, decision.base_cost, actual_units
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready policy state (``stats()["routing"]``)."""
        per_shape: Dict[str, Dict[str, int]] = {}
        for (shape, engine), count in sorted(self.decisions.items()):
            per_shape.setdefault(shape, {})[engine] = count
        return {
            "engines": list(self.engines),
            "fallback_chain": list(self.fallbacks),
            "decisions": per_shape,
            "fallback_decisions": self.fallback_decisions,
            "calibration": self.feedback.snapshot(),
        }

    def __repr__(self) -> str:
        return "RoutingPolicy(engines=%r, decisions=%d)" % (
            self.engines,
            sum(self.decisions.values()),
        )
