"""Adaptive per-shape engine routing (see docs/ROUTING.md).

The survey's central finding is that no single Spark RDF mechanism wins
every query shape.  This package turns the query service into an
ensemble that exploits that: a :class:`RoutingPolicy` classifies each
query's shape, prices every candidate engine as ``base cost estimate x
per-(engine, shape) calibration factor``, and dispatches to the
cheapest; a :class:`FeedbackLog` corrects the factors from observed
cost units after every execution.  :mod:`repro.routing.defaults` holds
the survey preference table both this policy and the static
:class:`repro.systems.ShapeAwareRouter` derive from.
"""

from repro.routing.defaults import (
    DEFAULT_ENGINE_POOL,
    DEFAULT_FALLBACK_CHAIN,
    DEFAULT_SHAPE_PREFERENCES,
    default_priors,
)
from repro.routing.feedback import (
    DEFAULT_HISTORY,
    DEFAULT_MIN_OBSERVATIONS,
    DEFAULT_PRIOR_WEIGHT,
    EXPLORE_DISCOUNT,
    FACTOR_MAX,
    FACTOR_MIN,
    FeedbackLog,
    clamp_factor,
)
from repro.routing.policy import EngineBid, RoutingDecision, RoutingPolicy

__all__ = [
    "DEFAULT_ENGINE_POOL",
    "DEFAULT_FALLBACK_CHAIN",
    "DEFAULT_HISTORY",
    "DEFAULT_MIN_OBSERVATIONS",
    "DEFAULT_PRIOR_WEIGHT",
    "DEFAULT_SHAPE_PREFERENCES",
    "EXPLORE_DISCOUNT",
    "EngineBid",
    "FACTOR_MAX",
    "FACTOR_MIN",
    "FeedbackLog",
    "RoutingDecision",
    "RoutingPolicy",
    "clamp_factor",
    "default_priors",
]
