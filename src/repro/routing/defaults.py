"""The survey-derived per-shape routing table: one source of truth.

Section III's "System Contribution" dimension and the cross-system
assessment (``benchmarks/bench_systems_comparison.py``) agree that no
single mechanism wins every query shape: subject hashing answers stars
locally, ExtVP semi-joins prune chains hardest, class indexes tame
object-object joins.  This module is the *name-based* form of that
conclusion.  Both consumers derive from it:

* the static :class:`repro.systems.ShapeAwareRouter` resolves the names
  to engine classes for its fixed dispatch table, and
* the adaptive :class:`repro.routing.RoutingPolicy` turns them into
  calibration priors -- the survey preference is where the ensemble
  *starts*; the feedback loop takes it from there.

Only :mod:`repro.sparql.shapes` is imported here, so the systems layer
can depend on this table without an import cycle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.sparql.shapes import QueryShape

#: The survey preference per shape (engine profile names).
DEFAULT_SHAPE_PREFERENCES: Dict[QueryShape, str] = {
    QueryShape.STAR: "HAQWA",
    QueryShape.LINEAR: "S2RDF",
    QueryShape.SNOWFLAKE: "SPARQL-Hybrid",
    QueryShape.COMPLEX: "SparkRDF",
    QueryShape.SINGLE: "SPARQLGX",
    QueryShape.EMPTY: "Naive",
}

#: Feature-coverage fallbacks, widest SPARQL fragment last.  When a
#: query's features are outside every configured engine's fragment, the
#: router walks this chain in order (``Naive`` covers ALL_FEATURES, so
#: the walk always terminates).
DEFAULT_FALLBACK_CHAIN: Tuple[str, ...] = ("SPARQLGX", "Naive")

#: Prior calibration multipliers: the preferred engine starts cheapest,
#: everyone else neutral, and the last-resort full-scan baseline is
#: priced out of exploration (it still wins when it is the only engine
#: whose fragment covers the query).
PREFERRED_PRIOR = 0.5
NEUTRAL_PRIOR = 1.0
LAST_RESORT_PRIOR = 32.0

#: Engines whose prior is :data:`LAST_RESORT_PRIOR` on every shape they
#: are not preferred for.
LAST_RESORT_ENGINES: Tuple[str, ...] = ("Naive",)


def _default_pool() -> Tuple[str, ...]:
    """Preference-table engines (shape declaration order) + fallbacks."""
    pool = []
    for shape in QueryShape:
        name = DEFAULT_SHAPE_PREFERENCES[shape]
        if name not in pool:
            pool.append(name)
    for name in DEFAULT_FALLBACK_CHAIN:
        if name not in pool:
            pool.append(name)
    return tuple(pool)


#: The default adaptive-routing candidate set.
DEFAULT_ENGINE_POOL: Tuple[str, ...] = _default_pool()


def default_priors(
    engines: Optional[Iterable[str]] = None,
) -> Dict[Tuple[str, str], float]:
    """Prior factor per (engine name, shape value) for *engines*.

    The survey-preferred engine of each shape gets
    :data:`PREFERRED_PRIOR` so a fresh ensemble reproduces the static
    router's table before any feedback arrives.
    """
    pool = tuple(engines) if engines is not None else DEFAULT_ENGINE_POOL
    priors: Dict[Tuple[str, str], float] = {}
    for shape in QueryShape:
        preferred = DEFAULT_SHAPE_PREFERENCES[shape]
        for engine in pool:
            if engine == preferred:
                prior = PREFERRED_PRIOR
            elif engine in LAST_RESORT_ENGINES:
                prior = LAST_RESORT_PRIOR
            else:
                prior = NEUTRAL_PRIOR
            priors[(engine, shape.value)] = prior
    return priors
