"""Materialized ExtVP views with incremental maintenance (docs/VIEWS.md).

The package turns the statistics catalog's measured pair selectivities
into S2RDF-style materialized semi-join reduction tables
(:class:`~repro.views.catalog.ViewCatalog`), keeps them exact across
:mod:`repro.evolution` commits by delta application instead of rebuilds,
and plugs into :mod:`repro.optimizer` so any engine's plans substitute a
view for a base scan whenever the view strictly dominates it.
"""

from repro.views.catalog import (
    DEFAULT_VIEW_THRESHOLD,
    MaintenanceReport,
    MaterializedView,
    VIEW_FORMAT_VERSION,
    ViewCatalog,
    ViewKey,
    materialize_view,
    view_name,
)

__all__ = [
    "DEFAULT_VIEW_THRESHOLD",
    "MaintenanceReport",
    "MaterializedView",
    "VIEW_FORMAT_VERSION",
    "ViewCatalog",
    "ViewKey",
    "materialize_view",
    "view_name",
]
