"""Materialized ExtVP views: S2RDF's semi-join reductions, kept warm.

The statistics catalog (:mod:`repro.stats`) already *measures* the ExtVP
pair selectivities S2RDF is built on (Section IV-A2); this module
*materializes* them.  A :class:`MaterializedView` for ``(kind, p1, p2)``
stores the (subject, object) pairs of predicate ``p1``'s vertical
partition that survive the semi-join with predicate ``p2`` on the columns
*kind* names (``ss``/``so``/``os``, the three table families S2RDF
precomputes).  A :class:`ViewCatalog` selects which pairs to materialize
by selectivity threshold -- S2RDF's ``sf_threshold``: only reductions
strong enough to pay back their storage are built -- and keeps every view
exact across :mod:`repro.evolution` commits by *delta application*
instead of rebuilding.

Threshold semantics (pinned by ``tests/views/test_maintenance.py``):
a pair is materialized **iff** its selectivity factor is ``<= threshold``.
The boundary is inclusive: a factor exactly equal to the threshold
materializes.  Factors are read from the statistics catalog, which only
stores factors strictly below 1.0, so ``threshold=1.0`` materializes
every reduction the statistics know about.

Maintenance algebra (see docs/VIEWS.md for the worked derivation): with
``A`` = triples carrying ``p1``, ``B`` = triples carrying ``p2``,
``col1``/``col2`` the join columns *kind* selects, the view is

    V = { t in A : col1(t) in col2(B) }

and a commit's delta updates it in four deterministic steps, every
membership probe answered by the *post-commit* graph's hash indexes:

1. rows of ``V`` whose triple was deleted are removed;
2. added triples with predicate ``p1`` join ``V`` iff their ``col1``
   value appears in ``col2(B_new)``;
3. deleted ``p2`` triples whose ``col2`` value vanished from ``B_new``
   evict every ``V`` row carrying that value;
4. added ``p2`` triples whose ``col2`` value is new to ``B`` pull in
   every ``A_new`` triple carrying that value.

The result is byte-identical to a from-scratch rebuild of the view's
contents (a property test proves it), at a cost proportional to the
delta instead of ``|A| + |B|``.

Determinism: rows sort by N3 text, payloads serialize with sorted keys,
and no unsorted set/dict iteration reaches any output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term
from repro.stats.catalog import PAIR_KINDS, StatsCatalog

#: Default selectivity threshold: materialize reductions that keep at
#: most half of p1's triples (S2RDF's evaluations use thresholds in this
#: range; the stats catalog stores only factors < 1.0 anyway).
DEFAULT_VIEW_THRESHOLD = 0.5

#: Bumped when the serialized view-catalog layout changes incompatibly.
VIEW_FORMAT_VERSION = 1

#: A view identity: (pair kind, p1 n3, p2 n3) -- same shape as the
#: statistics catalog's pair-selectivity keys.
ViewKey = Tuple[str, str, str]


def view_name(key: ViewKey) -> str:
    """The human/EXPLAIN name of a view, e.g. ``extvp_os(p1,p2)``."""
    kind, p1, p2 = key
    return "extvp_%s(%s,%s)" % (kind, p1, p2)


def _row_sort_key(row: Tuple[Term, Term]) -> Tuple[str, str]:
    return (row[0].n3(), row[1].n3())


def _join_value(row: Tuple[Term, Term], column: str) -> Term:
    """The join-column value of one (subject, object) row."""
    return row[0] if column == "s" else row[1]


def _has_p_with_value(graph: RDFGraph, predicate: Term, column: str, value: Term) -> bool:
    """Whether *graph* holds any *predicate* triple with *value* in *column*."""
    if column == "s":
        probe = (value, predicate, None)
    else:
        probe = (None, predicate, value)
    return next(iter(graph.triples(probe)), None) is not None


def _rows_with_value(
    graph: RDFGraph, predicate: Term, column: str, value: Term
) -> List[Tuple[Term, Term]]:
    """(s, o) rows of *predicate*'s partition carrying *value* in *column*."""
    if column == "s":
        probe = (value, predicate, None)
    else:
        probe = (None, predicate, value)
    return [(t.subject, t.object) for t in graph.triples(probe)]


@dataclass
class MaintenanceReport:
    """Cost accounting of one :meth:`ViewCatalog.apply_delta` call.

    All quantities are deterministic simulated cost units (triples
    touched), comparable with the full-rebuild bill the benchmark
    ablation charges (``benchmarks/bench_views.py``).
    """

    views_affected: int = 0
    rows_added: int = 0
    rows_removed: int = 0
    #: Triples examined by the delta walk plus membership/row probes.
    cost_units: int = 0
    #: What rebuilding the affected views from scratch would have cost
    #: (|A| + |B| per affected view, at post-commit sizes).
    rebuild_cost_units: int = 0

    def to_payload(self) -> Dict[str, int]:
        return {
            "views_affected": self.views_affected,
            "rows_added": self.rows_added,
            "rows_removed": self.rows_removed,
            "cost_units": self.cost_units,
            "rebuild_cost_units": self.rebuild_cost_units,
        }


class MaterializedView:
    """One ExtVP semi-join reduction table, exact at a graph version.

    Rows are (subject, object) pairs of ``p1`` triples surviving the
    semi-join; they are kept sorted by N3 text plus indexed by their
    join-column value so maintenance evictions are O(affected rows).
    """

    def __init__(
        self,
        key: ViewKey,
        rows: Iterable[Tuple[Term, Term]],
        factor: float,
        version: int = 0,
    ) -> None:
        kind = key[0]
        if kind not in PAIR_KINDS:
            raise ValueError("unknown pair kind %r" % kind)
        self.key = key
        self.factor = factor
        self.version = version
        self._rows: Dict[Tuple[Term, Term], None] = {}
        #: join-column value -> rows carrying it (maintenance index).
        self._by_value: Dict[Term, Dict[Tuple[Term, Term], None]] = {}
        for row in rows:
            self._add_row(row)

    # -- identity ------------------------------------------------------

    @property
    def kind(self) -> str:
        return self.key[0]

    @property
    def p1(self) -> str:
        return self.key[1]

    @property
    def p2(self) -> str:
        return self.key[2]

    @property
    def column1(self) -> str:
        """The p1 join column: 's' for ss/so, 'o' for os."""
        return "s" if self.kind in ("ss", "so") else "o"

    @property
    def column2(self) -> str:
        """The p2 join column: 's' for ss/os, 'o' for so."""
        return "s" if self.kind in ("ss", "os") else "o"

    @property
    def name(self) -> str:
        return view_name(self.key)

    # -- contents ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: Tuple[Term, Term]) -> bool:
        return row in self._rows

    def rows(self) -> List[Tuple[Term, Term]]:
        """The surviving (subject, object) pairs, sorted by N3 text."""
        return sorted(self._rows, key=_row_sort_key)

    def _add_row(self, row: Tuple[Term, Term]) -> bool:
        if row in self._rows:
            return False
        self._rows[row] = None
        value = _join_value(row, self.column1)
        self._by_value.setdefault(value, {})[row] = None
        return True

    def _remove_row(self, row: Tuple[Term, Term]) -> bool:
        if row not in self._rows:
            return False
        del self._rows[row]
        value = _join_value(row, self.column1)
        bucket = self._by_value.get(value)
        if bucket is not None:
            bucket.pop(row, None)
            if not bucket:
                del self._by_value[value]
        return True

    def rows_with_value(self, value: Term) -> List[Tuple[Term, Term]]:
        """View rows whose join-column value is *value* (sorted)."""
        bucket = self._by_value.get(value, {})
        return sorted(bucket, key=_row_sort_key)

    # -- serialization -------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "p1": self.p1,
            "p2": self.p2,
            "factor": round(self.factor, 6),
            "version": self.version,
            "rows": [
                [row[0].n3(), row[1].n3()] for row in self.rows()
            ],
        }

    def __repr__(self) -> str:
        return "MaterializedView(%s, rows=%d, factor=%.4f)" % (
            self.name,
            len(self),
            self.factor,
        )


def materialize_view(
    graph: RDFGraph,
    key: ViewKey,
    factor: float,
    version: int = 0,
    predicate_terms: Optional[Dict[str, Term]] = None,
) -> MaterializedView:
    """Build one view's contents from scratch over *graph*.

    The from-scratch oracle the incremental-maintenance property test
    compares against; also the build path of :meth:`ViewCatalog.build`.
    """
    kind, p1_n3, p2_n3 = key
    terms = predicate_terms or _predicate_terms(graph)
    p1 = terms.get(p1_n3)
    p2 = terms.get(p2_n3)
    column1 = "s" if kind in ("ss", "so") else "o"
    column2 = "s" if kind in ("ss", "os") else "o"
    rows: List[Tuple[Term, Term]] = []
    if p1 is not None:
        survivors = set()
        if p2 is not None:
            for triple in graph.triples((None, p2, None)):
                survivors.add(
                    triple.subject if column2 == "s" else triple.object
                )
        for triple in graph.triples((None, p1, None)):
            value = triple.subject if column1 == "s" else triple.object
            if value in survivors:
                rows.append((triple.subject, triple.object))
    return MaterializedView(key, rows, factor, version=version)


def _predicate_terms(graph: RDFGraph) -> Dict[str, Term]:
    """N3 text -> predicate term, for resolving catalog keys on a graph."""
    return {term.n3(): term for term in graph.predicates()}


class ViewCatalog:
    """Every materialized ExtVP view of one graph, version-consistent.

    Built once from a :class:`~repro.stats.catalog.StatsCatalog` (which
    pairs to build is a *build-time* decision: the selection is fixed
    until the next full build, while each selected view's *contents*
    stay exact across commits via :meth:`apply_delta`).
    """

    def __init__(
        self,
        threshold: float = DEFAULT_VIEW_THRESHOLD,
        version: int = 0,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("view threshold must be in [0, 1]")
        self.threshold = threshold
        self.version = version
        self.views: Dict[ViewKey, MaterializedView] = {}
        #: Simulated cost units (triples scanned) of the last full build.
        self.build_cost_units = 0

    # -- construction --------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: RDFGraph,
        stats: Optional[StatsCatalog] = None,
        threshold: float = DEFAULT_VIEW_THRESHOLD,
        version: Optional[int] = None,
    ) -> "ViewCatalog":
        """Materialize every pair whose selectivity factor <= *threshold*.

        *stats* defaults to a fresh catalog over *graph*; *version*
        defaults to the statistics catalog's version.
        """
        if stats is None:
            stats = StatsCatalog.from_graph(graph)
        catalog = cls(
            threshold=threshold,
            version=stats.version if version is None else version,
        )
        terms = _predicate_terms(graph)
        selected = sorted(
            key
            for key, factor in stats.pair_selectivity.items()
            if factor <= threshold
        )
        for key in selected:
            view = materialize_view(
                graph,
                key,
                stats.pair_selectivity[key],
                version=catalog.version,
                predicate_terms=terms,
            )
            catalog.views[key] = view
            # The build bill: scan p1's partition plus p2's join column.
            catalog.build_cost_units += stats.predicate_count(
                key[1]
            ) + stats.predicate_count(key[2])
        return catalog

    # -- lookup --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.views)

    def get(self, key: ViewKey) -> Optional[MaterializedView]:
        return self.views.get(key)

    def sorted_views(self) -> List[MaterializedView]:
        return [self.views[key] for key in sorted(self.views)]

    def total_rows(self) -> int:
        return sum(len(view) for view in self.sorted_views())

    # -- incremental maintenance ---------------------------------------

    def apply_delta(self, delta, graph: RDFGraph, version: int) -> MaintenanceReport:
        """Delta-apply one commit's change set to every affected view.

        *delta* is a :class:`~repro.evolution.versioned.Delta` (or any
        object with ``added``/``removed`` triple tuples), *graph* the
        **post-commit** head, *version* the new graph version.  Views
        whose predicates the delta does not touch are not visited.
        """
        report = MaintenanceReport()
        touched: Dict[str, bool] = {}
        for triple in list(delta.added) + list(delta.removed):
            touched[triple.predicate.n3()] = True
        affected = sorted(
            key
            for key in self.views
            if key[1] in touched or key[2] in touched
        )
        terms = _predicate_terms(graph)
        for key in affected:
            view = self.views[key]
            report.views_affected += 1
            report.cost_units += self._maintain_view(
                view, delta, graph, terms, report
            )
            p1_count = _partition_size(graph, terms.get(key[1]))
            p2_count = _partition_size(graph, terms.get(key[2]))
            report.rebuild_cost_units += p1_count + p2_count
            view.version = version
            view.factor = (
                round(len(view) / p1_count, 6) if p1_count else 0.0
            )
        self.version = version
        return report

    def _maintain_view(
        self,
        view: MaterializedView,
        delta,
        graph: RDFGraph,
        terms: Dict[str, Term],
        report: MaintenanceReport,
    ) -> int:
        """The four-step delta walk for one view; returns its cost."""
        _kind, p1_n3, p2_n3 = view.key
        p1_term = terms.get(p1_n3)
        p2_term = terms.get(p2_n3)
        cost = 0
        # Step 1: deleted p1 triples leave the view.
        for triple in delta.removed:
            if triple.predicate.n3() != p1_n3:
                continue
            cost += 1
            if view._remove_row((triple.subject, triple.object)):
                report.rows_removed += 1
        # Step 2: added p1 triples join iff their value survives in B_new.
        for triple in delta.added:
            if triple.predicate.n3() != p1_n3:
                continue
            cost += 1
            value = triple.subject if view.column1 == "s" else triple.object
            if p2_term is not None and _has_p_with_value(
                graph, p2_term, view.column2, value
            ):
                if view._add_row((triple.subject, triple.object)):
                    report.rows_added += 1
        # Steps 3 and 4: p2-side membership changes.  Values are probed
        # against the post-commit graph, so a value both added and
        # removed within one commit resolves to its final membership.
        for value in _delta_values(delta.removed, p2_n3, view.column2):
            cost += 1
            if p2_term is not None and _has_p_with_value(
                graph, p2_term, view.column2, value
            ):
                continue  # other p2 triples still carry the value
            for row in view.rows_with_value(value):
                cost += 1
                if view._remove_row(row):
                    report.rows_removed += 1
        for value in _delta_values(delta.added, p2_n3, view.column2):
            cost += 1
            if p1_term is None:
                continue
            for row in _rows_with_value(graph, p1_term, view.column1, value):
                cost += 1
                if row not in view:
                    view._add_row(row)
                    report.rows_added += 1
        return cost

    # -- serialization -------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-ready dict; byte-deterministic via sorted collections."""
        return {
            "format": VIEW_FORMAT_VERSION,
            "version": self.version,
            "threshold": round(self.threshold, 6),
            "totals": {
                "views": len(self.views),
                "rows": self.total_rows(),
                "build_cost_units": self.build_cost_units,
            },
            "views": [view.to_payload() for view in self.sorted_views()],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    def summary(self) -> Dict[str, object]:
        """The headline numbers (the ``views stats`` CLI table)."""
        return {
            "version": self.version,
            "threshold": round(self.threshold, 6),
            "views": len(self.views),
            "rows": self.total_rows(),
            "build_cost_units": self.build_cost_units,
        }

    def __repr__(self) -> str:
        return "ViewCatalog(views=%d, threshold=%s, version=%d)" % (
            len(self.views),
            self.threshold,
            self.version,
        )


def _partition_size(graph: RDFGraph, predicate: Optional[Term]) -> int:
    """Triples carrying *predicate* in *graph* (0 when absent)."""
    if predicate is None:
        return 0
    return sum(1 for _ in graph.triples((None, predicate, None)))


def _delta_values(triples, predicate_n3: str, column: str) -> List[Term]:
    """Distinct join-column values of delta triples carrying the predicate,
    sorted by N3 text for a deterministic probe order."""
    values: Dict[Term, None] = {}
    for triple in triples:
        if triple.predicate.n3() != predicate_n3:
            continue
        values[triple.subject if column == "s" else triple.object] = None
    return sorted(values, key=lambda term: term.n3())
